#!/usr/bin/env python
"""Conference attendance: dynamic, mobile tag population (Sec. 4.6.3).

Scenario: attendees wear RFID badges and move between two halls, each
covered by its own reader; people arrive and leave throughout the day.
The organisers want a live headcount every session without tracking
anyone — the paper's anonymity argument (Sec. 4.6.4): PET never
transmits badge IDs during estimation.

This example demonstrates:

* per-session estimation of a *changing* ground truth (joins/leaves);
* mobility between reader fields mid-estimation (tags in transit are
  heard by both readers, and still count once);
* the anonymity property, checked directly on the channel trace.

Run with:  python examples/conference_badges.py
"""

from __future__ import annotations

import numpy as np

from repro import PetConfig, PetEstimator
from repro.radio.channel import SlottedChannel
from repro.reader.controller import ReaderController
from repro.tags.dynamics import PopulationDynamics
from repro.tags.mobility import MobileTagField, MobilityModel
from repro.tags.pet_tags import PassivePetTag
from repro.tags.population import TagPopulation

TREE_HEIGHT = 20
SESSIONS = 4
ROUNDS_PER_SESSION = 160
ATTENDEES = 500


def estimate_session(
    population: TagPopulation,
    field: MobileTagField,
    rng: np.random.Generator,
) -> tuple[float, int]:
    """Run one PET estimation over the two-hall deployment."""
    tags_by_id = {
        int(tag_id): PassivePetTag(int(tag_id), TREE_HEIGHT)
        for tag_id in population.tag_ids
    }
    channels = []
    for hall in range(field.num_readers):
        channel = SlottedChannel(rng=rng)
        for tag_id in field.tags_of_reader(hall):
            channel.attach(tags_by_id[tag_id])
        channels.append(channel)
    config = PetConfig(
        tree_height=TREE_HEIGHT,
        passive_tags=True,
        rounds=ROUNDS_PER_SESSION,
    )
    controller = ReaderController(channels, config=config, rng=rng)
    result = PetEstimator(config=config, rng=rng).run(controller)

    # Anonymity check: no reader command ever carried a badge ID.
    for channel in channels:
        for event in channel.trace:
            assert event.command.startswith("start") or set(
                event.command
            ) <= {"0", "1", "*"}, "protocol leaked non-PET commands"
    return result.n_hat, result.total_slots


def main() -> None:
    rng = np.random.default_rng(88)
    population = TagPopulation.random(ATTENDEES, rng)
    field = MobileTagField.random(
        population.tag_ids, num_readers=2,
        overlap_probability=0.1, rng=rng,
    )
    churn = PopulationDynamics(join_rate=30.0, leave_rate=20.0, rng=rng)
    mobility = MobilityModel(move_probability=0.15, rng=rng)

    print("Live headcounts across conference sessions "
          "(2 halls, badge churn, movement):\n")
    print(f"{'session':>7}  {'present':>8}  {'estimate':>9}  "
          f"{'error':>7}  {'slots':>6}")
    for session in range(SESSIONS):
        n_hat, slots = estimate_session(population, field, rng)
        error = abs(n_hat - population.size) / population.size
        print(f"{session:>7}  {population.size:>8,}  {n_hat:>9,.0f}  "
              f"{error:>6.1%}  {slots:>6}")

        # Between sessions: arrivals/departures and hall movement.
        population = churn.step(population, session)
        field = MobileTagField.random(
            population.tag_ids, num_readers=2,
            overlap_probability=0.1, rng=rng,
        )
        field = mobility.step(field)

    print(f"\n(joined {churn.total_joined}, left {churn.total_left} "
          f"over the day; every estimate used badge-ID-free queries)")


if __name__ == "__main__":
    main()
