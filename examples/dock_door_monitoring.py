#!/usr/bin/env python
"""Dock-door monitoring: continuous estimation with change detection.

Scenario: a distribution-center dock door continuously estimates the
tagged pallets in its staging area.  Trucks arrive and depart in
batches; the operations dashboard needs (a) a fresh headcount every
epoch and (b) an alert the moment the level shifts — without ever
reading a tag ID.

Built on the operational layer this library adds around the paper:

* :class:`repro.reader.EstimationSession` — epoch loop + seed
  management + persistence;
* :class:`repro.CardinalityMonitor` — EWMA change detection calibrated
  to PET's per-epoch standard error;
* :class:`repro.sim.MultiReaderSimulator` — two door readers with
  overlapping coverage, vectorized.

Run with:  python examples/dock_door_monitoring.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import PetConfig
from repro.reader.session import EstimationSession
from repro.sim.multireader import MultiReaderSimulator
from repro.sim.persist import load_experiment, rows_of
from repro.tags.mobility import MobileTagField
from repro.tags.population import TagPopulation

TREE_HEIGHT = 24
ROUNDS_PER_EPOCH = 512

#: Pallets present per epoch: steady, truck departs (-40%), steady,
#: double delivery (+120%), steady.
SCHEDULE = [800, 800, 800, 800, 480, 480, 480, 1050, 1050, 1050]


def build_driver_factory(rng: np.random.Generator):
    """One MultiReaderSimulator per epoch, sized from the schedule."""
    populations = {}

    def factory(epoch: int):
        n = SCHEDULE[min(epoch, len(SCHEDULE) - 1)]
        if n not in populations:
            populations[n] = TagPopulation.random(
                n, np.random.default_rng((7, n))
            )
        population = populations[n]
        field = MobileTagField.random(
            population.tag_ids,
            num_readers=2,
            overlap_probability=0.25,
            rng=np.random.default_rng((11, epoch)),
        )
        return MultiReaderSimulator(
            population,
            field,
            config=PetConfig(
                tree_height=TREE_HEIGHT, passive_tags=True
            ),
            rng=np.random.default_rng((13, epoch)),
        )

    return factory


def main() -> None:
    rng = np.random.default_rng(2024)
    session = EstimationSession(
        driver_factory=build_driver_factory(rng),
        config=PetConfig(
            tree_height=TREE_HEIGHT,
            passive_tags=True,
            rounds=ROUNDS_PER_EPOCH,
        ),
        monitor=True,
        base_seed=99,
    )

    print("Dock door: continuous pallet-count monitoring "
          "(2 readers, anonymous)\n")
    print(f"{'epoch':>5}  {'true':>6}  {'estimate':>9}  "
          f"{'error':>7}  {'alert':>7}")
    for epoch, true_n in enumerate(SCHEDULE):
        result = session.run_epoch()
        error = abs(result.n_hat - true_n) / true_n
        alert = (
            "CHANGE"
            if result.monitor_report and result.monitor_report.changed
            else ""
        )
        print(f"{epoch:>5}  {true_n:>6}  {result.n_hat:>9,.0f}  "
              f"{error:>6.1%}  {alert:>7}")

    print(f"\nchange alerts at epochs: {session.change_epochs} "
          f"(ground truth: level shifts at 4 and 7)")

    with tempfile.TemporaryDirectory() as tmp:
        path = session.save(
            Path(tmp) / "dock_door.json", name="dock-door-demo"
        )
        document = load_experiment(path)
        print(f"epoch log persisted: {len(rows_of(document))} rows, "
              f"schema v{document['schema']}, "
              f"library {document['library_version']}")


if __name__ == "__main__":
    main()
