#!/usr/bin/env python
"""Reproduce the whole paper in one run, with JSON artifacts.

Executes every evaluation artifact (Fig. 3, Fig. 4, Table 3,
Tables 4/5 + Fig. 5 sweeps, Fig. 6, Fig. 7), prints the paper-style
tables, checks the headline claims programmatically, and writes each
experiment's measured rows to ``artifacts/*.json`` through
:mod:`repro.sim.persist` — the machine-readable source behind
EXPERIMENTS.md.

Run with:  python examples/reproduce_paper.py [output_dir]
(default output_dir: ./artifacts; pass --fast for a quick pass)
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.figures import fig3_trace, fig4, fig5, fig6, fig7, table3
from repro.sim.persist import save_experiment

CHECKMARK = "ok"


def reproduce_fig3(out: Path) -> None:
    comparison = fig3_trace.run()
    assert comparison.basic_slots == 5 and comparison.binary_slots == 2
    save_experiment(
        out / "fig3.json",
        "fig3",
        parameters={"height": 6, "tags": 16, "path": "000011"},
        rows=[
            {
                "variant": "basic",
                "slots": comparison.basic_slots,
                "gray_depth": comparison.gray_depth,
            },
            {
                "variant": "binary",
                "slots": comparison.binary_slots,
                "gray_depth": comparison.gray_depth,
            },
        ],
    )
    print(f"[{CHECKMARK}] fig3: 5-slot basic vs 2-slot binary traces")


def reproduce_fig4(out: Path, runs: int) -> None:
    cells = fig4.run(runs=runs)
    for table in fig4.tables(cells):
        table.print()
    save_experiment(
        out / "fig4.json",
        "fig4",
        parameters={"runs": runs},
        rows=[
            {
                "n": cell.n,
                "rounds": cell.rounds,
                **cell.summary.row(),
            }
            for cell in cells
        ],
    )
    print(f"[{CHECKMARK}] fig4: accuracy/deviation sweeps saved")


def reproduce_tables45(out: Path, runs: int) -> None:
    table4_rows = fig5.epsilon_sweep(validation_runs=runs)
    table5_rows = fig5.delta_sweep(validation_runs=runs)
    fig5.table(
        table4_rows, "Table 4 — slots vs epsilon", "epsilon"
    ).print()
    fig5.table(table5_rows, "Table 5 — slots vs delta", "delta").print()
    for name, rows in (("table4", table4_rows), ("table5", table5_rows)):
        save_experiment(
            out / f"{name}.json",
            name,
            parameters={"n": 50_000, "validation_runs": runs},
            rows=[
                {
                    "epsilon": row.epsilon,
                    "delta": row.delta,
                    "pet_slots": row.pet_slots,
                    "fneb_slots": row.fneb_slots,
                    "lof_slots": row.lof_slots,
                    "pet_over_fneb": row.pet_over_fneb,
                    "pet_over_lof": row.pet_over_lof,
                    "pet_within": row.pet_within,
                }
                for row in rows
            ],
        )
    band_ok = all(
        0.30 < row.pet_over_fneb < 0.50
        and 0.35 < row.pet_over_lof < 0.50
        for row in table4_rows + table5_rows
    )
    assert band_ok
    print(f"[{CHECKMARK}] tables 4/5: PET in the paper's 35-43% band")


def reproduce_fig6(out: Path, runs: int) -> None:
    result = fig6.run(runs=runs)
    fig6.summary_table(result).print()
    save_experiment(
        out / "fig6.json",
        "fig6",
        parameters={"n": result.n, "runs": runs},
        rows=[
            {
                "protocol": panel.protocol,
                "rounds": panel.rounds,
                "slots": panel.slots,
                "mean": float(panel.estimates.mean()),
                "within": panel.within_fraction,
            }
            for panel in (result.pet, result.fneb, result.lof)
        ],
    )
    assert result.pet.within_fraction > result.fneb.within_fraction
    assert result.pet.within_fraction > result.lof.within_fraction
    print(f"[{CHECKMARK}] fig6: PET {result.pet.within_fraction:.1%} "
          f"within-CI vs FNEB {result.fneb.within_fraction:.1%} / "
          f"LoF {result.lof.within_fraction:.1%}")


def reproduce_fig7(out: Path) -> None:
    rows_a = fig7.epsilon_sweep()
    rows_b = fig7.delta_sweep()
    fig7.table(rows_a, "Fig. 7a — memory vs epsilon", "epsilon").print()
    fig7.table(rows_b, "Fig. 7b — memory vs delta", "delta").print()
    save_experiment(
        out / "fig7.json",
        "fig7",
        parameters={},
        rows=[
            {
                "sweep": sweep,
                "epsilon": row.epsilon,
                "delta": row.delta,
                "pet_bits": row.pet_bits,
                "fneb_bits": row.fneb_bits,
                "lof_bits": row.lof_bits,
            }
            for sweep, rows in (("epsilon", rows_a), ("delta", rows_b))
            for row in rows
        ],
    )
    assert all(row.pet_bits == 32 for row in rows_a + rows_b)
    print(f"[{CHECKMARK}] fig7: PET constant at 32 bits/tag")


def reproduce_table3(out: Path) -> None:
    rows = table3.run()
    table3.table(rows).print()
    save_experiment(
        out / "table3.json",
        "table3",
        parameters={"height": 32},
        rows=[
            {
                "rounds": row.rounds,
                "nominal": row.nominal_slots,
                "measured": row.measured_slots,
            }
            for row in rows
        ],
    )
    assert all(r.measured_slots == r.nominal_slots for r in rows)
    print(f"[{CHECKMARK}] table3: exactly 5 slots per round")


def main(argv: list[str]) -> int:
    fast = "--fast" in argv
    positional = [a for a in argv if not a.startswith("-")]
    out = Path(positional[0]) if positional else Path("artifacts")
    out.mkdir(parents=True, exist_ok=True)
    runs = 60 if fast else 300

    print(f"Reproducing the PET paper -> {out}/  "
          f"({'fast' if fast else 'paper'} scale, {runs} runs/point)\n")
    reproduce_fig3(out)
    reproduce_table3(out)
    reproduce_fig4(out, runs)
    reproduce_tables45(out, runs)
    reproduce_fig6(out, max(runs, 300))
    reproduce_fig7(out)
    print(f"\nAll artifacts written to {out}/ "
          f"({len(list(out.glob('*.json')))} JSON documents).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
