#!/usr/bin/env python
"""Warehouse inventory: multi-reader cargo counting (paper Sec. 1, 4.6.3).

Scenario: a 120 m x 80 m warehouse holds tens of thousands of tagged
cargo items.  A grid of readers covers the floor with deliberately
overlapping ranges, coordinated by a back-end controller.  The task is
the paper's motivating one — "verifying the amount of products with RFID
labels in cargo shipping" — where an approximate count with a guarantee
beats itemizing every tag.

This example demonstrates:

* geometric deployment and coverage computation;
* duplicate-insensitive aggregation (tags in overlaps count once);
* an accuracy-planned estimate vs the exact (slow) identification count.

Run with:  python examples/warehouse_inventory.py
"""

from __future__ import annotations

import numpy as np

from repro import AccuracyRequirement, PetConfig, PetEstimator
from repro.protocols import TreeWalkIdentification
from repro.reader.controller import ReaderController
from repro.reader.deployment import Deployment
from repro.tags.pet_tags import PassivePetTag
from repro.tags.population import TagPopulation

TREE_HEIGHT = 24
NUM_ITEMS = 4_000  # slot-level simulation: keep it demo-sized


def main() -> None:
    rng = np.random.default_rng(2011)

    print("Deploying a 3x4 reader grid over a 120m x 80m warehouse...")
    deployment = Deployment.grid(120.0, 80.0, rows=3, cols=4)
    population = TagPopulation.random(NUM_ITEMS, rng)
    field = deployment.scatter_tags(population, rng)
    duplicated = len(field.duplicated_tags)
    print(f"  {len(deployment.readers)} readers, "
          f"{population.size:,} tagged items")
    print(f"  {duplicated:,} items sit in overlapping coverage "
          f"({duplicated / population.size:.0%}) — the duplicate-count "
          f"hazard\n")

    # Passive tags: each carries one preloaded 24-bit PET code.
    tags_by_id = {
        int(tag_id): PassivePetTag(int(tag_id), TREE_HEIGHT)
        for tag_id in population.tag_ids
    }
    channels = deployment.build_channels(field, tags_by_id, rng=rng)

    requirement = AccuracyRequirement(epsilon=0.10, delta=0.05)
    config = PetConfig(tree_height=TREE_HEIGHT, passive_tags=True)
    estimator = PetEstimator(
        config=config, requirement=requirement, rng=rng
    )
    rounds = estimator.planned_rounds
    print(f"Accuracy contract: eps={requirement.epsilon:.0%}, "
          f"delta={requirement.delta:.0%} -> m = {rounds} rounds")

    controller = ReaderController(
        channels, config=config.with_rounds(rounds), rng=rng
    )
    result = PetEstimator(
        config=config.with_rounds(rounds), rng=rng
    ).run(controller)

    print(f"\nPET estimate across the controller: "
          f"{result.n_hat:,.0f} items")
    print(f"  truth: {population.size:,}  "
          f"(error {abs(result.n_hat - population.size) / population.size:.2%})")
    print(f"  wall-clock cost: {result.total_slots:,} slots "
          f"(readers interrogate concurrently)")

    print("\nFor contrast, exact identification (tree walking, one "
          "combined reader):")
    count, slots = TreeWalkIdentification().count(population)
    print(f"  exact count: {count:,} in {slots:,} slots — "
          f"{slots / max(result.total_slots, 1):.1f}x the slot cost, "
          f"and it reveals every tag ID")
    print("\nPET gets the approximate answer anonymously and "
          "duplicate-insensitively.")


if __name__ == "__main__":
    main()
