#!/usr/bin/env python
"""Passive-tag economics: why PET's fixed code matters (Sec. 4.5, Fig. 7).

Passive tags cannot compute hashes on-chip, so whatever per-round
randomness a protocol needs must be preloaded at manufacturing.  This
example quantifies that trade for a tightening accuracy target, shows
the on-air cost accounting of the Sec. 4.6.2 command-encoding
optimizations (32-bit mask -> 5-bit mid -> 1-bit feedback), and verifies
on the slot-level simulator that the passive variant still estimates
accurately while performing *zero* hash evaluations.

Run with:  python examples/passive_tag_overhead.py
"""

from __future__ import annotations

import numpy as np

from repro import AccuracyRequirement, PetConfig, TagPopulation
from repro.protocols.fneb import FnebProtocol
from repro.protocols.lof import LofProtocol
from repro.protocols.pet import PetProtocol
from repro.radio.timing import SlotTimingModel
from repro.sim.report import Table
from repro.sim.slotsim import SlotLevelSimulator
from repro.tags.memory import MemoryModel


def memory_vs_accuracy() -> None:
    print("Per-tag preloaded memory as the accuracy target tightens "
          "(Fig. 7's economics):\n")
    model = MemoryModel(code_bits=32)
    pet, fneb, lof = PetProtocol(), FnebProtocol(), LofProtocol()
    table = Table(
        "bits of manufacturing-time ROM per tag",
        ["epsilon", "PET", "FNEB", "LoF"],
    )
    for epsilon in (0.20, 0.10, 0.05, 0.02):
        requirement = AccuracyRequirement(epsilon, 0.01)
        table.add_row(
            f"{epsilon:.0%}",
            model.pet(pet.plan_rounds(requirement)).preloaded_bits,
            model.fneb(fneb.plan_rounds(requirement)).preloaded_bits,
            model.lof(lof.plan_rounds(requirement)).preloaded_bits,
        )
    table.print()


def command_encoding_cost() -> None:
    print("Command overhead per round under the Sec. 4.6.2 encodings "
          "(air time for one 5-slot round):\n")
    timing = SlotTimingModel()
    table = Table(
        "reader command encoding",
        ["encoding", "payload bits/slot", "round air time (ms)"],
    )
    for encoding, bits in (("mask", 32), ("mid", 6), ("feedback", 1)):
        budget = timing.uniform(5, bits)
        table.add_row(encoding, bits, budget.milliseconds)
    table.print()


def passive_run() -> None:
    print("Slot-level verification: passive tags, zero hashing:\n")
    rng = np.random.default_rng(1234)
    population = TagPopulation.random(800, rng)
    simulator = SlotLevelSimulator(
        population,
        config=PetConfig(
            tree_height=20, passive_tags=True, rounds=256
        ),
        rng=rng,
        query_encoding="feedback",
    )
    result = simulator.estimate()
    hash_evaluations = sum(
        tag.costs.hash_evaluations for tag in simulator.tags
    )
    comparisons = sum(
        tag.costs.bitwise_comparisons for tag in simulator.tags
    )
    print(f"  true n = {population.size}, "
          f"n_hat = {result.n_hat:.0f} "
          f"({abs(result.n_hat - population.size) / population.size:.1%} "
          f"error at 256 rounds)")
    print(f"  hash evaluations across ALL tags and rounds: "
          f"{hash_evaluations}")
    print(f"  bitwise prefix comparisons (cheap): {comparisons:,}")
    print(f"  command payload on air: "
          f"{simulator.trace.total_payload_bits:,} bits total")


if __name__ == "__main__":
    memory_vs_accuracy()
    command_encoding_cost()
    passive_run()
