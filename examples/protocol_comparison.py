#!/usr/bin/env python
"""Protocol shoot-out: every estimator in the zoo on one population.

Runs PET (binary, linear, passive), FNEB, LoF, USE, UPE and EZB against
the same 20 000-tag population, with each protocol's rounds planned for
the same (eps = 10 %, delta = 5 %) contract — then compares estimate
quality, slot cost, and per-tag memory footprint side by side.

Also shows the identification baselines (Aloha-Q, tree walking) for the
exact count, to make the estimation-vs-identification gap concrete.

Run with:  python examples/protocol_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import AccuracyRequirement, TagPopulation, make_protocol
from repro.protocols import (
    FramedAlohaIdentification,
    TreeWalkIdentification,
)
from repro.sim.report import Table, protocol_results_table
from repro.tags.memory import memory_profile

N = 20_000
REQUIREMENT = AccuracyRequirement(epsilon=0.10, delta=0.05)


def main() -> None:
    rng = np.random.default_rng(404)
    population = TagPopulation.random(N, rng)
    print(f"population: {N:,} tags; contract: "
          f"eps={REQUIREMENT.epsilon:.0%}, "
          f"delta={REQUIREMENT.delta:.0%}\n")

    results = []
    zoo = ["pet", "pet-linear", "pet-passive", "fneb", "lof"]
    for name in zoo:
        protocol = make_protocol(name)
        rounds = protocol.plan_rounds(REQUIREMENT)
        results.append(protocol.estimate(population, rounds, rng))

    # Framed estimators need frames sized near the population; their
    # configuration goes straight through make_protocol keywords.
    for name, config in (
        ("use", {"frame_size": 65_536}),
        ("upe", {"frame_size": 4_096, "prior_n": N}),
        ("ezb", {"frame_size": 16_384, "persistence": 0.5}),
    ):
        protocol = make_protocol(name, **config)
        rounds = min(protocol.plan_rounds(REQUIREMENT), 50)
        results.append(protocol.estimate(population, rounds, rng))

    protocol_results_table(
        results,
        true_n=N,
        title="Estimation protocols (rounds planned per protocol)",
    ).print()

    memory = Table(
        "Per-tag memory footprint",
        ["protocol", "preloaded bits"],
    )
    for name in zoo:
        key = "pet" if name.startswith("pet") else name
        rounds = make_protocol(name).plan_rounds(REQUIREMENT)
        memory.add_row(
            name, memory_profile(key, rounds).preloaded_bits
        )
    memory.print()

    print("Exact identification, for contrast:")
    aloha_count, aloha_slots = FramedAlohaIdentification().count(
        population, rng
    )
    tree_count, tree_slots = TreeWalkIdentification().count(population)
    exact = Table(
        "Identification protocols (exact count)",
        ["protocol", "count", "slots"],
    )
    exact.add_row("aloha-q", aloha_count, aloha_slots)
    exact.add_row("treewalk", tree_count, tree_slots)
    exact.print()

    print("Takeaways: PET meets the contract with the fewest slots and "
          "constant 32-bit tag memory;\nthe linear variant pays "
          "O(log n) per round; identification costs O(n) slots.")


if __name__ == "__main__":
    main()
