#!/usr/bin/env python
"""Quickstart: estimate an RFID tag population with PET.

Walks the library's four levels of abstraction:

1. the one-call facade — ``repro.estimate`` — which is all most users
   need;
2. the explicit PET tree on a toy population (Fig. 1's mental model);
3. a full slot-level protocol run — real tags, a real channel, a real
   reader — small enough to read the trace;
4. production-scale estimation with the fast simulators, planned from an
   ``(epsilon, delta)`` accuracy contract.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import (
    AccuracyRequirement,
    EstimatingPath,
    PetConfig,
    PetEstimator,
    PetTree,
    SampledSimulator,
    SlotLevelSimulator,
    TagPopulation,
)


def demo_facade() -> None:
    """Level 0: the one-call facade."""
    print("=" * 64)
    print("0. One call: repro.estimate")
    print("=" * 64)
    result = repro.estimate(50_000, protocol="pet", seed=7, rounds=256)
    print(f"true n = 50,000, n_hat = {result.n_hat:,.0f} "
          f"({result.rounds} rounds, {result.total_slots:,} slots)")
    # Any registered protocol, any of its constructor keywords:
    result = repro.estimate(
        50_000, protocol="fneb", seed=7, rounds=64, frame_size=2**16
    )
    print(f"fneb with a 2^16 frame: n_hat = {result.n_hat:,.0f}")
    print("protocols available by name:")
    for name, summary in repro.available_protocols():
        print(f"  {name:<14} {summary}")
    print()


def demo_tree() -> None:
    """Level 1: the conceptual tree (paper Fig. 1)."""
    print("=" * 64)
    print("1. The conceptual PET tree (Fig. 1)")
    print("=" * 64)
    # Four tags hashed to 4-bit codes, exactly as in the paper.
    tree = PetTree(height=4, codes=[0b0001, 0b0110, 0b1011, 0b1110])
    path = EstimatingPath.from_string("0011")
    print(f"leaf row (# = tag, r = estimating path leaf): "
          f"{tree.render(path)}")
    depth = tree.gray_depth(path)
    print(f"estimating path r = {path}")
    print(f"gray node: depth {depth}, height {tree.height - depth}")
    print(f"(prefix {path.prefix_string(depth)} is busy, "
          f"{path.prefix_string(depth + 1)} is idle)\n")


def demo_slot_level() -> None:
    """Level 2: the protocol on the air, slot by slot."""
    print("=" * 64)
    print("2. A real protocol round over the slotted channel")
    print("=" * 64)
    rng = np.random.default_rng(7)
    population = TagPopulation.random(40, rng)
    simulator = SlotLevelSimulator(
        population,
        config=PetConfig(tree_height=16, rounds=64),
        rng=rng,
    )
    result = simulator.estimate()
    print(f"true n = {population.size}, "
          f"n_hat = {result.n_hat:.1f} after {result.num_rounds} rounds "
          f"({result.total_slots} query slots)")
    print("\nfirst round on the air:")
    round_slots = [
        event for event in simulator.trace.events[:8]
    ]
    for event in round_slots:
        print(f"  slot {event.index:>2}  {event.command:<22} "
              f"{event.outcome.slot_type.value}")
    print()


def demo_planned_estimation() -> None:
    """Level 3: production-scale estimation from an accuracy contract."""
    print("=" * 64)
    print("3. Planned estimation: 1 million tags, eps=5%, delta=1%")
    print("=" * 64)
    requirement = AccuracyRequirement(epsilon=0.05, delta=0.01)
    estimator = PetEstimator(
        requirement=requirement, rng=np.random.default_rng(11)
    )
    rounds = estimator.planned_rounds
    print(f"rounds planned from Eq. 20: m = {rounds} "
          f"(independent of n!)")

    n = 1_000_000
    simulator = SampledSimulator(
        n, config=PetConfig(rounds=rounds),
        rng=np.random.default_rng(12),
    )
    result = simulator.estimate()
    error = abs(result.n_hat - n) / n
    print(f"true n = {n:,}")
    print(f"n_hat  = {result.n_hat:,.0f}  (relative error "
          f"{error:.2%}, contract allows 5%)")
    print(f"cost   = {result.total_slots:,} slots "
          f"({result.total_slots // rounds} per round — "
          f"O(log log n))")

    from repro.radio.timing import SlotTimingModel

    budget = SlotTimingModel().uniform(result.total_slots, 6)
    print(f"air time at Gen2-ish rates: ~{budget.seconds:.1f} s\n")


if __name__ == "__main__":
    demo_facade()
    demo_tree()
    demo_slot_level()
    demo_planned_estimation()
