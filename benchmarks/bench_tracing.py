#!/usr/bin/env python
"""Benchmark distributed-tracing overhead on the serve tier.

Two legs serve the exact same multi-tenant workload as
:mod:`bench_serve` (128 requests, concurrency 32) through
:func:`repro.serve.run_requests`, both with a real
:class:`~repro.obs.MetricsRegistry` attached:

* **untraced** — ``ServiceConfig(trace_requests=False)``: counters,
  gauges and latency histograms only (the pre-tracing serve tier);
* **traced** — ``trace_requests=True`` (the default): every request
  additionally gets a root :class:`~repro.obs.TraceContext`, the full
  admission/queue/fusion/kernel/respond span set, histogram
  exemplars, and SLO burn-rate accounting.

The contract (enforced by ``bench_guard --tracing``) is that the
traced leg stays within ``TRACING_BOUND`` (10 %) of the untraced leg
on **process CPU time**: request tracing must be cheap enough to
leave on in production.  CPU time is the honest denominator here —
wall clock on this workload is dominated by the scheduler's 1 ms tick
timer, whose epoll jitter is several times larger than the tracing
cost being measured.  Legs are interleaved and the committed figure
is the ratio of best-of-``repeats`` minima.

Because trace ids come from ``os.urandom`` — never the seeded RNG
streams — the two legs must also produce bit-identical estimates,
which this benchmark verifies per response.

Run to regenerate the committed record::

    PYTHONPATH=src python benchmarks/bench_tracing.py
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from bench_serve import WORKLOAD, build_requests

from repro.obs import MetricsRegistry
from repro.serve import ServiceConfig, run_requests

OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_obs_tracing.json"
)

#: Allowed CPU-time slowdown of the traced leg vs the untraced leg.
TRACING_BOUND = 0.10

#: Spans every successfully fused request must contribute.
EXPECTED_SPANS = (
    "serve.request",
    "admission",
    "queue.wait",
    "fusion",
    "kernel",
    "respond",
)


def _service_config(trace_requests: bool) -> ServiceConfig:
    return ServiceConfig(
        max_queue_depth=WORKLOAD["requests"],
        max_batch_size=WORKLOAD["concurrency"],
        tenant_quota=WORKLOAD["requests"],
        tick_seconds=0.001,
        trace_requests=trace_requests,
    )


def time_leg(trace_requests: bool):
    """Serve the benchmark workload once; returns timings + registry."""
    registry = MetricsRegistry()
    requests = build_requests()
    wall = time.perf_counter()
    cpu = time.process_time()
    responses = run_requests(
        requests,
        config=_service_config(trace_requests),
        registry=registry,
        concurrency=WORKLOAD["concurrency"],
    )
    return (
        time.process_time() - cpu,
        time.perf_counter() - wall,
        responses,
        registry,
    )


def measure_all(repeats: int = 9) -> dict:
    """Paired CPU timings for both legs + trace checks.

    Legs run in interleaved pairs (untraced then traced, ``repeats``
    times, after one unmeasured warmup pair), so slow drifts of the
    host hit both sides equally.  The committed overhead figure is
    the **median of the per-pair CPU ratios** — the median discards
    the occasional pair where a GC cycle or host-frequency wobble
    lands in one leg only, which a ratio-of-minima would keep.
    """
    time_leg(trace_requests=False)
    time_leg(trace_requests=True)
    untraced_cpu = traced_cpu = float("inf")
    untraced_wall = traced_wall = float("inf")
    untraced_responses = traced_responses = registry = None
    ratios = []
    for _ in range(repeats):
        cpu, wall, responses, _ = time_leg(trace_requests=False)
        untraced_cpu = min(untraced_cpu, cpu)
        untraced_wall = min(untraced_wall, wall)
        untraced_responses = responses
        pair_base = cpu
        cpu, wall, responses, fresh = time_leg(trace_requests=True)
        if cpu < traced_cpu:
            traced_cpu = cpu
            registry = fresh
        traced_wall = min(traced_wall, wall)
        traced_responses = responses
        ratios.append(cpu / pair_base)
    assert untraced_responses and traced_responses and registry
    ratios.sort()
    overhead = ratios[len(ratios) // 2] - 1.0

    bit_identical = all(
        a.status == b.status == "ok"
        and a.result.n_hat == b.result.n_hat
        and a.result.total_slots == b.result.total_slots
        for a, b in zip(untraced_responses, traced_responses)
    )
    trace_ids = {
        record.trace_id for record in registry.trace if record.trace_id
    }
    roots = sum(
        1 for record in registry.trace if record.name == "serve.request"
    )
    names = {record.name for record in registry.trace}
    latency = registry._histograms.get("serve.request.latency_seconds")
    exemplar_buckets = (
        len(latency.exemplars) if latency and latency.exemplars else 0
    )
    return {
        "workload": dict(WORKLOAD),
        "untraced": {
            "cpu_seconds": round(untraced_cpu, 4),
            "wall_seconds": round(untraced_wall, 4),
        },
        "traced": {
            "cpu_seconds": round(traced_cpu, 4),
            "wall_seconds": round(traced_wall, 4),
            "overhead": round(overhead, 4),
            "bound": TRACING_BOUND,
            "traces": len(trace_ids),
            "root_spans": roots,
            "span_names_complete": all(
                name in names for name in EXPECTED_SPANS
            ),
            "exemplar_buckets": exemplar_buckets,
        },
        "bit_identical": bit_identical,
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }


def main() -> int:
    record = measure_all()
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    traced = record["traced"]
    print(
        f"untraced: {record['untraced']['cpu_seconds']:.3f}s cpu  "
        f"traced: {traced['cpu_seconds']:.3f}s cpu  "
        f"overhead: {traced['overhead']:+.1%} "
        f"(bound {traced['bound']:.0%})  "
        f"bit_identical={record['bit_identical']}"
    )
    print(
        f"traces: {traced['traces']}  root spans: "
        f"{traced['root_spans']}  span set complete: "
        f"{traced['span_names_complete']}  exemplar buckets: "
        f"{traced['exemplar_buckets']}"
    )
    print(f"record written to {OUTPUT}")
    ok = (
        record["bit_identical"]
        and traced["overhead"] <= traced["bound"]
        and traced["span_names_complete"]
        and traced["exemplar_buckets"] > 0
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
