"""Bench: exact finite-m theory vs simulation (Fig. 4's overlays, exact).

The first-order theory line (``ln2 sigma_h / sqrt(m)``) underpredicts
the deviation at small m (log-normal heavy tail).  The exact moments
from ``repro.analysis.variance`` nail it at every m — demonstrated
against simulation here.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.variance import estimate_moments
from repro.config import PetConfig
from repro.core.accuracy import estimate_std
from repro.sim.report import Table
from repro.sim.sampled import SampledSimulator

N = 50_000
ROUNDS_GRID = (8, 16, 32, 64, 128, 256)
RUNS = 2_000


def test_bench_exact_vs_linear_theory(once):
    def sweep():
        rows = []
        simulator = SampledSimulator(
            N, config=PetConfig(), rng=np.random.default_rng(23)
        )
        for rounds in ROUNDS_GRID:
            estimates = simulator.estimate_batch(rounds, RUNS)
            measured = float(
                np.sqrt(np.mean((estimates - N) ** 2))
            ) / N
            exact = estimate_moments(N, 32, rounds)
            linear = estimate_std(N, rounds) / N
            rows.append(
                (rounds, measured, exact.normalized_rms, linear,
                 exact.relative_bias)
            )
        return rows

    rows = once(sweep)
    print()
    table = Table(
        f"Exact vs linearized deviation theory (n = {N:,}, "
        f"{RUNS} runs per point)",
        ["m", "measured nRMS", "exact theory", "linear theory",
         "exact bias"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()

    for rounds, measured, exact, linear, bias in rows:
        # Exact theory matches simulation within sampling error...
        assert abs(measured - exact) / exact < 0.08, f"m={rounds}"
        # ...and strictly dominates the linearized line at small m.
        if rounds <= 16:
            assert exact > linear * 1.1
        # Bias shrinks like 1/m.
        assert bias < 1.0 / rounds
