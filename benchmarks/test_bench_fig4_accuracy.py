"""Bench fig4: PET accuracy / std / normalized std vs rounds.

Regenerates all three Fig. 4 panels at 300 runs per point (the paper's
setting) on the sampled tier.
"""

from __future__ import annotations

from repro.figures import fig4


def test_bench_fig4_panels(once):
    cells = once(
        fig4.run,
        sizes=(1_000, 5_000, 10_000, 50_000),
        rounds_grid=(8, 16, 32, 64, 128, 256),
        runs=300,
    )
    print()
    for table in fig4.tables(cells):
        table.print()

    by_key = {(c.n, c.rounds): c for c in cells}
    # Paper claims: accuracy ~1 by 32-64 rounds, normalized std ~0.2 at
    # m = 64, insensitive to n.
    for n in (1_000, 5_000, 10_000, 50_000):
        assert 0.93 < by_key[(n, 64)].summary.accuracy < 1.07
        assert 0.12 < by_key[(n, 64)].summary.normalized_std < 0.30
    # Deviation shrinks with rounds.
    for n in (1_000, 50_000):
        assert (
            by_key[(n, 256)].summary.std < by_key[(n, 8)].summary.std
        )
