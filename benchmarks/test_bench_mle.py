"""Bench: moment estimator (Eq. 14) vs maximum likelihood vs censoring.

The paper's estimator inverts the mean depth; the MLE extension uses
the full per-round law.  This bench measures the RMS gap at several
round counts and demonstrates the censored MLE recovering the truth
from truncated scans — something the moment estimator cannot do.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.mle import mle_estimate, mle_estimate_censored
from repro.core.accuracy import estimate_from_depths
from repro.sim.report import Table
from repro.sim.sampled import SampledSimulator

N = 20_000
TRIALS = 80


def test_bench_mle_vs_moment(once):
    def sweep():
        rows = []
        for rounds in (16, 64, 256):
            moment_err, mle_err = [], []
            simulator = SampledSimulator(
                N, rng=np.random.default_rng((29, rounds))
            )
            for _ in range(TRIALS):
                depths = simulator.sample_depths(rounds)
                moment_err.append(
                    abs(estimate_from_depths(depths) - N) / N
                )
                mle_err.append(abs(mle_estimate(depths, 32) - N) / N)
            rows.append(
                (
                    rounds,
                    float(np.sqrt(np.mean(np.square(moment_err)))),
                    float(np.sqrt(np.mean(np.square(mle_err)))),
                )
            )
        return rows

    rows = once(sweep)
    print()
    table = Table(
        f"Moment (Eq. 14) vs MLE estimator, n = {N:,}, "
        f"{TRIALS} trials/point",
        ["rounds", "moment nRMS", "MLE nRMS", "MLE/moment"],
    )
    for rounds, moment_rms, mle_rms in rows:
        table.add_row(
            rounds, moment_rms, mle_rms, mle_rms / moment_rms
        )
    table.print()
    for _, moment_rms, mle_rms in rows:
        assert mle_rms <= moment_rms * 1.05


def test_bench_censored_mle(once):
    censor = 13  # well below E[d] ~ 14.6 at n = 20k: harsh truncation

    def run():
        simulator = SampledSimulator(
            N, rng=np.random.default_rng(31)
        )
        depths = np.minimum(simulator.sample_depths(2048), censor)
        censored_fraction = float((depths == censor).mean())
        estimate = mle_estimate_censored(depths, 32, censor_at=censor)
        return censored_fraction, estimate

    censored_fraction, estimate = once(run)
    print()
    print(
        f"censored MLE: truncating every scan at prefix {censor} "
        f"censors {censored_fraction:.0%} of rounds; "
        f"MLE still estimates {estimate:,.0f} (truth {N:,})"
    )
    assert censored_fraction > 0.5
    assert 0.85 < estimate / N < 1.15
