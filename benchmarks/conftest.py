"""Shared benchmark configuration.

Every benchmark prints the paper-style table it regenerates (visible
with ``pytest benchmarks/ --benchmark-only -s`` and in this repo's
``bench_output.txt``), and times the underlying experiment once via
``benchmark.pedantic`` — these are experiments, not microbenchmarks, so
re-running them dozens of times would only waste the budget.

Scale knobs are chosen so the full suite finishes in a few minutes
while preserving every qualitative claim being checked.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under timing, return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
