#!/usr/bin/env python
"""CI guard: the instrumented batched engine must stay fast and exact.

Re-times the fig-4-sized cell recorded in ``BENCH_batched_engine.json``
(n = 10 000, 300 repetitions, m = 4697 rounds) **with metrics enabled**
and fails when either

* the machine-relative speedup (reference loop vs batched engine, both
  timed here, on this machine) regresses more than ``--threshold``
  (default 15 %) below the recorded speedup, or
* the batched estimates stop being a bit-identical prefix match of the
  reference loop's, or
* the registry's slot accounting disagrees with the cell's own
  ``slots_per_run * repetitions``.

Comparing speedup-against-our-own-loop rather than raw rounds/second
keeps the guard meaningful across CI hardware generations: both sides
of the ratio move with the machine, so only a real relative regression
of the batched path trips it.

Run with::

    PYTHONPATH=src python benchmarks/bench_guard.py [--loop-reps K]
                                                    [--threshold F]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.config import PAPER_RUNS_PER_POINT, PetConfig
from repro.core.accuracy import rounds_required
from repro.obs import MetricsRegistry, use_registry
from repro.sim.experiment import ExperimentRunner
from repro.sim.workload import WorkloadSpec

BASELINE = (
    Path(__file__).resolve().parent.parent / "BENCH_batched_engine.json"
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--loop-reps",
        type=int,
        default=20,
        help="repetitions to time the reference loop on (scaled up)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed relative speedup regression (default 0.15)",
    )
    args = parser.parse_args()

    baseline = json.loads(BASELINE.read_text())
    cell = baseline["cell"]
    recorded_speedup = float(baseline["speedup"])

    rounds = rounds_required(0.05, 0.01)
    assert rounds == cell["rounds"], (rounds, cell["rounds"])
    spec = WorkloadSpec(size=cell["n"], seed=0)
    config = PetConfig(passive_tags=True)
    repetitions = PAPER_RUNS_PER_POINT

    registry = MetricsRegistry()
    runner = ExperimentRunner(
        base_seed=cell["base_seed"],
        repetitions=repetitions,
        registry=registry,
    )
    with use_registry(registry):
        start = time.perf_counter()
        batched = runner.run_vectorized(
            spec, config, rounds, engine="batched"
        )
        batched_seconds = time.perf_counter() - start

    loop_reps = min(args.loop_reps, repetitions)
    loop_runner = ExperimentRunner(
        base_seed=cell["base_seed"], repetitions=loop_reps
    )
    start = time.perf_counter()
    loop_sample = loop_runner.run_vectorized(
        spec, config, rounds, engine="loop"
    )
    loop_seconds = (
        (time.perf_counter() - start) * repetitions / loop_reps
    )

    failures: list[str] = []

    prefix = batched.estimates[:loop_reps].tolist()
    if loop_sample.estimates.tolist() != prefix:
        failures.append(
            "instrumented batched engine is no longer bit-identical "
            "to the reference loop"
        )

    counters = registry.snapshot()["counters"]
    expected_slots = int(batched.slots_per_run * repetitions)
    recorded_slots = counters.get("sim.slots", 0)
    if recorded_slots != expected_slots:
        failures.append(
            f"slot accounting drifted: registry says "
            f"{recorded_slots}, cell says {expected_slots}"
        )

    speedup = loop_seconds / batched_seconds
    floor = recorded_speedup * (1.0 - args.threshold)
    if speedup < floor:
        failures.append(
            f"speedup regressed: {speedup:.1f}x on this machine vs "
            f"{recorded_speedup:.1f}x recorded "
            f"(floor {floor:.1f}x at {args.threshold:.0%} tolerance)"
        )

    print(
        f"batched: {batched_seconds:.3f}s  "
        f"loop (scaled from {loop_reps} reps): {loop_seconds:.3f}s  "
        f"speedup: {speedup:.1f}x (recorded {recorded_speedup:.1f}x, "
        f"floor {floor:.1f}x)"
    )
    print(
        f"slots recorded: {recorded_slots:,}  "
        f"bit-identical prefix: {loop_sample.estimates.tolist() == prefix}"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench guard passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
