#!/usr/bin/env python
"""CI guard: the instrumented batched engine must stay fast and exact.

Re-times the fig-4-sized cell recorded in ``BENCH_batched_engine.json``
(n = 10 000, 300 repetitions, m = 4697 rounds) **with metrics enabled**
and fails when either

* the machine-relative speedup (reference loop vs batched engine, both
  timed here, on this machine) regresses more than ``--threshold``
  (default 15 %) below the recorded speedup, or
* the batched estimates stop being a bit-identical prefix match of the
  reference loop's, or
* the registry's slot accounting disagrees with the cell's own
  ``slots_per_run * repetitions``.

Comparing speedup-against-our-own-loop rather than raw rounds/second
keeps the guard meaningful across CI hardware generations: both sides
of the ratio move with the machine, so only a real relative regression
of the batched path trips it.

With ``--diagnostics`` the guard re-runs the same cell a second time
with the full diagnostics stack attached (round-trace recorder in
``outliers_only`` mode + estimator-health monitor) and additionally
fails when

* the diagnosed run is more than ``--diag-threshold`` (default 25 %)
  slower than the plain instrumented run on the same machine,
* the diagnosed estimates are not bit-identical to the plain run's, or
* any recorded outlier round fails deterministic replay.

``--json-out`` writes the diagnostics measurements as JSON (the
committed ``BENCH_obs_diag.json``); ``--metrics-out`` dumps the
diagnosed run's metric stream as JSON lines (uploaded as a CI
artifact).

With ``--profile`` the guard instead times the same fig-4 cell twice —
once plain-instrumented, once with a
:class:`~repro.obs.PhaseProfiler` attached — taking the best of
``--profile-reps`` runs each, and fails when

* the profiled run is more than ``--threshold`` (default 5 %) slower
  than the plain instrumented run,
* the profiled estimates are not bit-identical to the plain run's,
* any canonical kernel phase (seed_matrix, hash_passes, reduction,
  finalize) is missing from the profile, or
* a small workers=2 sampled sweep's merged parent registry does not
  equal the serial run's on the deterministic parity view
  (:func:`repro.obs.parity_view` — counters, histogram buckets, event
  multiset).

``--profile-out`` writes the per-phase wall-time artifact;
``--json-out`` writes the guard's measurements (the committed
``BENCH_obs_parallel.json``).

With ``--protocols`` the guard instead checks the cross-protocol
batched comparison engine against ``BENCH_protocol_batched.json``:
every cell of :mod:`bench_protocol_batched` is re-measured on this
machine and the guard fails when

* any batched protocol cell stops being bit-identical to its scalar
  reference loop (or the sampled fig6 batch to its per-run loops),
* any cell's registry slot accounting disagrees with
  ``slots_per_run * repetitions``,
* a cell's machine-relative speedup regresses more than the threshold
  (default 30 % in this mode — cross-protocol cells are smaller and
  noisier than the fig-4 cell) below its committed figure, or
* the committed record itself no longer claims >= 10x on the
  ``fig6_fneb``, ``fig6_lof`` and ``table3_sweep`` cells (the PR's
  stated floor).

``--json-out`` in this mode writes the fresh measurements (same shape
as the committed record) for upload as a CI artifact.

With ``--backends`` the guard checks the kernel-backend tier against
``BENCH_backends.json``: every cell of :mod:`bench_backends` is
re-measured on this machine and the guard fails when

* any installed backend's kernels stop being bit-identical to the
  numpy reference (numba is *skipped*, not failed, when it is not
  installed — numpy-only environments stay green),
* numba, when installed, falls below the 1.5x microbench floor,
* the shared-seed sweep paths stop being bit-identical to their
  per-cell re-derive baselines,
* the shared rounds-grid sweep falls below its absolute 1.2x floor or
  regresses more than the threshold (default 50 % in this mode — the
  worker-pool leg is scheduling-noisy on small cells and the absolute
  floor is the binding contract) below the committed figure, or
* the committed record itself claims a non-bit-identical cell.

``--json-out`` in this mode writes the fresh measurements for upload
as a CI artifact.

With ``--serve`` the guard checks the micro-batching estimation
service against ``BENCH_serve.json``: the acceptance workload (128
multi-tenant requests at concurrency 32) is re-served on this machine
— sequentially through the facade path and coalesced through
:func:`repro.serve.run_requests` — and the guard fails when

* any coalesced response stops being bit-identical to the sequential
  result for the same seed (coalescing must be semantically lossless),
* the coalesced/sequential speedup falls below the absolute 3x floor
  or regresses more than the threshold (default 50 % — asyncio
  scheduling is noisy on shared CI hardware; the absolute floor is the
  binding contract) below the committed figure,
* the p99 latency read from the service's obs histogram is not a
  finite positive figure,
* any cell of the sharded identity matrix (shards in {1, 2, 4} x
  cache {on, off}) stops matching the sequential results — identity
  binds on every machine; the sharded >= 2x throughput floor binds
  only when the machine has >= 4 CPUs (skipped, not failed, below
  that — same policy as the numba microbench floor),
* the warm cache replay is not a 100 % hit, not bit-identical to its
  cold pass, or slower than the absolute 10x replay floor, or
* the committed record itself claims a sub-floor speedup, a
  non-bit-identical run, a bad identity-matrix cell, or is missing
  the sharded/cache sections or its cpu/backend fingerprint.

``--json-out`` in this mode writes the fresh measurements for upload
as a CI artifact.

With ``--tracing`` the guard checks distributed-tracing overhead
against ``BENCH_obs_tracing.json``: the serve workload is re-served
with ``trace_requests`` off and on (both with a real registry, paired
CPU timings, median-of-ratios — see :mod:`bench_tracing`) and the
guard fails when

* the traced leg's CPU overhead exceeds the 10 % bound (override
  with ``--threshold``),
* the traced leg stops being bit-identical to the untraced leg,
* any of the request span set (admission, queue.wait, fusion,
  kernel, respond under ``serve.request``) stops being recorded, not
  every request gets a root span, or the latency histogram carries
  no exemplars, or
* the committed record itself claims an over-bound overhead or a
  non-bit-identical run.

``--json-out`` in this mode writes the fresh measurements for upload
as a CI artifact.

With ``--fleet`` the guard checks the live fleet telemetry tier
against ``BENCH_obs_fleet.json``: the snapshot-interval sweep of
:mod:`bench_fleet` ({off, 1 s, 0.25 s} heartbeats at 2 and 4 shards)
is re-measured on this machine and the guard fails when

* any streamed cell stops being bit-identical to the sequential
  facade results (telemetry must be semantically invisible),
* the 0.25 s-heartbeat run at 4 shards costs more than 5 % wall time
  over stop-time-only telemetry — enforced only on machines with
  >= 4 CPUs (skipped, not failed, below that — same policy as the
  sharded throughput floor),
* a mid-run scrape of the router registry fails to converge to the
  full merged request count, or ``stop()`` changes the merged
  serving counters (the final merge must be idempotent against the
  streamed deltas),
* SIGKILLing a worker does not flip fleet health off ``ok`` within
  ``heartbeat_misses * interval`` seconds or the dead shard is not
  named ``dead``, or
* the committed record itself claims a non-bit-identical cell, an
  over-bound overhead, a non-idempotent stop, or a missed watchdog
  bound.

``--json-out`` in this mode writes the fresh measurements for upload
as a CI artifact.

Run with::

    PYTHONPATH=src python benchmarks/bench_guard.py [--loop-reps K]
        [--threshold F] [--diagnostics] [--diag-threshold F]
        [--protocols] [--json-out PATH] [--metrics-out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.config import PAPER_RUNS_PER_POINT, PetConfig
from repro.core.accuracy import rounds_required
from repro.obs import (
    EstimatorHealth,
    JsonLinesExporter,
    MetricsRegistry,
    RoundTraceRecorder,
    SamplingPolicy,
    use_registry,
    verify_replay,
)
from repro.sim.experiment import ExperimentRunner
from repro.sim.workload import WorkloadSpec

BASELINE = (
    Path(__file__).resolve().parent.parent / "BENCH_batched_engine.json"
)

PROTOCOL_BASELINE = (
    Path(__file__).resolve().parent.parent
    / "BENCH_protocol_batched.json"
)

BACKENDS_BASELINE = (
    Path(__file__).resolve().parent.parent / "BENCH_backends.json"
)

SERVE_BASELINE = (
    Path(__file__).resolve().parent.parent / "BENCH_serve.json"
)

TRACING_BASELINE = (
    Path(__file__).resolve().parent.parent / "BENCH_obs_tracing.json"
)

FLEET_BASELINE = (
    Path(__file__).resolve().parent.parent / "BENCH_obs_fleet.json"
)

#: Cells whose *committed* speedup must stay at or above 10x (the
#: cross-protocol engine's stated performance floor).
PROTOCOL_TENX_CELLS = ("fig6_fneb", "fig6_lof", "table3_sweep")

#: Outlier records replay-verified per guard run (each replay rebuilds
#: its repetition's population, so the full set would dominate the
#: guard's runtime without adding coverage).
MAX_REPLAYS = 200


# ---------------------------------------------------------------------
# Helpers shared by every guard mode


def _environment() -> dict:
    """Interpreter/platform fingerprint stamped into every artifact."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def _load_baseline(path: Path, regenerate_hint: str) -> dict:
    """Load a committed benchmark record or fail with the fix."""
    if not path.exists():
        print(
            f"FAIL: committed record {path.name} is missing; "
            f"regenerate it with `{regenerate_hint}`",
            file=sys.stderr,
        )
        raise SystemExit(1)
    return json.loads(path.read_text())


def _write_json(path: str, payload: dict, label: str) -> None:
    """Write a guard artifact as indented JSON and say where it went."""
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"{label} written to {path}")


def _finish(failures: list[str], label: str) -> int:
    """Print every failure to stderr; report success otherwise."""
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"{label} passed")
    return 0


def run_protocol_guard(args: argparse.Namespace) -> int:
    """``--protocols`` mode: guard the cross-protocol batched engine."""
    import bench_protocol_batched as bench

    threshold = (
        args.threshold if args.threshold is not None else 0.30
    )
    baseline = _load_baseline(
        PROTOCOL_BASELINE,
        "PYTHONPATH=src python benchmarks/bench_protocol_batched.py",
    )
    recorded_cells = baseline["cells"]
    failures: list[str] = []

    for name in PROTOCOL_TENX_CELLS:
        recorded = float(recorded_cells[name]["speedup"])
        if recorded < 10.0:
            failures.append(
                f"committed record claims only {recorded:.1f}x on "
                f"{name}; the engine's floor is 10x"
            )

    fresh = bench.measure_all(loop_reps=args.loop_reps)
    for name, cell in fresh["cells"].items():
        recorded_cell = recorded_cells.get(name)
        if recorded_cell is None:
            failures.append(
                f"cell {name} is measured but missing from the "
                f"committed record (re-run bench_protocol_batched)"
            )
            continue
        if cell.get("bit_identical") is False:
            failures.append(
                f"{name}: batched path is no longer bit-identical to "
                f"the scalar reference"
            )
        if cell.get("slots_exact") is False:
            failures.append(
                f"{name}: registry slot accounting disagrees with "
                f"slots_per_run * repetitions"
            )
        recorded = float(recorded_cell["speedup"])
        floor = recorded * (1.0 - threshold)
        if cell["speedup"] < floor:
            failures.append(
                f"{name}: speedup regressed to {cell['speedup']:.1f}x "
                f"vs {recorded:.1f}x recorded "
                f"(floor {floor:.1f}x at {threshold:.0%} tolerance)"
            )
        checks = "".join(
            f"  {key}={cell[key]}"
            for key in ("bit_identical", "slots_exact")
            if key in cell
        )
        print(
            f"{name:14s} {cell['speedup']:6.1f}x on this machine "
            f"(recorded {recorded:.1f}x, floor {floor:.1f}x){checks}"
        )

    if args.json_out is not None:
        _write_json(args.json_out, fresh, "fresh measurements")

    return _finish(failures, "protocol bench guard")


def run_profile_guard(args: argparse.Namespace) -> int:
    """``--profile`` mode: phase-profiler overhead + merge parity."""
    from repro.obs import PhaseProfiler, parity_view
    from repro.obs.profile import (
        KERNEL_PHASES,
        registry_phase_report,
        write_phase_json,
    )

    threshold = args.threshold if args.threshold is not None else 0.05
    baseline = _load_baseline(
        BASELINE, "PYTHONPATH=src python benchmarks/bench_batched_engine.py"
    )
    cell = baseline["cell"]
    rounds = rounds_required(0.05, 0.01)
    spec = WorkloadSpec(size=cell["n"], seed=0)
    config = PetConfig(passive_tags=True)
    repetitions = PAPER_RUNS_PER_POINT
    failures: list[str] = []

    def timed_cell(with_profiler: bool):
        registry = MetricsRegistry()
        if with_profiler:
            registry.attach_diagnostics(
                profiler=PhaseProfiler(registry=registry)
            )
        runner = ExperimentRunner(
            base_seed=cell["base_seed"],
            repetitions=repetitions,
            registry=registry,
        )
        with use_registry(registry):
            start = time.perf_counter()
            result = runner.run_vectorized(
                spec, config, rounds, engine="batched"
            )
            seconds = time.perf_counter() - start
        return seconds, result, registry

    # Best-of-N on both sides: the bound is tight (5 %), so a single
    # noisy run on shared CI hardware must not trip it.
    plain_seconds = profiled_seconds = float("inf")
    plain_result = profiled_result = profiled_registry = None
    for _ in range(args.profile_reps):
        seconds, result, _ = timed_cell(with_profiler=False)
        if seconds < plain_seconds:
            plain_seconds = seconds
        plain_result = result
        seconds, result, registry = timed_cell(with_profiler=True)
        if seconds < profiled_seconds:
            profiled_seconds = seconds
        profiled_result = result
        profiled_registry = registry
    assert plain_result is not None and profiled_result is not None
    assert profiled_registry is not None

    if (
        profiled_result.estimates.tolist()
        != plain_result.estimates.tolist()
    ):
        failures.append(
            "profiling perturbed the estimates: profiled run is no "
            "longer bit-identical to the plain instrumented run"
        )

    overhead = profiled_seconds / plain_seconds - 1.0
    if profiled_seconds > plain_seconds * (1.0 + threshold):
        failures.append(
            f"profiler overhead too high: {profiled_seconds:.3f}s vs "
            f"{plain_seconds:.3f}s plain ({overhead:+.1%}, bound "
            f"{threshold:.0%})"
        )

    report = registry_phase_report(profiled_registry)
    missing = [
        phase for phase in KERNEL_PHASES if phase not in report
    ]
    if missing:
        failures.append(
            f"kernel phases missing from the profile: {missing}"
        )

    print(
        f"plain: {plain_seconds:.3f}s  profiled: "
        f"{profiled_seconds:.3f}s  overhead: {overhead:+.1%} "
        f"(bound {threshold:.0%}, best of {args.profile_reps})"
    )
    for name, row in report.items():
        print(
            f"  {name:12s} {row['seconds']:8.3f}s  "
            f"{row['fraction']:6.1%}  ({row['calls']} calls)"
        )

    # Snapshot/merge parity: a small workers=2 sampled sweep must land
    # the parent registry exactly where a serial sweep does.
    sweep_sizes = [200, 400, 800, 1600]
    sweep_rounds = 40
    serial_registry = MetricsRegistry()
    serial = ExperimentRunner(
        base_seed=cell["base_seed"],
        repetitions=20,
        registry=serial_registry,
    ).sweep(sweep_sizes, PetConfig(), sweep_rounds)
    parallel_registry = MetricsRegistry()
    parallel = ExperimentRunner(
        base_seed=cell["base_seed"],
        repetitions=20,
        registry=parallel_registry,
    ).sweep(sweep_sizes, PetConfig(), sweep_rounds, workers=2)
    sweep_identical = all(
        a.estimates.tolist() == b.estimates.tolist()
        for a, b in zip(serial, parallel)
    )
    if not sweep_identical:
        failures.append(
            "workers=2 sweep estimates diverged from the serial sweep"
        )
    serial_view = parity_view(serial_registry.snapshot())
    parallel_view = parity_view(parallel_registry.snapshot())
    parity_keys_off = [
        key
        for key in serial_view
        if serial_view[key] != parallel_view[key]
    ]
    if parity_keys_off:
        failures.append(
            "workers=2 merged registry diverged from the serial "
            f"registry on: {parity_keys_off}"
        )
    print(
        f"merge parity (workers=2 vs serial, {len(sweep_sizes)} "
        f"cells): estimates identical={sweep_identical}  "
        f"registry parity={'ok' if not parity_keys_off else parity_keys_off}"
    )

    if args.profile_out is not None:
        write_phase_json(
            args.profile_out,
            profiled_registry,
            extra={"cell": cell, "guard": "profile"},
        )
        print(f"per-phase timings written to {args.profile_out}")

    if args.json_out is not None:
        _write_json(
            args.json_out,
            {
                "cell": cell,
                "plain": {"seconds": round(plain_seconds, 3)},
                "profiled": {
                    "seconds": round(profiled_seconds, 3),
                    "overhead": round(overhead, 4),
                    "bound": threshold,
                    "bit_identical": profiled_result.estimates.tolist()
                    == plain_result.estimates.tolist(),
                },
                "phases": {
                    name: {
                        "seconds": round(row["seconds"], 4),
                        "fraction": round(row["fraction"], 4),
                        "calls": int(row["calls"]),
                    }
                    for name, row in report.items()
                },
                "merge_parity": {
                    "workers": 2,
                    "cells": len(sweep_sizes),
                    "estimates_identical": sweep_identical,
                    "registry_parity": not parity_keys_off,
                },
                "environment": _environment(),
            },
            "profile measurements",
        )

    return _finish(failures, "profile bench guard")


def run_backends_guard(args: argparse.Namespace) -> int:
    """``--backends`` mode: kernel tier bit-identity + speedup floors."""
    import bench_backends as bench

    from repro.sim.backends import available_backends

    # Default tolerance is looser here than in --protocols: the shared
    # sweep's "after" leg runs a worker pool, and pool scheduling noise
    # on small cells swings the ratio; the absolute 1.2x floor is the
    # binding contract.
    threshold = (
        args.threshold if args.threshold is not None else 0.50
    )
    baseline = _load_baseline(
        BACKENDS_BASELINE,
        "PYTHONPATH=src python benchmarks/bench_backends.py",
    )
    recorded_cells = baseline["cells"]
    failures: list[str] = []

    fresh = bench.measure_all()
    installed = set(available_backends())

    # --- microbenchmark: per-backend bit-identity + the numba floor.
    micro = fresh["cells"]["splitmix_clz_micro"]
    for name, row in micro["backends"].items():
        if not row["bit_identical"]:
            failures.append(
                f"backend {name!r} is no longer bit-identical to the "
                f"numpy reference kernels"
            )
        print(
            f"micro[{name:5s}] {row['seconds']:7.4f}s  "
            f"{row['speedup_vs_numpy']:5.2f}x vs numpy  "
            f"bit_identical={row['bit_identical']}"
        )
    if "numba" in installed:
        numba_speedup = micro["backends"]["numba"]["speedup_vs_numpy"]
        if numba_speedup < bench.NUMBA_MICRO_FLOOR:
            failures.append(
                f"numba microbench speedup {numba_speedup:.2f}x is "
                f"below the {bench.NUMBA_MICRO_FLOOR:.1f}x floor"
            )
    else:
        print(
            "numba not installed here; microbench floor skipped "
            "(install the [jit] extra to exercise it)"
        )

    # --- sweep cells: bit-identity always; the grid cell also has an
    # absolute floor plus a relative bound against the committed record.
    for name in ("fig4_grid_shared", "protocol_sweep_shared"):
        cell = fresh["cells"][name]
        if not cell["bit_identical"]:
            failures.append(
                f"{name}: shared-seed path is no longer bit-identical "
                f"to the per-cell re-derive baseline"
            )
        recorded_cell = recorded_cells.get(name)
        recorded = (
            float(recorded_cell["speedup"]) if recorded_cell else None
        )
        line = (
            f"{name:22s} {cell['speedup']:5.2f}x on this machine  "
            f"bit_identical={cell['bit_identical']}"
        )
        if name == "fig4_grid_shared":
            floor = bench.GRID_SHARED_FLOOR
            if cell["speedup"] < floor:
                failures.append(
                    f"{name}: speedup {cell['speedup']:.2f}x is below "
                    f"the absolute {floor:.1f}x floor"
                )
            if recorded is not None:
                relative_floor = recorded * (1.0 - threshold)
                if cell["speedup"] < relative_floor:
                    failures.append(
                        f"{name}: speedup regressed to "
                        f"{cell['speedup']:.2f}x vs {recorded:.2f}x "
                        f"recorded (floor {relative_floor:.2f}x at "
                        f"{threshold:.0%} tolerance)"
                    )
                line += (
                    f"  (recorded {recorded:.2f}x, "
                    f"floors {floor:.1f}x abs / "
                    f"{recorded * (1.0 - threshold):.2f}x rel)"
                )
        if recorded_cell is None:
            failures.append(
                f"cell {name} is measured but missing from the "
                f"committed record (re-run bench_backends)"
            )
        print(line)

    # The committed record itself must assert bit-identity everywhere —
    # a record regenerated from a broken tree must not pass review.
    for name, recorded_cell in recorded_cells.items():
        if name == "splitmix_clz_micro":
            bad = [
                backend
                for backend, row in recorded_cell["backends"].items()
                if not row["bit_identical"]
            ]
            if bad:
                failures.append(
                    f"committed record claims non-bit-identical "
                    f"backends: {bad}"
                )
        elif recorded_cell.get("bit_identical") is False:
            failures.append(
                f"committed record claims {name} is not bit-identical"
            )

    if args.json_out is not None:
        _write_json(args.json_out, fresh, "fresh measurements")

    return _finish(failures, "backends bench guard")


def run_serve_guard(args: argparse.Namespace) -> int:
    """``--serve`` mode: coalescing/sharding identity + the floors."""
    import math

    import bench_serve as bench

    # Same rationale as --backends: the coalesced leg runs an asyncio
    # scheduler and a worker thread, both scheduling-noisy on shared CI
    # hardware; the absolute floor is the binding contract.
    threshold = (
        args.threshold if args.threshold is not None else 0.50
    )
    baseline = _load_baseline(
        SERVE_BASELINE,
        "PYTHONPATH=src python benchmarks/bench_serve.py",
    )
    failures: list[str] = []

    recorded_speedup = float(baseline["speedup"])
    if baseline.get("bit_identical") is not True:
        failures.append(
            "committed record claims the coalesced run is not "
            "bit-identical to sequential serving"
        )
    if recorded_speedup < bench.SERVE_FLOOR:
        failures.append(
            f"committed record claims only {recorded_speedup:.2f}x; "
            f"the service's floor is {bench.SERVE_FLOOR:.1f}x"
        )
    # A record regenerated without the sharded/cache legs (or before
    # the environment carried its hardware fingerprint) must not pass.
    environment = baseline.get("environment", {})
    for key in ("cpu_count", "backend"):
        if key not in environment:
            failures.append(
                f"committed record's environment is missing {key!r}; "
                f"regenerate bench_serve"
            )
    for section in ("sharded", "cached_replay", "identity_matrix"):
        if section not in baseline:
            failures.append(
                f"committed record is missing the {section!r} "
                f"section; regenerate bench_serve"
            )
    recorded_matrix = baseline.get("identity_matrix", {})
    bad_cells = [
        cell for cell, ok in recorded_matrix.items() if ok is not True
    ]
    if bad_cells:
        failures.append(
            f"committed record claims non-identical sharded cells: "
            f"{bad_cells}"
        )
    recorded_replay = baseline.get("cached_replay", {})
    if recorded_replay:
        if recorded_replay.get("bit_identical") is not True:
            failures.append(
                "committed record claims a non-bit-identical cache "
                "replay"
            )
        if float(recorded_replay.get("hit_rate", 0.0)) < 1.0:
            failures.append(
                f"committed record claims a "
                f"{recorded_replay.get('hit_rate')!r} replay hit "
                f"rate; the cache contract is 100%"
            )
        if (
            float(recorded_replay.get("speedup", 0.0))
            < bench.CACHE_FLOOR
        ):
            failures.append(
                f"committed record claims only "
                f"{recorded_replay.get('speedup')}x cached replay; "
                f"the floor is {bench.CACHE_FLOOR:.0f}x"
            )
    recorded_sharded = baseline.get("sharded", {})
    if recorded_sharded.get("floor_enforced") and (
        float(recorded_sharded.get("speedup_vs_single_process", 0.0))
        < bench.SHARD_FLOOR
    ):
        failures.append(
            f"committed record enforces the sharded floor but claims "
            f"only "
            f"{recorded_sharded.get('speedup_vs_single_process')}x "
            f"(floor {bench.SHARD_FLOOR:.1f}x)"
        )

    fresh = bench.measure_all()
    coalesced = fresh["coalesced"]
    if not fresh["bit_identical"]:
        failures.append(
            "coalesced responses are no longer bit-identical to the "
            "sequential facade results"
        )
    if fresh["speedup"] < bench.SERVE_FLOOR:
        failures.append(
            f"coalesced speedup {fresh['speedup']:.2f}x is below the "
            f"absolute {bench.SERVE_FLOOR:.1f}x floor"
        )
    relative_floor = recorded_speedup * (1.0 - threshold)
    if fresh["speedup"] < relative_floor:
        failures.append(
            f"coalesced speedup regressed to {fresh['speedup']:.2f}x "
            f"vs {recorded_speedup:.2f}x recorded "
            f"(floor {relative_floor:.2f}x at {threshold:.0%} "
            f"tolerance)"
        )
    p99 = float(coalesced["p99_seconds"])
    if not (math.isfinite(p99) and p99 > 0):
        failures.append(
            f"p99 latency from the obs histogram is not a finite "
            f"positive figure: {p99!r}"
        )

    # --- sharded identity + floor.  Bit-identity across every shards
    # x cache combination is the binding contract everywhere; the
    # throughput floor only binds on machines with cores to shard
    # across (same skip-not-fail policy as the numba microbench).
    fresh_matrix = fresh["identity_matrix"]
    fresh_bad = [
        cell for cell, ok in fresh_matrix.items() if ok is not True
    ]
    if fresh_bad:
        failures.append(
            f"sharded responses diverged from sequential serving on: "
            f"{fresh_bad}"
        )
    sharded = fresh["sharded"]
    shard_speedup = float(sharded["speedup_vs_single_process"])
    cpu_count = int(fresh["environment"]["cpu_count"])
    if sharded["floor_enforced"]:
        if shard_speedup < bench.SHARD_FLOOR:
            failures.append(
                f"sharded speedup {shard_speedup:.2f}x is below the "
                f"absolute {bench.SHARD_FLOOR:.1f}x floor on a "
                f"{cpu_count}-cpu machine"
            )
    else:
        print(
            f"only {cpu_count} cpu(s) here (< "
            f"{bench.SHARD_MIN_CPUS}); sharded throughput floor "
            f"skipped, identity matrix still enforced"
        )

    # --- cached replay: 100% hits, bit-identical, >= the floor.
    replay = fresh["cached_replay"]
    if not replay["bit_identical"]:
        failures.append(
            "warm cache replay is no longer bit-identical to the "
            "cold pass"
        )
    if float(replay["hit_rate"]) < 1.0:
        failures.append(
            f"cache replay hit rate {replay['hit_rate']:.0%} is "
            f"below 100%"
        )
    if float(replay["speedup"]) < bench.CACHE_FLOOR:
        failures.append(
            f"cached replay speedup {replay['speedup']:.1f}x is "
            f"below the absolute {bench.CACHE_FLOOR:.0f}x floor"
        )

    print(
        f"sequential {fresh['sequential']['seconds']:.3f}s  "
        f"coalesced {coalesced['seconds']:.3f}s  "
        f"speedup {fresh['speedup']:.2f}x on this machine "
        f"(recorded {recorded_speedup:.2f}x, floors "
        f"{bench.SERVE_FLOOR:.1f}x abs / {relative_floor:.2f}x rel)  "
        f"bit_identical={fresh['bit_identical']}"
    )
    print(
        f"latency p50={coalesced['p50_seconds'] * 1e3:.2f}ms "
        f"p99={p99 * 1e3:.2f}ms  fused "
        f"{coalesced['fused_requests']} requests into "
        f"{coalesced['fusion_groups']} kernel groups"
    )
    # The canonical figures are machine-relative: this machine's
    # baseline over this machine's optimized leg — the committed
    # numbers are the same ratios on the box that recorded them, not
    # portable constants.
    print(
        f"canonical serve figures (machine-relative, "
        f"{cpu_count} cpus, backend "
        f"{fresh['environment']['backend']}): coalesced "
        f"{fresh['speedup']:.2f}x  sharded x{sharded['shards']} "
        f"{shard_speedup:.2f}x (floor enforced: "
        f"{sharded['floor_enforced']})  cached replay "
        f"{float(replay['speedup']):.1f}x at "
        f"{float(replay['hit_rate']):.0%} hits"
    )
    print(
        f"identity matrix: "
        f"{sum(1 for ok in fresh_matrix.values() if ok)}/"
        f"{len(fresh_matrix)} shards x cache cells identical to "
        f"sequential"
    )

    if args.json_out is not None:
        _write_json(args.json_out, fresh, "fresh measurements")

    return _finish(failures, "serve bench guard")


def run_tracing_guard(args: argparse.Namespace) -> int:
    """``--tracing`` mode: span/exemplar coverage + the 10% CPU bound."""
    import bench_tracing as bench

    bound = (
        args.threshold
        if args.threshold is not None
        else bench.TRACING_BOUND
    )
    baseline = _load_baseline(
        TRACING_BASELINE,
        "PYTHONPATH=src python benchmarks/bench_tracing.py",
    )
    failures: list[str] = []

    recorded = baseline["traced"]
    if float(recorded["overhead"]) > float(recorded["bound"]):
        failures.append(
            f"committed record claims {recorded['overhead']:+.1%} "
            f"tracing overhead, above its own "
            f"{recorded['bound']:.0%} bound"
        )
    if baseline.get("bit_identical") is not True:
        failures.append(
            "committed record claims the traced run is not "
            "bit-identical to the untraced run"
        )

    fresh = bench.measure_all()
    traced = fresh["traced"]
    if not fresh["bit_identical"]:
        failures.append(
            "tracing perturbed the estimates: traced responses are "
            "no longer bit-identical to the untraced leg"
        )
    if traced["overhead"] > bound:
        failures.append(
            f"tracing overhead {traced['overhead']:+.1%} exceeds the "
            f"{bound:.0%} CPU bound"
        )
    if not traced["span_names_complete"]:
        failures.append(
            "request span set incomplete: expected "
            f"{list(bench.EXPECTED_SPANS)}"
        )
    requests = int(fresh["workload"]["requests"])
    if traced["root_spans"] != requests:
        failures.append(
            f"only {traced['root_spans']}/{requests} requests got a "
            f"root serve.request span"
        )
    if traced["traces"] != requests:
        failures.append(
            f"expected {requests} distinct trace ids, got "
            f"{traced['traces']}"
        )
    if traced["exemplar_buckets"] < 1:
        failures.append(
            "latency histogram carries no exemplars"
        )

    print(
        f"untraced {fresh['untraced']['cpu_seconds']:.3f}s cpu  "
        f"traced {traced['cpu_seconds']:.3f}s cpu  overhead "
        f"{traced['overhead']:+.1%} on this machine (bound "
        f"{bound:.0%}, recorded {recorded['overhead']:+.1%})  "
        f"bit_identical={fresh['bit_identical']}"
    )
    print(
        f"traces {traced['traces']}  root spans "
        f"{traced['root_spans']}/{requests}  span set complete: "
        f"{traced['span_names_complete']}  exemplar buckets: "
        f"{traced['exemplar_buckets']}"
    )

    if args.json_out is not None:
        _write_json(args.json_out, fresh, "fresh measurements")

    return _finish(failures, "tracing bench guard")


def run_fleet_guard(args: argparse.Namespace) -> int:
    """``--fleet`` mode: streaming telemetry cost + watchdog latency."""
    import bench_fleet as bench

    baseline = _load_baseline(
        FLEET_BASELINE,
        "PYTHONPATH=src python benchmarks/bench_fleet.py",
    )
    failures: list[str] = []

    # --- the committed record must itself honour the contract.
    recorded_sweep = baseline.get("sweep", {})
    for section in ("sweep", "overhead", "live_scrape", "watchdog"):
        if section not in baseline:
            failures.append(
                f"committed record is missing the {section!r} "
                f"section; regenerate bench_fleet"
            )
    bad_cells = [
        cell
        for cell, data in recorded_sweep.items()
        if data.get("bit_identical") is not True
    ]
    if bad_cells:
        failures.append(
            f"committed record claims streaming perturbed the "
            f"estimates on: {bad_cells}"
        )
    recorded_overhead = baseline.get("overhead", {})
    if recorded_overhead.get("floor_enforced") and (
        float(recorded_overhead.get("overhead_ratio", 1.0))
        > bench.OVERHEAD_BOUND
    ):
        failures.append(
            f"committed record enforces the overhead bound but "
            f"claims "
            f"{recorded_overhead.get('overhead_ratio'):+.1%} "
            f"(bound {bench.OVERHEAD_BOUND:.0%})"
        )
    recorded_scrape = baseline.get("live_scrape", {})
    if recorded_scrape.get("converged") is not True:
        failures.append(
            "committed record claims the live scrape never saw the "
            "full merged request count"
        )
    if recorded_scrape.get("idempotent_stop") is not True:
        failures.append(
            "committed record claims stop() double-counted the "
            "streamed deltas"
        )
    recorded_watchdog = baseline.get("watchdog", {})
    if recorded_watchdog.get("within_bound") is not True:
        failures.append(
            "committed record claims the watchdog missed its "
            "detection bound"
        )

    # --- re-measure on this machine with the same floors.
    fresh = bench.measure_all()
    fresh_bad = [
        cell
        for cell, data in fresh["sweep"].items()
        if data["bit_identical"] is not True
    ]
    if fresh_bad:
        failures.append(
            f"streamed responses diverged from the sequential facade "
            f"results on: {fresh_bad}"
        )
    overhead = fresh["overhead"]
    cpu_count = int(fresh["environment"]["cpu_count"])
    if overhead["floor_enforced"]:
        if overhead["overhead_ratio"] > bench.OVERHEAD_BOUND:
            failures.append(
                f"streaming overhead "
                f"{overhead['overhead_ratio']:+.1%} at "
                f"{overhead['shards']} shards exceeds the "
                f"{bench.OVERHEAD_BOUND:.0%} bound on a "
                f"{cpu_count}-cpu machine"
            )
    else:
        print(
            f"only {cpu_count} cpu(s) here (< "
            f"{bench.FLEET_MIN_CPUS}); streaming overhead bound "
            f"skipped, bit-identity/scrape/watchdog still enforced"
        )
    scrape = fresh["live_scrape"]
    if not scrape["converged"]:
        failures.append(
            f"live scrape saw only {scrape['mid_run_ok']}/"
            f"{scrape['requests']} merged requests within "
            f"{scrape['convergence_deadline_seconds']}s"
        )
    if not scrape["idempotent_stop"]:
        failures.append(
            "stop() changed the merged serving counters: the final "
            "merge is not idempotent against the streamed deltas"
        )
    watchdog = fresh["watchdog"]
    if not watchdog["detected"]:
        failures.append(
            "killing a worker never flipped fleet health off ok"
        )
    elif not watchdog["within_bound"]:
        failures.append(
            f"watchdog took {watchdog['seconds_to_degraded']}s to "
            f"flag the dead shard (bound "
            f"{watchdog['bound_seconds']}s)"
        )
    if watchdog.get("dead_shard") != "dead":
        failures.append(
            f"health verdict named the killed shard "
            f"{watchdog.get('dead_shard')!r}, expected 'dead'"
        )

    for label, cell in fresh["sweep"].items():
        print(
            f"{label}: {cell['seconds']:.3f}s  "
            f"bit_identical={cell['bit_identical']}"
        )
    print(
        f"streaming overhead {overhead['overhead_ratio']:+.1%} at "
        f"{overhead['shards']} shards on this machine (bound "
        f"{bench.OVERHEAD_BOUND:.0%}, enforced="
        f"{overhead['floor_enforced']}, recorded "
        f"{recorded_overhead.get('overhead_ratio', 0.0):+.1%})"
    )
    print(
        f"live scrape: {scrape['mid_run_ok']}/{scrape['requests']} "
        f"merged mid-run in {scrape['seconds_to_converge']}s  "
        f"idempotent_stop={scrape['idempotent_stop']}"
    )
    print(
        f"watchdog: degraded in "
        f"{watchdog['seconds_to_degraded']}s (bound "
        f"{watchdog['bound_seconds']}s)  "
        f"dead_shard={watchdog['dead_shard']}"
    )

    if args.json_out is not None:
        _write_json(args.json_out, fresh, "fresh measurements")

    return _finish(failures, "fleet bench guard")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--loop-reps",
        type=int,
        default=20,
        help="repetitions to time the reference loop on (scaled up)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help=(
            "allowed relative speedup regression (default 0.15; "
            "0.30 in --protocols mode; 0.50 in --backends mode)"
        ),
    )
    parser.add_argument(
        "--protocols",
        action="store_true",
        help=(
            "guard the cross-protocol batched comparison engine "
            "against BENCH_protocol_batched.json instead of the PET "
            "fig-4 cell"
        ),
    )
    parser.add_argument(
        "--backends",
        action="store_true",
        help=(
            "guard the kernel-backend tier against BENCH_backends.json: "
            "per-backend bit-identity, the numba microbench floor "
            "(skipped when numba is not installed), and the "
            "shared-memory sweep floors"
        ),
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help=(
            "guard the micro-batching estimation service against "
            "BENCH_serve.json: coalesced/sequential bit-identity, the "
            "absolute 3x throughput floor at concurrency 32, and the "
            "obs-histogram latency percentiles"
        ),
    )
    parser.add_argument(
        "--tracing",
        action="store_true",
        help=(
            "guard distributed-tracing overhead against "
            "BENCH_obs_tracing.json: the 10%% CPU bound vs the "
            "untraced serve tier, per-request span/exemplar coverage, "
            "and traced/untraced bit-identity"
        ),
    )
    parser.add_argument(
        "--fleet",
        action="store_true",
        help=(
            "guard the live fleet telemetry tier against "
            "BENCH_obs_fleet.json: streamed runs bit-identical to the "
            "sequential facade, the 5%% snapshot-streaming overhead "
            "bound at 4 shards (skipped below 4 cpus), mid-run scrape "
            "convergence + idempotent stop, and the watchdog "
            "detection bound"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "guard the phase profiler: overhead vs the plain "
            "instrumented cell (default bound 5%%), kernel-phase "
            "coverage, and workers=2 snapshot/merge parity"
        ),
    )
    parser.add_argument(
        "--profile-reps",
        type=int,
        default=3,
        help=(
            "timing repetitions per variant in --profile mode (best "
            "of N; default 3)"
        ),
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help=(
            "in --profile mode, write the per-phase wall-time "
            "artifact as JSON to PATH"
        ),
    )
    parser.add_argument(
        "--diagnostics",
        action="store_true",
        help=(
            "also time the cell with the diagnostics stack attached "
            "(outliers_only trace + health monitor) and verify replay"
        ),
    )
    parser.add_argument(
        "--diag-threshold",
        type=float,
        default=0.25,
        help=(
            "allowed slowdown of the diagnosed run relative to the "
            "plain instrumented run (default 0.25)"
        ),
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="write the diagnostics measurements as JSON to PATH",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "write the diagnosed run's metric stream as JSON lines "
            "to PATH"
        ),
    )
    args = parser.parse_args()

    if args.protocols:
        return run_protocol_guard(args)
    if args.backends:
        return run_backends_guard(args)
    if args.serve:
        return run_serve_guard(args)
    if args.tracing:
        return run_tracing_guard(args)
    if args.fleet:
        return run_fleet_guard(args)
    if args.profile:
        return run_profile_guard(args)
    threshold = args.threshold if args.threshold is not None else 0.15

    baseline = _load_baseline(
        BASELINE, "PYTHONPATH=src python benchmarks/bench_batched_engine.py"
    )
    cell = baseline["cell"]
    recorded_speedup = float(baseline["speedup"])

    rounds = rounds_required(0.05, 0.01)
    assert rounds == cell["rounds"], (rounds, cell["rounds"])
    spec = WorkloadSpec(size=cell["n"], seed=0)
    config = PetConfig(passive_tags=True)
    repetitions = PAPER_RUNS_PER_POINT

    registry = MetricsRegistry()
    runner = ExperimentRunner(
        base_seed=cell["base_seed"],
        repetitions=repetitions,
        registry=registry,
    )
    with use_registry(registry):
        start = time.perf_counter()
        batched = runner.run_vectorized(
            spec, config, rounds, engine="batched"
        )
        batched_seconds = time.perf_counter() - start

    loop_reps = min(args.loop_reps, repetitions)
    loop_runner = ExperimentRunner(
        base_seed=cell["base_seed"], repetitions=loop_reps
    )
    start = time.perf_counter()
    loop_sample = loop_runner.run_vectorized(
        spec, config, rounds, engine="loop"
    )
    loop_seconds = (
        (time.perf_counter() - start) * repetitions / loop_reps
    )

    failures: list[str] = []

    prefix = batched.estimates[:loop_reps].tolist()
    if loop_sample.estimates.tolist() != prefix:
        failures.append(
            "instrumented batched engine is no longer bit-identical "
            "to the reference loop"
        )

    counters = registry.snapshot()["counters"]
    expected_slots = int(batched.slots_per_run * repetitions)
    recorded_slots = counters.get("sim.slots", 0)
    if recorded_slots != expected_slots:
        failures.append(
            f"slot accounting drifted: registry says "
            f"{recorded_slots}, cell says {expected_slots}"
        )

    speedup = loop_seconds / batched_seconds
    floor = recorded_speedup * (1.0 - threshold)
    if speedup < floor:
        failures.append(
            f"speedup regressed: {speedup:.1f}x on this machine vs "
            f"{recorded_speedup:.1f}x recorded "
            f"(floor {floor:.1f}x at {threshold:.0%} tolerance)"
        )

    print(
        f"batched: {batched_seconds:.3f}s  "
        f"loop (scaled from {loop_reps} reps): {loop_seconds:.3f}s  "
        f"speedup: {speedup:.1f}x (recorded {recorded_speedup:.1f}x, "
        f"floor {floor:.1f}x)"
    )
    # The canonical speedup figure is machine-relative: this machine's
    # loop over this machine's batched engine.  The committed number in
    # BENCH_batched_engine.json (17.1x) is the same ratio on the
    # machine that recorded it, not a portable constant.
    print(
        f"canonical batched-engine speedup (machine-relative): "
        f"{speedup:.1f}x here; committed record {recorded_speedup:.1f}x"
    )
    print(
        f"slots recorded: {recorded_slots:,}  "
        f"bit-identical prefix: {loop_sample.estimates.tolist() == prefix}"
    )

    if args.diagnostics:
        diag_registry = MetricsRegistry()
        recorder = RoundTraceRecorder(
            policy=SamplingPolicy(mode="outliers_only"),
            registry=diag_registry,
        )
        health = EstimatorHealth(registry=diag_registry)
        diag_registry.attach_diagnostics(
            round_trace=recorder, health=health
        )
        diag_runner = ExperimentRunner(
            base_seed=cell["base_seed"],
            repetitions=repetitions,
            registry=diag_registry,
        )
        with use_registry(diag_registry):
            start = time.perf_counter()
            diagnosed = diag_runner.run_vectorized(
                spec, config, rounds, engine="batched"
            )
            diag_seconds = time.perf_counter() - start

        if diagnosed.estimates.tolist() != batched.estimates.tolist():
            failures.append(
                "diagnostics perturbed the estimates: diagnosed run "
                "is no longer bit-identical to the plain batched run"
            )

        overhead = diag_seconds / batched_seconds - 1.0
        if diag_seconds > batched_seconds * (1.0 + args.diag_threshold):
            failures.append(
                f"diagnostics overhead too high: {diag_seconds:.3f}s "
                f"vs {batched_seconds:.3f}s plain "
                f"({overhead:+.1%}, bound {args.diag_threshold:.0%})"
            )

        outliers = recorder.outlier_records()
        replayed = outliers[:MAX_REPLAYS]
        replay_failures = sum(
            1 for record in replayed if not verify_replay(record)
        )
        if replay_failures:
            failures.append(
                f"{replay_failures}/{len(replayed)} recorded outlier "
                f"rounds failed deterministic replay"
            )

        print(
            f"diagnosed: {diag_seconds:.3f}s "
            f"({overhead:+.1%} vs plain, bound "
            f"{args.diag_threshold:.0%})  outlier records: "
            f"{len(outliers)}  replays verified: {len(replayed)}"
        )
        print(
            f"health: n_hat={health.n_hat:,.0f}  "
            f"rounds={health.rounds_observed:,}  "
            f"converged={health.converged}"
        )

        if args.json_out is not None:
            _write_json(
                args.json_out,
                {
                    "cell": cell,
                    "reference_seconds": baseline["after"]["seconds"],
                    "plain": {"seconds": round(batched_seconds, 3)},
                    "diagnosed": {
                        "seconds": round(diag_seconds, 3),
                        "overhead": round(overhead, 4),
                        "bound": args.diag_threshold,
                        "trace_policy": "outliers_only",
                        "rounds_seen": recorder.rounds_seen,
                        "outlier_records": len(outliers),
                        "replays_verified": len(replayed),
                        "replays_exact": replay_failures == 0,
                        "bit_identical": diagnosed.estimates.tolist()
                        == batched.estimates.tolist(),
                    },
                    "health": {
                        "n_hat": round(health.n_hat, 2),
                        "rounds_observed": health.rounds_observed,
                        "required_rounds": health.required_rounds,
                        "converged": health.converged,
                        "outlier_rounds": health.outlier_rounds,
                    },
                    "environment": _environment(),
                },
                "diagnostics measurements",
            )

        if args.metrics_out is not None:
            with JsonLinesExporter(args.metrics_out) as exporter:
                exporter.export(diag_registry)
            print(f"metrics stream written to {args.metrics_out}")

    return _finish(failures, "bench guard")


if __name__ == "__main__":
    raise SystemExit(main())
