"""Bench fig7: per-tag preloaded memory vs accuracy target."""

from __future__ import annotations

from repro.figures import fig7


def test_bench_fig7a(once):
    rows = once(fig7.epsilon_sweep)
    print()
    fig7.table(
        rows, "Fig. 7a — preloaded bits vs epsilon (delta = 1%)",
        "epsilon",
    ).print()
    assert all(row.pet_bits == 32 for row in rows)
    assert all(row.fneb_bits > 1000 for row in rows)


def test_bench_fig7b(once):
    rows = once(fig7.delta_sweep)
    print()
    fig7.table(
        rows, "Fig. 7b — preloaded bits vs delta (epsilon = 5%)",
        "delta",
    ).print()
    assert all(row.pet_bits == 32 for row in rows)
    memory = [row.lof_bits for row in rows]
    assert memory == sorted(memory, reverse=True)
