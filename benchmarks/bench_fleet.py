#!/usr/bin/env python
"""Benchmark the live fleet telemetry tier: streaming cost + watchdog.

The workload is the bench_serve acceptance shape (128 multi-tenant
requests, 4 reader fields, distinct request seeds) served through
:func:`repro.serve.run_sharded`.  Four sections land in the record:

* **sweep** — best-of-repeats wall time for every snapshot-interval ×
  shard-count cell in {off, 1.0 s, 0.25 s} × {2, 4}.  Streaming must
  be semantically invisible: every cell's responses are checked
  bit-identical to the sequential facade results;
* **overhead** — the binding contract: at 4 shards, serving with a
  0.25 s heartbeat must cost at most ``OVERHEAD_BOUND`` (5 %) more
  wall time than stop-time-only telemetry.  Like the sharded
  throughput floor in bench_serve, the ratio only means anything when
  worker processes have cores to run on, so the record carries
  ``floor_enforced = cpu_count >= FLEET_MIN_CPUS`` and the guard
  skips (not fails) the bound on smaller boxes;
* **live_scrape** — a streaming run whose router registry is read
  *mid-run* (after the last response, before ``stop()``): the merged
  worker counters must converge to the full request count within the
  heartbeat deadline, and the post-stop registry must agree exactly
  (the final merge is idempotent against the streamed deltas);
* **watchdog** — a streaming run where one worker is SIGKILLed: the
  fleet health verdict must leave ``ok`` within
  ``heartbeat_misses * interval`` seconds (plus the poll margin) and
  name the dead shard.

Run to regenerate the committed record::

    PYTHONPATH=src python benchmarks/bench_fleet.py

``bench_guard --fleet`` validates ``BENCH_obs_fleet.json`` and
re-measures this workload with the same floors.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.api import EstimateRequest, execute_request, resolve_request
from repro.obs import MetricsRegistry
from repro.serve import ServiceConfig, ShardedService, run_sharded
from repro.sim.backends import active_backend

OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_obs_fleet.json"
)

#: Periodic snapshot streaming may cost at most this much wall time
#: over stop-time-only telemetry at the densest swept cadence.
OVERHEAD_BOUND = 0.05

#: Cores below which the overhead bound is recorded but not enforced
#: (worker processes time-slice one core; the heartbeat thread's cost
#: disappears into scheduling noise either way).
FLEET_MIN_CPUS = 4

#: The swept heartbeat cadences; ``None`` is stop-time-only telemetry.
INTERVALS = (None, 1.0, 0.25)

#: The swept fleet widths.
SHARD_COUNTS = (2, 4)

#: The shard count whose off-vs-0.25 s ratio is the binding contract.
OVERHEAD_SHARDS = 4

#: Heartbeat cadence for the live-scrape and watchdog sections.
LIVE_INTERVAL = 0.25

#: Missed beats before the watchdog may call a shard stalled.
HEARTBEAT_MISSES = 2

#: The acceptance workload — same shape as bench_serve.
WORKLOAD = {
    "requests": 128,
    "concurrency": 64,
    "tenants": 4,
    "population": 600,
    "rounds": 64,
    "protocol": "pet",
    "base_seed": 2011,
}


def build_requests() -> list[EstimateRequest]:
    """The deterministic benchmark request mix."""
    return [
        EstimateRequest(
            population=WORKLOAD["population"],
            protocol=WORKLOAD["protocol"],
            seed=WORKLOAD["base_seed"] + index,
            population_seed=1_000 + index % WORKLOAD["tenants"],
            rounds=WORKLOAD["rounds"],
            tenant=f"tenant-{index % WORKLOAD['tenants']}",
            request_id=f"bench-{index:04d}",
        )
        for index in range(WORKLOAD["requests"])
    ]


def _service_config(interval: float | None) -> ServiceConfig:
    return ServiceConfig(
        max_queue_depth=WORKLOAD["requests"],
        max_batch_size=32,
        tenant_quota=WORKLOAD["requests"],
        tick_seconds=0.001,
        snapshot_interval_seconds=interval,
        heartbeat_misses=HEARTBEAT_MISSES,
    )


def _identical(responses, results) -> bool:
    """Element-wise response/result identity on the estimate view."""
    return all(
        response.status == "ok"
        and response.result.n_hat == result.n_hat
        and response.result.total_slots == result.total_slots
        for response, result in zip(responses, results)
    )


def sequential_results(requests: list[EstimateRequest]):
    """The facade-path reference results (shared population cache)."""
    cache: dict = {}
    return [
        execute_request(
            resolve_request(request, population_cache=cache)
        )
        for request in requests
    ]


def time_cell(
    requests: list[EstimateRequest],
    shards: int,
    interval: float | None,
):
    """One sharded run at the given heartbeat cadence."""
    registry = MetricsRegistry()
    start = time.perf_counter()
    responses = run_sharded(
        requests,
        shards=shards,
        config=_service_config(interval),
        registry=registry,
        concurrency=WORKLOAD["concurrency"],
    )
    return time.perf_counter() - start, responses


def measure_sweep(
    requests: list[EstimateRequest],
    results,
    repeats: int,
) -> dict:
    """Best-of-``repeats`` wall time per interval × shards cell."""
    sweep: dict[str, dict] = {}
    for shards in SHARD_COUNTS:
        for interval in INTERVALS:
            label = (
                f"shards={shards}/interval="
                + ("off" if interval is None else f"{interval}s")
            )
            best = float("inf")
            responses = None
            for _ in range(repeats):
                seconds, fresh = time_cell(requests, shards, interval)
                best = min(best, seconds)
                responses = fresh
            sweep[label] = {
                "shards": shards,
                "interval_seconds": interval,
                "seconds": round(best, 4),
                "requests_per_second": round(len(requests) / best, 1),
                "bit_identical": _identical(responses, results),
            }
    return sweep


def measure_live_scrape(requests: list[EstimateRequest]) -> dict:
    """Mid-run merged state vs the post-stop registry."""
    registry = MetricsRegistry()
    config = _service_config(LIVE_INTERVAL)
    deadline_margin = 4 * LIVE_INTERVAL + 1.0
    with ShardedService(
        shards=2, config=config, registry=registry
    ) as service:
        for future in [service.submit(r) for r in requests]:
            future.result()
        answered = time.perf_counter()
        converged_at = None
        deadline = answered + deadline_margin
        while time.perf_counter() < deadline:
            counters = registry.snapshot()["counters"]
            if counters.get("serve.requests.ok", 0) >= len(requests):
                converged_at = time.perf_counter()
                break
            time.sleep(LIVE_INTERVAL / 10)
        mid = registry.snapshot()
        health = service.fleet_health()
    final = registry.snapshot()
    mid_ok = mid["counters"].get("serve.requests.ok", 0)

    # Shutdown itself does real (counted) work — e.g. workers unlink
    # their shared seed matrices — so the idempotency claim binds on
    # the serving namespace the heartbeats stream, not on teardown
    # bookkeeping.
    def _serve(counters):
        return {
            name: value
            for name, value in counters.items()
            if name.startswith("serve.")
        }

    return {
        "interval_seconds": LIVE_INTERVAL,
        "requests": len(requests),
        "mid_run_ok": mid_ok,
        "final_ok": final["counters"].get("serve.requests.ok", 0),
        "seconds_to_converge": (
            round(converged_at - answered, 4)
            if converged_at is not None
            else None
        ),
        "convergence_deadline_seconds": deadline_margin,
        "mid_run_health": health["status"],
        # The binding claims: the live scrape saw every worker-side
        # increment within the heartbeat deadline, and stop() added
        # nothing on top of what the heartbeats already shipped.
        "converged": mid_ok == len(requests),
        "idempotent_stop": _serve(mid["counters"])
        == _serve(final["counters"]),
    }


def measure_watchdog(requests: list[EstimateRequest]) -> dict:
    """Seconds from SIGKILL to a non-ok fleet health verdict."""
    registry = MetricsRegistry()
    config = _service_config(LIVE_INTERVAL)
    bound = HEARTBEAT_MISSES * LIVE_INTERVAL
    poll = LIVE_INTERVAL / 10
    service = ShardedService(
        shards=2, config=config, registry=registry
    ).start()
    try:
        for future in [service.submit(r) for r in requests[:16]]:
            future.result()
        victim = service._processes[1]
        victim.kill()
        killed_at = time.perf_counter()
        victim.join(timeout=5.0)
        flipped_at = None
        health = service.fleet_health()
        deadline = killed_at + bound + 2.0
        while time.perf_counter() < deadline:
            health = service.fleet_health()
            if health["status"] != "ok":
                flipped_at = time.perf_counter()
                break
            time.sleep(poll)
    finally:
        service.stop()
    detected = flipped_at is not None
    return {
        "interval_seconds": LIVE_INTERVAL,
        "heartbeat_misses": HEARTBEAT_MISSES,
        "seconds_to_degraded": (
            round(flipped_at - killed_at, 4) if detected else None
        ),
        "bound_seconds": round(bound + poll, 4),
        "detected": detected,
        "status": health["status"],
        "dead_shard": health["shards"].get("1", {}).get("status"),
        "within_bound": detected
        and (flipped_at - killed_at) <= bound + poll,
    }


def measure_all(repeats: int = 2) -> dict:
    """The full record: sweep + overhead + live scrape + watchdog."""
    requests = build_requests()
    cpu_count = os.cpu_count() or 1
    results = sequential_results(requests)

    sweep = measure_sweep(requests, results, repeats)
    off = sweep[f"shards={OVERHEAD_SHARDS}/interval=off"]["seconds"]
    dense = sweep[f"shards={OVERHEAD_SHARDS}/interval=0.25s"][
        "seconds"
    ]
    overhead = {
        "shards": OVERHEAD_SHARDS,
        "off_seconds": off,
        "streaming_seconds": dense,
        "overhead_ratio": round(dense / off - 1.0, 4),
        "bound": OVERHEAD_BOUND,
        "min_cpus": FLEET_MIN_CPUS,
        "floor_enforced": cpu_count >= FLEET_MIN_CPUS,
    }
    return {
        "workload": dict(WORKLOAD),
        "sweep": sweep,
        "overhead": overhead,
        "live_scrape": measure_live_scrape(requests),
        "watchdog": measure_watchdog(requests),
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": cpu_count,
            "backend": active_backend().name,
        },
    }


def main() -> int:
    record = measure_all()
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    overhead = record["overhead"]
    scrape = record["live_scrape"]
    watchdog = record["watchdog"]
    for label, cell in record["sweep"].items():
        print(
            f"{label}: {cell['seconds']:.3f}s  "
            f"{cell['requests_per_second']:.0f} req/s  "
            f"bit_identical={cell['bit_identical']}"
        )
    print(
        f"streaming overhead at {overhead['shards']} shards: "
        f"{overhead['overhead_ratio']:+.1%} "
        f"(bound {overhead['bound']:.0%}, "
        f"enforced={overhead['floor_enforced']} at "
        f"{record['environment']['cpu_count']} cpus)"
    )
    print(
        f"live scrape: mid-run ok={scrape['mid_run_ok']}/"
        f"{scrape['requests']} in "
        f"{scrape['seconds_to_converge']}s  "
        f"idempotent_stop={scrape['idempotent_stop']}"
    )
    print(
        f"watchdog: degraded in {watchdog['seconds_to_degraded']}s "
        f"(bound {watchdog['bound_seconds']}s)  "
        f"dead_shard={watchdog['dead_shard']}"
    )
    print(f"record written to {OUTPUT}")
    ok = (
        all(cell["bit_identical"] for cell in record["sweep"].values())
        and scrape["converged"]
        and scrape["idempotent_stop"]
        and watchdog["within_bound"]
        and watchdog["dead_shard"] == "dead"
        and (
            not overhead["floor_enforced"]
            or overhead["overhead_ratio"] <= overhead["bound"]
        )
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
