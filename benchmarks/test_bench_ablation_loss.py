"""Bench ablation: robustness under channel loss (slot-level sim).

The paper assumes a lossless channel; this measures how the estimate
degrades when tag responses are erased with increasing probability.
"""

from __future__ import annotations

from repro.figures import ablations


def test_bench_loss_robustness(once):
    table = once(
        ablations.loss_robustness,
        n=1_000,
        loss_probabilities=(0.0, 0.01, 0.05, 0.10),
        rounds=64,
        runs=20,
    )
    print()
    table.print()
    accuracies = [float(row[1]) for row in table.rows]
    # Clean channel: unbiased.  Loss can only flip busy -> idle, so the
    # estimate biases low, monotonically in the loss rate (within
    # simulation noise at the light-loss end).
    assert 0.9 < accuracies[0] < 1.1
    assert accuracies[-1] < accuracies[0]
    # Even 10% loss keeps the estimate within ~25% (graceful, not
    # catastrophic, degradation).
    assert accuracies[-1] > 0.7
