"""Bench ablation: O(log n) linear scan vs O(log log n) binary search.

The paper's central efficiency claim, measured: per-round slot cost of
Algorithm 1 grows with log2(phi n); Algorithm 3 stays flat at 5.
"""

from __future__ import annotations

import math

from repro.core.accuracy import PHI
from repro.figures import ablations


def test_bench_search_cost(once):
    sizes = (100, 1_000, 10_000, 100_000, 1_000_000)
    table = once(ablations.search_cost, sizes=sizes, rounds=300)
    print()
    table.print()
    for row, n in zip(table.rows, sizes):
        linear = float(row[1])
        binary = float(row[2])
        assert binary == 5.0
        # Algorithm 1 averages ~ log2(phi n) + 1 slots per round.
        predicted = math.log2(PHI * n) + 1.0
        assert abs(linear - predicted) < 1.0, f"n={n}"
    # The gap widens with n: the log n vs log log n separation.
    first_gap = float(table.rows[0][1]) - 5.0
    last_gap = float(table.rows[-1][1]) - 5.0
    assert last_gap > first_gap + 10.0
