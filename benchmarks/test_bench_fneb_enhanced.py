"""Bench: Enhanced FNEB (Fig. 6b's baseline) vs plain FNEB vs PET.

The paper's Fig. 6b pits PET against *Enhanced* FNEB — the variant with
adaptive frame shrinking.  This bench measures how much the shrinking
recovers, and confirms PET still wins.
"""

from __future__ import annotations

import numpy as np

from repro.config import AccuracyRequirement
from repro.protocols.fneb import FnebProtocol
from repro.protocols.fneb_enhanced import EnhancedFnebProtocol
from repro.protocols.pet import PetProtocol
from repro.sim.report import Table
from repro.tags.population import TagPopulation

N = 50_000
ROUNDS = 500


def test_bench_enhanced_fneb(once):
    def run():
        population = TagPopulation.random(
            N, np.random.default_rng(0)
        )
        rng = np.random.default_rng(1)
        plain = FnebProtocol().estimate(population, ROUNDS, rng)
        enhanced = EnhancedFnebProtocol().estimate(
            population, ROUNDS, rng
        )
        pet = PetProtocol().estimate(population, ROUNDS, rng)
        return plain, enhanced, pet

    plain, enhanced, pet = once(run)
    print()
    table = Table(
        f"Enhanced FNEB vs plain FNEB vs PET "
        f"(n = {N:,}, {ROUNDS} rounds each)",
        ["protocol", "slots", "estimate", "error"],
    )
    for result in (plain, enhanced, pet):
        table.add_row(
            result.protocol,
            result.total_slots,
            result.n_hat,
            f"{abs(result.n_hat - N) / N:.2%}",
        )
    table.print()

    # Shrinking recovers a large chunk of FNEB's slot budget...
    assert enhanced.total_slots < 0.75 * plain.total_slots
    # ...but PET (5 slots/round) still beats both.
    assert pet.total_slots < enhanced.total_slots
    # All three remain accurate at this round count.
    for result in (plain, enhanced, pet):
        assert 0.9 < result.accuracy(N) < 1.1

    # Against the accuracy contract, the ordering persists.
    requirement = AccuracyRequirement(0.05, 0.01)
    assert PetProtocol().planned_slots(requirement) < (
        EnhancedFnebProtocol().plan_rounds(requirement)
        * EnhancedFnebProtocol().shrunk_slots_per_round(N)
    )
