#!/usr/bin/env python
"""Measure the batched comparison engines against the scalar loops.

Produces ``BENCH_protocol_batched.json``: the committed speedup record
``bench_guard --protocols`` enforces.  Three kinds of cells:

* one population-tier cell per protocol with a batched engine (the fig6
  equal-budget round counts for FNEB/LoF, representative counts for the
  zero-frame family and ALOHA) — scalar ``estimate`` loop vs
  :func:`repro.sim.protocol_batched.run_protocol_cell`;
* ``table3_sweep`` — the whole baseline comparison grid (the
  ``repro.figures.table3`` protocol-sweep shape at the bench
  population, with the cells' load-matched frame configs) as one
  aggregate measurement;
* ``fig6_driver`` — the sampled-tier fig6 panels at the paper's real
  size (n = 50 000, 1 000 runs): historical per-run sampler loops
  (multinomial LoF) vs the batched samplers (inverse-CDF LoF).

The population-tier cells use a small population (``BENCH_N = 128``) on
purpose: at fig6/table3 round counts the scalar paths are dominated by
per-round Python dispatch, which is exactly the overhead the batched
engines delete; the guard's bit-identity checks make sure the speed
comes with unchanged numbers.

Run with::

    PYTHONPATH=src python benchmarks/bench_protocol_batched.py
        [--loop-reps K] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.config import PAPER_RUNS_PER_POINT, AccuracyRequirement
from repro.obs import MetricsRegistry
from repro.protocols.fneb import FnebProtocol
from repro.protocols.lof import LofProtocol
from repro.protocols.pet import PetProtocol
from repro.sim.experiment import ExperimentRunner
from repro.sim.protocol_batched import (
    ProtocolCellSpec,
    run_protocol_cell,
    sweep_protocol_cells,
)

DEFAULT_OUT = (
    Path(__file__).resolve().parent.parent
    / "BENCH_protocol_batched.json"
)

#: Bench population size: small enough that the scalar paths' per-round
#: Python overhead dominates (the fig6/table3 regime the engines target).
BENCH_N = 128

#: Seed of the bench population (ProtocolCellSpec default).
POPULATION_SEED = 7

BASE_SEED = 2011

#: Runs of the sampled-tier fig6 driver cell.
DRIVER_N = 50_000
DRIVER_RUNS = 1_000


def fig6_equal_budget_rounds() -> tuple[int, int]:
    """FNEB and LoF round counts under fig6's equal-slot budget."""
    requirement = AccuracyRequirement(0.05, 0.01)
    pet = PetProtocol()
    budget = pet.plan_rounds(requirement) * pet.slots_per_round()
    fneb = max(1, budget // FnebProtocol().slots_per_round())
    lof = max(1, budget // LofProtocol().slots_per_round())
    return fneb, lof


def protocol_cells() -> dict[str, ProtocolCellSpec]:
    """The per-protocol bench cells, keyed by bench-cell name."""
    fneb_rounds, lof_rounds = fig6_equal_budget_rounds()
    return {
        "fig6_fneb": ProtocolCellSpec("fneb", BENCH_N, fneb_rounds),
        "fig6_lof": ProtocolCellSpec("lof", BENCH_N, lof_rounds),
        # The framed estimators run load-matched frames (f = n), their
        # design point; a frame much wider than the population would
        # just measure how fast numpy zeroes empty bincount columns.
        "use": ProtocolCellSpec(
            "use", BENCH_N, 256, config={"frame_size": BENCH_N}
        ),
        # frame_size < prior_n exercises the persistence-masking branch.
        "upe": ProtocolCellSpec(
            "upe", BENCH_N, 256,
            config={"frame_size": 64, "prior_n": 256},
        ),
        "ezb": ProtocolCellSpec(
            "ezb", BENCH_N, 64, config={"frame_size": BENCH_N}
        ),
        "aloha": ProtocolCellSpec(
            "aloha", BENCH_N, 256, config={"frame_size": BENCH_N}
        ),
    }


def sweep_specs() -> list[ProtocolCellSpec]:
    """The table3 comparison grid shape at the bench population.

    Same 6-protocol x 3-round-count grid as
    :func:`repro.figures.table3.protocol_sweep_specs`, but carrying the
    bench cells' load-matched frame configs.
    """
    from repro.figures.table3 import SWEEP_ROUNDS

    return [
        ProtocolCellSpec(
            cell.protocol, BENCH_N, rounds, config=dict(cell.config)
        )
        for cell in protocol_cells().values()
        for rounds in SWEEP_ROUNDS
    ]


#: Timing repeats per measurement; the minimum is kept.  Scalar-loop
#: wall times vary by up to ~2x run to run (frequency scaling, cache
#: state), and the guard's floors are relative to the committed number,
#: so a single-shot timing would be too fragile to enforce.
TIMING_REPEATS = 3


def _scalar_loop_seconds(
    spec: ProtocolCellSpec,
    repetitions: int,
    loop_reps: int,
    base_seed: int,
    repeats: int = TIMING_REPEATS,
) -> tuple[float, np.ndarray]:
    """Best-of-``repeats`` time of ``loop_reps`` scalar runs, scaled."""
    protocol, population = spec.build()
    best = float("inf")
    reference = None
    for _ in range(repeats):
        runner = ExperimentRunner(
            base_seed=base_seed, repetitions=loop_reps
        )
        start = time.perf_counter()
        result = runner.run_custom(
            spec.n,
            spec.rounds,
            lambda rng: protocol.estimate(
                population, spec.rounds, rng
            ).n_hat,
        )
        best = min(best, time.perf_counter() - start)
        reference = result.estimates
    return best * repetitions / loop_reps, reference


def measure_protocol_cell(
    name: str,
    spec: ProtocolCellSpec,
    repetitions: int = PAPER_RUNS_PER_POINT,
    loop_reps: int = 20,
    base_seed: int = BASE_SEED,
) -> dict:
    """One population-tier cell: loop vs engine, with exactness checks."""
    loop_reps = min(loop_reps, repetitions)
    protocol, population = spec.build()
    registry = MetricsRegistry()
    batched_seconds = float("inf")
    cell = None
    for repeat in range(TIMING_REPEATS):
        # A fresh registry per repeat keeps the slot counters exact.
        repeat_registry = MetricsRegistry() if repeat else registry
        start = time.perf_counter()
        result = run_protocol_cell(
            protocol,
            population,
            rounds=spec.rounds,
            repetitions=repetitions,
            base_seed=base_seed,
            registry=repeat_registry,
        )
        batched_seconds = min(
            batched_seconds, time.perf_counter() - start
        )
        cell = result
    loop_seconds, reference = _scalar_loop_seconds(
        spec, repetitions, loop_reps, base_seed
    )
    counters = registry.snapshot()["counters"]
    expected_slots = cell.slots_per_run * repetitions
    recorded_slots = counters.get(
        f"protocol.{cell.protocol}.slots", 0
    )
    return {
        "name": name,
        "protocol": cell.protocol,
        "n": spec.n,
        "rounds": spec.rounds,
        "config": dict(spec.config),
        "repetitions": repetitions,
        "timed_loop_repetitions": loop_reps,
        "before_seconds": round(loop_seconds, 3),
        "after_seconds": round(batched_seconds, 3),
        "speedup": round(loop_seconds / batched_seconds, 1),
        "bit_identical": (
            cell.estimates[:loop_reps].tolist() == reference.tolist()
        ),
        "slots_exact": recorded_slots == expected_slots,
    }


def measure_table3_sweep(
    repetitions: int = PAPER_RUNS_PER_POINT,
    loop_reps: int = 20,
    base_seed: int = BASE_SEED,
) -> dict:
    """The whole comparison grid as one aggregate measurement."""
    loop_reps = min(loop_reps, repetitions)
    specs = sweep_specs()
    batched_seconds = float("inf")
    for _ in range(TIMING_REPEATS):
        start = time.perf_counter()
        sweep_protocol_cells(
            specs, repetitions=repetitions, base_seed=base_seed
        )
        batched_seconds = min(
            batched_seconds, time.perf_counter() - start
        )
    loop_seconds = 0.0
    for spec in specs:
        seconds, _ = _scalar_loop_seconds(
            spec, repetitions, loop_reps, base_seed
        )
        loop_seconds += seconds
    return {
        "name": "table3_sweep",
        "n": BENCH_N,
        "cells": len(specs),
        "repetitions": repetitions,
        "timed_loop_repetitions": loop_reps,
        "before_seconds": round(loop_seconds, 3),
        "after_seconds": round(batched_seconds, 3),
        "speedup": round(loop_seconds / batched_seconds, 1),
    }


def measure_fig6_driver(
    n: int = DRIVER_N,
    runs: int = DRIVER_RUNS,
    loop_runs: int = 100,
    base_seed: int = 6,
) -> dict:
    """The sampled-tier fig6 panels: historical loops vs batched.

    ``before`` replays the historical driver (per-run
    ``estimate_sampled`` loop for FNEB, per-run multinomial sampler for
    LoF) on ``loop_runs`` runs scaled up; ``after`` is the batched
    samplers at full size.  Also asserts the batched samplers are
    bit-identical to per-run loops of the *current* scalar laws.
    """
    loop_runs = min(loop_runs, runs)
    fneb, lof = FnebProtocol(), LofProtocol()
    fneb_rounds, lof_rounds = fig6_equal_budget_rounds()

    before_seconds = float("inf")
    for _ in range(TIMING_REPEATS):
        rng = np.random.default_rng((base_seed, n))
        start = time.perf_counter()
        for _ in range(loop_runs):
            fneb.estimate_sampled(n, fneb_rounds, rng)
        for _ in range(loop_runs):
            lof.estimate_sampled_multinomial(n, lof_rounds, rng)
        before_seconds = min(
            before_seconds,
            (time.perf_counter() - start) * runs / loop_runs,
        )

    after_seconds = float("inf")
    for _ in range(TIMING_REPEATS):
        rng = np.random.default_rng((base_seed, n))
        start = time.perf_counter()
        fneb_batch = fneb.estimate_sampled_batch(
            n, fneb_rounds, runs, rng
        )
        lof_batch = lof.estimate_sampled_batch(n, lof_rounds, runs, rng)
        after_seconds = min(
            after_seconds, time.perf_counter() - start
        )

    # Bit-identity check on independent per-protocol seed streams (the
    # timed paths above share one rng across protocols, so their word
    # positions cannot line up with short per-protocol loops).
    fneb_check = fneb.estimate_sampled_batch(
        n, fneb_rounds, loop_runs,
        np.random.default_rng((base_seed, n, 1)),
    )
    check_rng = np.random.default_rng((base_seed, n, 1))
    fneb_loop = [
        fneb.estimate_sampled(n, fneb_rounds, check_rng).n_hat
        for _ in range(loop_runs)
    ]
    lof_check = lof.estimate_sampled_batch(
        n, lof_rounds, loop_runs,
        np.random.default_rng((base_seed, n, 2)),
    )
    check_rng = np.random.default_rng((base_seed, n, 2))
    lof_loop = []
    for _ in range(loop_runs):
        try:
            lof_loop.append(
                lof.estimate_sampled(n, lof_rounds, check_rng).n_hat
            )
        except Exception:
            lof_loop.append(float("nan"))
    bit_identical = (
        fneb_check.estimates.tolist() == fneb_loop
        and lof_check.estimates.tolist() == lof_loop
    )
    return {
        "name": "fig6_driver",
        "n": n,
        "runs": runs,
        "fneb_rounds": fneb_rounds,
        "lof_rounds": lof_rounds,
        "timed_loop_runs": loop_runs,
        "before": "per-run estimate_sampled loops (multinomial LoF)",
        "after": "estimate_sampled_batch (inverse-CDF LoF)",
        "before_seconds": round(before_seconds, 3),
        "after_seconds": round(after_seconds, 3),
        "speedup": round(before_seconds / after_seconds, 1),
        "bit_identical": bit_identical,
        "saturated_runs": (
            fneb_batch.saturated_runs + lof_batch.saturated_runs
        ),
    }


def measure_all(loop_reps: int = 20) -> dict:
    """Every bench cell, in the committed-JSON shape."""
    cells: dict[str, dict] = {}
    for name, spec in protocol_cells().items():
        cells[name] = measure_protocol_cell(
            name, spec, loop_reps=loop_reps
        )
    cells["table3_sweep"] = measure_table3_sweep(loop_reps=loop_reps)
    cells["fig6_driver"] = measure_fig6_driver()
    return {
        "bench_n": BENCH_N,
        "repetitions": PAPER_RUNS_PER_POINT,
        "base_seed": BASE_SEED,
        "cells": cells,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--loop-reps",
        type=int,
        default=20,
        help="repetitions to time the scalar loops on (scaled up)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=str(DEFAULT_OUT),
        help="where to write the measurements JSON",
    )
    args = parser.parse_args()
    record = measure_all(loop_reps=args.loop_reps)
    for name, cell in record["cells"].items():
        extra = ""
        if "bit_identical" in cell:
            extra = f"  bit_identical={cell['bit_identical']}"
        print(
            f"{name:14s} before={cell['before_seconds']:8.3f}s  "
            f"after={cell['after_seconds']:7.3f}s  "
            f"speedup={cell['speedup']:6.1f}x{extra}"
        )
    Path(args.out).write_text(json.dumps(record, indent=2) + "\n")
    print(f"measurements written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
