"""Bench table3: PET's total slot counts (5 slots/round at H=32)."""

from __future__ import annotations

from repro.figures import table3


def test_bench_table3(once):
    rows = once(table3.run)
    print()
    table3.table(rows).print()
    for row in rows:
        assert row.nominal_slots == 5 * row.rounds
        assert row.measured_slots == row.nominal_slots
