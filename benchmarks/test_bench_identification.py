"""Bench ablation: exact identification vs PET estimation.

The paper's motivating gap (Sec. 1): identification costs O(n) slots,
estimation O(1) total for a fixed accuracy contract.  Locates the
crossover empirically.
"""

from __future__ import annotations

from repro.figures import ablations


def test_bench_identification_vs_estimation(once):
    sizes = (1_000, 5_000, 20_000, 50_000)
    table = once(
        ablations.identification_vs_estimation, sizes=sizes
    )
    print()
    table.print()
    pet_slots = float(table.rows[0][3].replace(",", ""))
    tree_costs = [
        float(row[2].replace(",", "")) for row in table.rows
    ]
    aloha_costs = [
        float(row[1].replace(",", "")) for row in table.rows
    ]
    # Identification grows linearly; PET is constant.
    assert tree_costs[-1] > 10 * tree_costs[0]
    assert aloha_costs[-1] > 10 * aloha_costs[0]
    # By 20k tags both identification baselines cost more than the full
    # (eps=5%, delta=1%) PET estimation.
    assert tree_costs[2] > pet_slots
    assert aloha_costs[2] > pet_slots
