#!/usr/bin/env python
"""Measure the kernel-backend tier and the shared-memory sweep paths.

Produces ``BENCH_backends.json``: the committed record
``bench_guard --backends`` enforces.  Three cells:

* ``splitmix_clz_micro`` — the three backend kernel primitives
  (vectorized SplitMix64, leading-zero count, clamped bucketing) on a
  benchmark-sized word array, timed per *available* backend.  The
  numpy reference defines the bit patterns; every other backend must
  match them exactly and (for numba) clear a ``>= 1.5x`` speedup
  floor.  Backends that are not installed are recorded as skipped, not
  failed — numpy-only environments stay first-class.
* ``fig4_grid_shared`` — a fig-4-shaped rounds grid (one population
  size, many round counts) computed two ways: the re-derive baseline
  (one :meth:`BatchedExperimentEngine.run_cell` per grid value, each
  re-deriving populations/codes/words) vs
  :meth:`ExperimentRunner.sweep_rounds`, which derives one shared
  depth matrix and reduces every cell as a prefix — with a worker pool
  attached through zero-copy shared-memory segments.  The guard
  enforces ``>= 1.2x`` here; the honest win is avoided re-derivation,
  not parallelism, so the floor holds even on single-core runners.
* ``protocol_sweep_shared`` — the cross-protocol sweep with
  ``share_seeds=True`` vs the per-cell re-derive default (recorded for
  bit-identity and visibility; seed derivation is a small fraction of
  protocol cells, so no speedup floor is enforced).

Run with::

    PYTHONPATH=src python benchmarks/bench_backends.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.config import PetConfig
from repro.obs import MetricsRegistry
from repro.sim.backends import available_backends, get_backend
from repro.sim.experiment import ExperimentRunner
from repro.sim.protocol_batched import (
    ProtocolCellSpec,
    sweep_protocol_cells,
)
from repro.sim.workload import WorkloadSpec

DEFAULT_OUT = (
    Path(__file__).resolve().parent.parent / "BENCH_backends.json"
)

BASE_SEED = 2011

#: Words per microbenchmark pass — large enough that per-call overhead
#: (JIT dispatch, wrapper reshapes) is invisible next to the kernels.
MICRO_WORDS = 1 << 22

#: The fig-4 grid shape: one population, the paper's round counts.
GRID_N = 10_000
GRID_ROUNDS = (8, 16, 32, 64, 128, 256)

#: Repetitions for the grid cells — enough work for stable timing while
#: keeping the guard's wall time in seconds, not minutes.
GRID_REPETITIONS = 60

#: Timing repeats per measurement; the minimum is kept (same rationale
#: as bench_protocol_batched: shared CI hardware is noisy and the
#: guard's floors are relative to these numbers).
TIMING_REPEATS = 3

#: Speedup floors the guard enforces (also recorded into the JSON so
#: the committed artifact documents its own contract).
NUMBA_MICRO_FLOOR = 1.5
GRID_SHARED_FLOOR = 1.2


def _best_of(repeats: int, fn) -> tuple[float, object]:
    """Best-of-``repeats`` wall time of ``fn``; returns (seconds, last)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _micro_words() -> np.ndarray:
    rng = np.random.default_rng(BASE_SEED)
    return rng.integers(0, 2**64, size=MICRO_WORDS, dtype=np.uint64)


def _micro_pass(backend, words: np.ndarray):
    digests = backend.splitmix64_vec(words)
    zeros = backend.leading_zeros64_vec(digests)
    buckets = backend.clamped_buckets(digests, 52)
    return digests, zeros, buckets


def measure_micro() -> dict:
    """``splitmix_clz_micro``: the three kernels, per available backend."""
    words = _micro_words()
    reference = get_backend("numpy")
    # Warm-up defines the reference bit patterns (and compiles JITs).
    reference_out = _micro_pass(reference, words)
    backends: dict[str, dict] = {}
    numpy_seconds = None
    for name in available_backends():
        backend = get_backend(name)
        _micro_pass(backend, words)  # warm-up / JIT compile
        out = _micro_pass(backend, words)
        bit_identical = all(
            np.array_equal(ours, theirs)
            for ours, theirs in zip(out, reference_out)
        )
        seconds, _ = _best_of(
            TIMING_REPEATS, lambda b=backend: _micro_pass(b, words)
        )
        backends[name] = {
            "seconds": round(seconds, 4),
            "bit_identical": bit_identical,
        }
        if name == "numpy":
            numpy_seconds = seconds
    for name, row in backends.items():
        row["speedup_vs_numpy"] = round(numpy_seconds / row["seconds"], 2)
    return {
        "name": "splitmix_clz_micro",
        "words": MICRO_WORDS,
        "numba_floor": NUMBA_MICRO_FLOOR,
        "backends": backends,
        "skipped": sorted(
            set(("numpy", "numba")) - set(backends)
        ),
    }


def measure_fig4_grid(
    repetitions: int = GRID_REPETITIONS, workers: int = 2
) -> dict:
    """``fig4_grid_shared``: per-cell re-derivation vs the shared grid."""
    spec = WorkloadSpec(size=GRID_N, seed=0)
    config = PetConfig(passive_tags=True)

    def per_cell():
        runner = ExperimentRunner(
            base_seed=BASE_SEED,
            repetitions=repetitions,
            registry=MetricsRegistry(),
        )
        return [
            runner.run_vectorized(spec, config, rounds)
            for rounds in GRID_ROUNDS
        ]

    def shared_grid():
        runner = ExperimentRunner(
            base_seed=BASE_SEED,
            repetitions=repetitions,
            registry=MetricsRegistry(),
        )
        return runner.sweep_rounds(
            spec, config, GRID_ROUNDS, workers=workers
        )

    before_seconds, baseline = _best_of(TIMING_REPEATS, per_cell)
    after_seconds, shared = _best_of(TIMING_REPEATS, shared_grid)
    bit_identical = all(
        a.estimates.tolist() == b.estimates.tolist()
        and a.slots_per_run == b.slots_per_run
        for a, b in zip(baseline, shared)
    )
    return {
        "name": "fig4_grid_shared",
        "n": GRID_N,
        "rounds_grid": list(GRID_ROUNDS),
        "repetitions": repetitions,
        "workers": workers,
        "floor": GRID_SHARED_FLOOR,
        "before": "run_cell per grid value (re-derives every cell)",
        "after": "sweep_rounds shared depth matrix over shm workers",
        "before_seconds": round(before_seconds, 3),
        "after_seconds": round(after_seconds, 3),
        "speedup": round(before_seconds / after_seconds, 2),
        "bit_identical": bit_identical,
    }


def measure_protocol_sweep(
    repetitions: int = 50, workers: int = 2
) -> dict:
    """``protocol_sweep_shared``: share_seeds vs per-cell derivation."""
    specs = [
        ProtocolCellSpec("lof", 256, rounds)
        for rounds in (100, 200, 400)
    ] + [
        ProtocolCellSpec("fneb", 256, rounds)
        for rounds in (100, 200, 400)
    ]

    def run(share: bool):
        return sweep_protocol_cells(
            specs,
            repetitions=repetitions,
            base_seed=BASE_SEED,
            workers=workers,
            registry=MetricsRegistry(),
            share_seeds=share,
        )

    before_seconds, baseline = _best_of(
        TIMING_REPEATS, lambda: run(False)
    )
    after_seconds, shared = _best_of(TIMING_REPEATS, lambda: run(True))
    bit_identical = all(
        a.estimates.tolist() == b.estimates.tolist()
        for a, b in zip(baseline, shared)
    )
    return {
        "name": "protocol_sweep_shared",
        "cells": len(specs),
        "repetitions": repetitions,
        "workers": workers,
        "before": "per-cell seed_matrix derivation",
        "after": "one shm seed matrix, prefix-sliced per cell",
        "before_seconds": round(before_seconds, 3),
        "after_seconds": round(after_seconds, 3),
        "speedup": round(before_seconds / after_seconds, 2),
        "bit_identical": bit_identical,
    }


def measure_all() -> dict:
    """Every bench cell, in the committed-JSON shape."""
    return {
        "base_seed": BASE_SEED,
        "cells": {
            "splitmix_clz_micro": measure_micro(),
            "fig4_grid_shared": measure_fig4_grid(),
            "protocol_sweep_shared": measure_protocol_sweep(),
        },
        "available_backends": list(available_backends()),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=str(DEFAULT_OUT),
        help="where to write the measurements JSON",
    )
    args = parser.parse_args()
    record = measure_all()
    micro = record["cells"]["splitmix_clz_micro"]
    for name, row in micro["backends"].items():
        print(
            f"micro[{name:5s}] {row['seconds']:7.4f}s  "
            f"{row['speedup_vs_numpy']:5.2f}x vs numpy  "
            f"bit_identical={row['bit_identical']}"
        )
    if micro["skipped"]:
        print(f"micro skipped (not installed): {micro['skipped']}")
    for key in ("fig4_grid_shared", "protocol_sweep_shared"):
        cell = record["cells"][key]
        print(
            f"{key:22s} before={cell['before_seconds']:8.3f}s  "
            f"after={cell['after_seconds']:7.3f}s  "
            f"speedup={cell['speedup']:5.2f}x  "
            f"bit_identical={cell['bit_identical']}"
        )
    Path(args.out).write_text(json.dumps(record, indent=2) + "\n")
    print(f"measurements written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
