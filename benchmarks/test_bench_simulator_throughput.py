"""Microbenchmarks: round throughput of the simulator tiers.

Not a paper artifact — these justify the tiered design documented in
DESIGN.md by measuring the cost of one estimation round per tier, and
the batched experiment engine against the per-repetition reference
loop.  ``benchmarks/bench_batched_engine.py`` runs the full fig-4-sized
before/after comparison and records it in ``BENCH_batched_engine.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.core.path import EstimatingPath
from repro.sim.batched import BatchedExperimentEngine
from repro.sim.experiment import ExperimentRunner
from repro.sim.sampled import SampledSimulator
from repro.sim.slotsim import SlotLevelSimulator
from repro.sim.vectorized import VectorizedSimulator
from repro.sim.workload import WorkloadSpec
from repro.tags.population import TagPopulation

N = 5_000


@pytest.fixture(scope="module")
def population():
    return TagPopulation.random(N, np.random.default_rng(0))


def test_bench_slot_level_round(benchmark, population):
    # Slot-level is O(n) Python work per slot: bench a single round on
    # a small slice of the population.
    small = TagPopulation(
        [int(t) for t in population.tag_ids[:500]]
    )
    simulator = SlotLevelSimulator(
        small,
        config=PetConfig(rounds=1, passive_tags=True),
        rng=np.random.default_rng(1),
    )
    height = simulator.reader.config.tree_height
    rng = np.random.default_rng(2)

    def one_round():
        path = EstimatingPath.random(height, rng)
        return simulator.run_round(path, 0)

    depth, slots = benchmark(one_round)
    assert 0 <= depth <= 32
    assert slots >= 1


def test_bench_vectorized_round_active(benchmark, population):
    simulator = VectorizedSimulator(
        population, config=PetConfig(), rng=np.random.default_rng(3)
    )
    rng = np.random.default_rng(4)

    def one_round():
        return simulator.run_round(EstimatingPath.random(32, rng), 0)

    depth, slots = benchmark(one_round)
    assert slots == 5


def test_bench_vectorized_round_passive(benchmark, population):
    simulator = VectorizedSimulator(
        population,
        config=PetConfig(passive_tags=True),
        rng=np.random.default_rng(5),
    )
    rng = np.random.default_rng(6)

    def one_round():
        return simulator.run_round(EstimatingPath.random(32, rng), 0)

    depth, slots = benchmark(one_round)
    assert slots >= 5


def test_bench_sampled_batch(benchmark):
    simulator = SampledSimulator(
        1_000_000, rng=np.random.default_rng(7)
    )

    def batch():
        return simulator.estimate_batch(rounds=4697, repetitions=10)

    estimates = benchmark(batch)
    assert estimates.shape == (10,)
    assert 0.9 < estimates.mean() / 1_000_000 < 1.1


# Batched engine vs the per-repetition reference loop.  Reduced scale
# (50 reps x 512 rounds) so the loop baseline stays benchmarkable; the
# committed BENCH_batched_engine.json holds the full fig-4-sized cell.
_CELL_SPEC = WorkloadSpec(size=10_000, seed=0)
_CELL_CONFIG = PetConfig(passive_tags=True)
_CELL_REPS = 50
_CELL_ROUNDS = 512


def test_bench_batched_engine_cell(benchmark):
    engine = BatchedExperimentEngine(
        base_seed=2011, repetitions=_CELL_REPS
    )

    def cell():
        return engine.run_cell(_CELL_SPEC, _CELL_CONFIG, _CELL_ROUNDS)

    repeated = benchmark(cell)
    assert repeated.estimates.shape == (_CELL_REPS,)
    assert 0.8 < repeated.estimates.mean() / _CELL_SPEC.size < 1.2


def test_bench_repetition_loop_cell(benchmark):
    runner = ExperimentRunner(base_seed=2011, repetitions=_CELL_REPS)

    def cell():
        return runner.run_vectorized_loop(
            _CELL_SPEC, _CELL_CONFIG, _CELL_ROUNDS
        )

    repeated = benchmark(cell)
    assert repeated.estimates.shape == (_CELL_REPS,)
    assert 0.8 < repeated.estimates.mean() / _CELL_SPEC.size < 1.2
