"""Microbenchmarks: round throughput of the three simulator tiers.

Not a paper artifact — these justify the tiered design documented in
DESIGN.md by measuring the cost of one estimation round per tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.sim.sampled import SampledSimulator
from repro.sim.slotsim import SlotLevelSimulator
from repro.sim.vectorized import VectorizedSimulator
from repro.tags.population import TagPopulation

N = 5_000


@pytest.fixture(scope="module")
def population():
    return TagPopulation.random(N, np.random.default_rng(0))


def test_bench_slot_level_round(benchmark, population):
    # Slot-level is O(n) Python work per slot: bench a single round on
    # a small slice of the population.
    small = TagPopulation(
        [int(t) for t in population.tag_ids[:500]]
    )
    simulator = SlotLevelSimulator(
        small,
        config=PetConfig(rounds=1, passive_tags=True),
        rng=np.random.default_rng(1),
    )
    estimator_path = simulator.reader.config.tree_height

    def one_round():
        from repro.core.path import EstimatingPath

        path = EstimatingPath.random(
            estimator_path, np.random.default_rng(2)
        )
        return simulator.run_round(path, 0)

    depth, slots = benchmark(one_round)
    assert 0 <= depth <= 32
    assert slots >= 1


def test_bench_vectorized_round_active(benchmark, population):
    simulator = VectorizedSimulator(
        population, config=PetConfig(), rng=np.random.default_rng(3)
    )
    from repro.core.path import EstimatingPath

    rng = np.random.default_rng(4)

    def one_round():
        return simulator.run_round(EstimatingPath.random(32, rng), 0)

    depth, slots = benchmark(one_round)
    assert slots == 5


def test_bench_vectorized_round_passive(benchmark, population):
    simulator = VectorizedSimulator(
        population,
        config=PetConfig(passive_tags=True),
        rng=np.random.default_rng(5),
    )
    from repro.core.path import EstimatingPath

    rng = np.random.default_rng(6)

    def one_round():
        return simulator.run_round(EstimatingPath.random(32, rng), 0)

    depth, slots = benchmark(one_round)
    assert slots >= 5


def test_bench_sampled_batch(benchmark):
    simulator = SampledSimulator(
        1_000_000, rng=np.random.default_rng(7)
    )

    def batch():
        return simulator.estimate_batch(rounds=4697, repetitions=10)

    estimates = benchmark(batch)
    assert estimates.shape == (10,)
    assert 0.9 < estimates.mean() / 1_000_000 < 1.1
