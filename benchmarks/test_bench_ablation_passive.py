"""Bench ablation: passive (fixed preloaded codes) vs active variant.

Sec. 4.5 argues that varying only the reader's estimating path yields
"near independent" estimation rounds.  This quantifies the cost: the
passive variant's spread at the same round count.
"""

from __future__ import annotations

from repro.figures import ablations


def test_bench_passive_vs_active(once):
    table = once(
        ablations.passive_vs_active, n=5_000, rounds=128, runs=150
    )
    print()
    table.print()
    active_std = float(table.rows[0][2])
    passive_std = float(table.rows[1][2])
    # Passive rounds are correlated through the shared code set, so the
    # spread can exceed the active variant's — but should stay within a
    # small factor, supporting the paper's near-independence claim.
    assert passive_std < 3.0 * active_std
    # Both variants stay essentially unbiased.
    assert 0.9 < float(table.rows[0][1]) < 1.1
    assert 0.85 < float(table.rows[1][1]) < 1.15
