"""Bench ablation: tree-height sensitivity (hash saturation, Eq. 1)."""

from __future__ import annotations

from repro.figures import ablations


def test_bench_height_sensitivity(once):
    table = once(
        ablations.height_sensitivity,
        n=50_000,
        heights=(16, 18, 20, 24, 32),
        rounds=256,
        runs=300,
    )
    print()
    table.print()
    accuracies = [float(row[2]) for row in table.rows]
    # Saturated trees under-estimate; accuracy recovers monotonically
    # as H grows, reaching ~1 by the paper's H = 32.
    assert accuracies[0] < 0.8
    assert accuracies == sorted(accuracies)
    assert 0.97 < accuracies[-1] < 1.03
