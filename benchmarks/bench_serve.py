#!/usr/bin/env python
"""Benchmark the micro-batching service against sequential serving.

The workload is the ISSUE's acceptance shape: 32-way concurrency over
a multi-tenant request mix (4 reader fields, shared populations per
field, distinct request seeds).  Two legs serve the *same* requests:

* **sequential** — the thin-facade path, one
  ``execute_request(resolve_request(...))`` at a time with a shared
  population cache (so the comparison isolates kernel coalescing, not
  population synthesis);
* **coalesced** — :func:`repro.serve.run_requests` at concurrency 32:
  submissions land in the service queue, the scheduler drains ticks,
  and compatible requests fuse into shared batched-kernel calls.

Because coalescing is bit-identical by construction, the benchmark
also *verifies* it: every coalesced response's estimate must equal the
sequential result for the same seed, and the record refuses a
``speedup`` claim when identity fails.  Latency percentiles come from
the service's own ``serve.request.latency_seconds`` histogram (the
fixed log2 obs grid), not from ad-hoc timing, so the committed p99 is
the same figure a Prometheus scrape would report.

Run to regenerate the committed record::

    PYTHONPATH=src python benchmarks/bench_serve.py

``bench_guard --serve`` re-measures this workload and enforces the
absolute >= 3x floor plus a machine-relative bound against
``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.api import EstimateRequest, execute_request, resolve_request
from repro.obs import MetricsRegistry
from repro.serve import ServiceConfig, run_requests

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: The ISSUE's stated throughput floor: coalesced serving must beat
#: sequential serving by at least this factor at concurrency 32.
SERVE_FLOOR = 3.0

#: The acceptance workload.
WORKLOAD = {
    "requests": 128,
    "concurrency": 32,
    "tenants": 4,
    "population": 600,
    "rounds": 64,
    "protocol": "pet",
    "base_seed": 2011,
}


def build_requests() -> list[EstimateRequest]:
    """The deterministic benchmark request mix."""
    return [
        EstimateRequest(
            population=WORKLOAD["population"],
            protocol=WORKLOAD["protocol"],
            seed=WORKLOAD["base_seed"] + index,
            population_seed=1_000 + index % WORKLOAD["tenants"],
            rounds=WORKLOAD["rounds"],
            tenant=f"tenant-{index % WORKLOAD['tenants']}",
            request_id=f"bench-{index:04d}",
        )
        for index in range(WORKLOAD["requests"])
    ]


def time_sequential(requests: list[EstimateRequest]):
    """One request at a time through the facade's resolve/execute path."""
    cache: dict = {}
    start = time.perf_counter()
    results = [
        execute_request(
            resolve_request(request, population_cache=cache)
        )
        for request in requests
    ]
    return time.perf_counter() - start, results


def time_coalesced(requests: list[EstimateRequest]):
    """The same requests through the micro-batching service."""
    registry = MetricsRegistry()
    config = ServiceConfig(
        max_queue_depth=WORKLOAD["requests"],
        max_batch_size=WORKLOAD["concurrency"],
        tenant_quota=WORKLOAD["requests"],
        tick_seconds=0.001,
    )
    start = time.perf_counter()
    responses = run_requests(
        requests,
        config=config,
        registry=registry,
        concurrency=WORKLOAD["concurrency"],
    )
    return time.perf_counter() - start, responses, registry


def measure_all(repeats: int = 3) -> dict:
    """Best-of-``repeats`` timings for both legs, plus identity checks."""
    requests = build_requests()

    sequential_seconds = float("inf")
    results = None
    for _ in range(repeats):
        seconds, fresh_results = time_sequential(requests)
        sequential_seconds = min(sequential_seconds, seconds)
        results = fresh_results
    assert results is not None

    coalesced_seconds = float("inf")
    responses = registry = None
    for _ in range(repeats):
        seconds, fresh_responses, fresh_registry = time_coalesced(
            requests
        )
        coalesced_seconds = min(coalesced_seconds, seconds)
        responses = fresh_responses
        registry = fresh_registry
    assert responses is not None and registry is not None

    bit_identical = all(
        response.status == "ok"
        and response.result.n_hat == result.n_hat
        and response.result.total_slots == result.total_slots
        for response, result in zip(responses, results)
    )
    latency = registry.histogram("serve.request.latency_seconds")
    snapshot = registry.snapshot()["counters"]
    return {
        "workload": dict(WORKLOAD),
        "sequential": {
            "seconds": round(sequential_seconds, 4),
            "requests_per_second": round(
                len(requests) / sequential_seconds, 1
            ),
        },
        "coalesced": {
            "seconds": round(coalesced_seconds, 4),
            "requests_per_second": round(
                len(requests) / coalesced_seconds, 1
            ),
            "p50_seconds": round(latency.quantile(0.50), 5),
            "p99_seconds": round(latency.quantile(0.99), 5),
            "fused_requests": int(
                snapshot.get("serve.batch.fused_requests", 0)
            ),
            "fusion_groups": int(
                snapshot.get("serve.batch.groups", 0)
            ),
        },
        "speedup": round(sequential_seconds / coalesced_seconds, 2),
        "bit_identical": bit_identical,
        "floor": SERVE_FLOOR,
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }


def main() -> int:
    record = measure_all()
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    coalesced = record["coalesced"]
    print(
        f"sequential: {record['sequential']['seconds']:.3f}s  "
        f"coalesced: {coalesced['seconds']:.3f}s  "
        f"speedup: {record['speedup']:.2f}x "
        f"(floor {record['floor']:.1f}x)  "
        f"bit_identical={record['bit_identical']}"
    )
    print(
        f"latency p50={coalesced['p50_seconds'] * 1e3:.2f}ms  "
        f"p99={coalesced['p99_seconds'] * 1e3:.2f}ms  "
        f"fused {coalesced['fused_requests']} requests into "
        f"{coalesced['fusion_groups']} kernel groups"
    )
    print(f"record written to {OUTPUT}")
    return 0 if record["bit_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
