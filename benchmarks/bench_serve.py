#!/usr/bin/env python
"""Benchmark the serving tier: coalescing, sharding, and the cache.

The workload is the acceptance shape shared by every leg: 128
multi-tenant requests (4 reader fields, shared populations per field,
distinct request seeds).  Five measurements serve the *same* requests:

* **sequential** — the thin-facade path, one
  ``execute_request(resolve_request(...))`` at a time with a shared
  population cache (so the comparison isolates scheduling, not
  population synthesis);
* **coalesced** — :func:`repro.serve.run_requests` at concurrency 32:
  submissions land in the service queue, the scheduler drains ticks,
  and compatible requests fuse into shared batched-kernel calls;
* **single_process_c64** — the same in-process service at concurrency
  64, the apples-to-apples baseline for the sharded leg;
* **sharded** — :func:`repro.serve.run_sharded` with
  ``SHARD_COUNT`` worker processes behind the hash router at
  concurrency 64.  The ``>= SHARD_FLOOR`` speedup claim only holds
  when the machine has cores to shard across, so the record carries
  ``floor_enforced = cpu_count >= SHARD_MIN_CPUS`` and the guard
  skips (not fails) the floor on smaller boxes — same policy as the
  numba microbench floor;
* **cached_replay** — the same requests served twice through one
  service: the cold pass computes, the warm pass must be a 100 %
  idempotent-cache hit, bit-identical and at least ``CACHE_FLOOR``
  times faster.

Because sharding and caching are bit-identical by construction, the
benchmark also *verifies* them: the ``identity_matrix`` re-serves the
workload for every shards × cache combination in {1, 2, 4} × {on, off}
and records whether each run matched the sequential results
element-wise.  The guard refuses any record with a false cell.

Run to regenerate the committed record::

    PYTHONPATH=src python benchmarks/bench_serve.py

``bench_guard --serve`` re-measures this workload and enforces the
floors plus a machine-relative bound against ``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time
from pathlib import Path

from repro.api import EstimateRequest, execute_request, resolve_request
from repro.obs import MetricsRegistry
from repro.serve import (
    EstimationService,
    ServiceConfig,
    run_requests,
    run_sharded,
)
from repro.sim.backends import active_backend

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: The ISSUE's stated throughput floor: coalesced serving must beat
#: sequential serving by at least this factor at concurrency 32.
SERVE_FLOOR = 3.0

#: Sharded serving must beat the single-process service by at least
#: this factor at concurrency 64 — on machines with enough cores.
SHARD_FLOOR = 2.0

#: Cores below which the sharded floor is recorded but not enforced
#: (worker processes time-slice one core and the ratio is meaningless).
SHARD_MIN_CPUS = 4

#: Worker processes in the sharded leg.
SHARD_COUNT = 4

#: A warm cache replay must beat its own cold pass by at least this.
CACHE_FLOOR = 10.0

#: The acceptance workload.
WORKLOAD = {
    "requests": 128,
    "concurrency": 32,
    "tenants": 4,
    "population": 600,
    "rounds": 64,
    "protocol": "pet",
    "base_seed": 2011,
}


def build_requests() -> list[EstimateRequest]:
    """The deterministic benchmark request mix."""
    return [
        EstimateRequest(
            population=WORKLOAD["population"],
            protocol=WORKLOAD["protocol"],
            seed=WORKLOAD["base_seed"] + index,
            population_seed=1_000 + index % WORKLOAD["tenants"],
            rounds=WORKLOAD["rounds"],
            tenant=f"tenant-{index % WORKLOAD['tenants']}",
            request_id=f"bench-{index:04d}",
        )
        for index in range(WORKLOAD["requests"])
    ]


def _service_config(cache: bool = True) -> ServiceConfig:
    return ServiceConfig(
        max_queue_depth=WORKLOAD["requests"],
        max_batch_size=WORKLOAD["concurrency"],
        tenant_quota=WORKLOAD["requests"],
        tick_seconds=0.001,
        cache=cache,
    )


def _identical(responses, results) -> bool:
    """Element-wise response/result identity on the estimate view."""
    return all(
        response.status == "ok"
        and response.result.n_hat == result.n_hat
        and response.result.total_slots == result.total_slots
        for response, result in zip(responses, results)
    )


def time_sequential(requests: list[EstimateRequest]):
    """One request at a time through the facade's resolve/execute path."""
    cache: dict = {}
    start = time.perf_counter()
    results = [
        execute_request(
            resolve_request(request, population_cache=cache)
        )
        for request in requests
    ]
    return time.perf_counter() - start, results


def time_coalesced(requests: list[EstimateRequest], concurrency: int):
    """The same requests through the micro-batching service."""
    registry = MetricsRegistry()
    start = time.perf_counter()
    responses = run_requests(
        requests,
        config=_service_config(),
        registry=registry,
        concurrency=concurrency,
    )
    return time.perf_counter() - start, responses, registry


def time_sharded(
    requests: list[EstimateRequest],
    shards: int,
    concurrency: int,
    cache: bool = True,
):
    """The same requests through N worker processes behind the router."""
    registry = MetricsRegistry()
    start = time.perf_counter()
    responses = run_sharded(
        requests,
        shards=shards,
        config=_service_config(cache=cache),
        registry=registry,
        concurrency=concurrency,
    )
    return time.perf_counter() - start, responses, registry


def time_cached_replay(requests: list[EstimateRequest]):
    """Cold pass then warm replay through ONE service instance.

    The warm pass hits the idempotent result cache on every request:
    same keys, no kernel work, byte-identical responses.  Submissions
    are gated at the workload concurrency — flooding the whole batch
    at once would push the queue past ``degrade_depth`` and the
    degraded answers would (correctly) never enter the cache.
    """
    registry = MetricsRegistry()

    async def _main():
        service = EstimationService(
            config=_service_config(), registry=registry
        )
        gate = asyncio.Semaphore(WORKLOAD["concurrency"])

        async def _one(request):
            async with gate:
                return await service.submit(request)

        async with service:
            start = time.perf_counter()
            cold = await asyncio.gather(
                *(_one(request) for request in requests)
            )
            cold_seconds = time.perf_counter() - start
            start = time.perf_counter()
            warm = await asyncio.gather(
                *(_one(request) for request in requests)
            )
            warm_seconds = time.perf_counter() - start
        return cold_seconds, list(cold), warm_seconds, list(warm)

    cold_seconds, cold, warm_seconds, warm = asyncio.run(_main())
    hits = int(registry.counter("serve.cache.hits").value)
    bit_identical = all(
        w.status == "ok" and w.result is c.result
        for w, c in zip(warm, cold)
    )
    return {
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "hit_rate": round(hits / len(requests), 4),
        "bit_identical": bit_identical,
        "floor": CACHE_FLOOR,
    }


def measure_all(repeats: int = 3) -> dict:
    """Best-of-``repeats`` timings for every leg, plus identity checks."""
    requests = build_requests()
    cpu_count = os.cpu_count() or 1

    sequential_seconds = float("inf")
    results = None
    for _ in range(repeats):
        seconds, fresh_results = time_sequential(requests)
        sequential_seconds = min(sequential_seconds, seconds)
        results = fresh_results
    assert results is not None

    coalesced_seconds = float("inf")
    responses = registry = None
    for _ in range(repeats):
        seconds, fresh_responses, fresh_registry = time_coalesced(
            requests, WORKLOAD["concurrency"]
        )
        coalesced_seconds = min(coalesced_seconds, seconds)
        responses = fresh_responses
        registry = fresh_registry
    assert responses is not None and registry is not None

    single_c64_seconds = float("inf")
    for _ in range(repeats):
        seconds, c64_responses, _ = time_coalesced(requests, 64)
        single_c64_seconds = min(single_c64_seconds, seconds)

    sharded_seconds = float("inf")
    sharded_responses = None
    for _ in range(repeats):
        seconds, fresh_responses, _ = time_sharded(
            requests, SHARD_COUNT, 64
        )
        sharded_seconds = min(sharded_seconds, seconds)
        sharded_responses = fresh_responses
    assert sharded_responses is not None

    cached_replay = time_cached_replay(requests)

    # Identity matrix: every shards × cache combination must reproduce
    # the sequential results exactly.  The timed sharded leg above
    # already served (SHARD_COUNT, cache on); reuse it.
    identity_matrix: dict[str, bool] = {}
    for shards in (1, 2, 4):
        for cache in (True, False):
            label = f"shards={shards}/cache={'on' if cache else 'off'}"
            if shards == SHARD_COUNT and cache:
                matrix_responses = sharded_responses
            else:
                _, matrix_responses, _ = time_sharded(
                    requests, shards, 64, cache=cache
                )
            identity_matrix[label] = _identical(
                matrix_responses, results
            )

    bit_identical = _identical(responses, results)
    latency = registry.histogram("serve.request.latency_seconds")
    snapshot = registry.snapshot()["counters"]
    return {
        "workload": dict(WORKLOAD),
        "sequential": {
            "seconds": round(sequential_seconds, 4),
            "requests_per_second": round(
                len(requests) / sequential_seconds, 1
            ),
        },
        "coalesced": {
            "seconds": round(coalesced_seconds, 4),
            "requests_per_second": round(
                len(requests) / coalesced_seconds, 1
            ),
            "p50_seconds": round(latency.quantile(0.50), 5),
            "p99_seconds": round(latency.quantile(0.99), 5),
            "fused_requests": int(
                snapshot.get("serve.batch.fused_requests", 0)
            ),
            "fusion_groups": int(
                snapshot.get("serve.batch.groups", 0)
            ),
        },
        "single_process_c64": {
            "seconds": round(single_c64_seconds, 4),
            "requests_per_second": round(
                len(requests) / single_c64_seconds, 1
            ),
        },
        "sharded": {
            "shards": SHARD_COUNT,
            "seconds": round(sharded_seconds, 4),
            "requests_per_second": round(
                len(requests) / sharded_seconds, 1
            ),
            "speedup_vs_single_process": round(
                single_c64_seconds / sharded_seconds, 2
            ),
            "floor": SHARD_FLOOR,
            "min_cpus": SHARD_MIN_CPUS,
            "floor_enforced": cpu_count >= SHARD_MIN_CPUS,
        },
        "cached_replay": cached_replay,
        "identity_matrix": identity_matrix,
        "speedup": round(sequential_seconds / coalesced_seconds, 2),
        "bit_identical": bit_identical,
        "floor": SERVE_FLOOR,
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": cpu_count,
            "backend": active_backend().name,
        },
    }


def main() -> int:
    record = measure_all()
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    coalesced = record["coalesced"]
    sharded = record["sharded"]
    replay = record["cached_replay"]
    print(
        f"sequential: {record['sequential']['seconds']:.3f}s  "
        f"coalesced: {coalesced['seconds']:.3f}s  "
        f"speedup: {record['speedup']:.2f}x "
        f"(floor {record['floor']:.1f}x)  "
        f"bit_identical={record['bit_identical']}"
    )
    print(
        f"latency p50={coalesced['p50_seconds'] * 1e3:.2f}ms  "
        f"p99={coalesced['p99_seconds'] * 1e3:.2f}ms  "
        f"fused {coalesced['fused_requests']} requests into "
        f"{coalesced['fusion_groups']} kernel groups"
    )
    print(
        f"single-process c64: "
        f"{record['single_process_c64']['seconds']:.3f}s  "
        f"sharded x{sharded['shards']}: {sharded['seconds']:.3f}s  "
        f"speedup: {sharded['speedup_vs_single_process']:.2f}x "
        f"(floor {sharded['floor']:.1f}x, "
        f"enforced={sharded['floor_enforced']} at "
        f"{record['environment']['cpu_count']} cpus)"
    )
    print(
        f"cached replay: cold {replay['cold_seconds']:.3f}s  warm "
        f"{replay['warm_seconds']:.4f}s  speedup "
        f"{replay['speedup']:.1f}x (floor {replay['floor']:.1f}x)  "
        f"hit_rate={replay['hit_rate']:.0%}  "
        f"bit_identical={replay['bit_identical']}"
    )
    matrix_ok = all(record["identity_matrix"].values())
    print(
        "identity matrix (shards x cache vs sequential): "
        + ("all identical" if matrix_ok else "MISMATCH")
    )
    print(f"record written to {OUTPUT}")
    ok = (
        record["bit_identical"]
        and matrix_ok
        and replay["bit_identical"]
        and replay["hit_rate"] == 1.0
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
