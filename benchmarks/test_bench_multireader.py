"""Bench ablation: multi-reader overhead and duplicate-insensitivity.

Runs the same population through 1, 2 and 4 overlapping readers under a
back-end controller (Sec. 4.6.3) and checks that (a) the estimate is
unaffected by duplicates, (b) the wall-clock slot cost does not grow
with the reader count.
"""

from __future__ import annotations

import numpy as np

from repro.config import PetConfig
from repro.core.estimator import PetEstimator
from repro.radio.channel import SlottedChannel
from repro.reader.controller import ReaderController
from repro.sim.report import Table
from repro.tags.pet_tags import PassivePetTag
from repro.tags.population import TagPopulation

HEIGHT = 18
N = 600
ROUNDS = 192


def run_with_readers(num_readers: int, seed: int) -> tuple[float, int]:
    rng = np.random.default_rng(seed)
    population = TagPopulation.random(N, rng)
    channels = [SlottedChannel(rng=rng) for _ in range(num_readers)]
    for index, tag_id in enumerate(population.tag_ids):
        home = index % num_readers
        channels[home].attach(PassivePetTag(int(tag_id), HEIGHT))
        # Every third tag also heard by the next reader (overlap).
        if num_readers > 1 and index % 3 == 0:
            other = (home + 1) % num_readers
            channels[other].attach(PassivePetTag(int(tag_id), HEIGHT))
    config = PetConfig(
        tree_height=HEIGHT, passive_tags=True, rounds=ROUNDS
    )
    controller = ReaderController(channels, config=config, rng=rng)
    result = PetEstimator(config=config, rng=rng).run(controller)
    return result.n_hat, result.total_slots


def test_bench_multireader(once):
    def sweep():
        return {
            readers: run_with_readers(readers, seed=55)
            for readers in (1, 2, 4)
        }

    results = once(sweep)
    print()
    table = Table(
        f"Multi-reader controller, n = {N}, m = {ROUNDS} "
        f"(same population, growing reader count)",
        ["readers", "estimate", "accuracy", "wall-clock slots"],
    )
    for readers, (n_hat, slots) in sorted(results.items()):
        table.add_row(readers, n_hat, n_hat / N, slots)
    table.print()

    estimates = [results[r][0] for r in (1, 2, 4)]
    slots = [results[r][1] for r in (1, 2, 4)]
    # Duplicate tags in overlaps don't inflate the estimate.
    for estimate in estimates:
        assert 0.8 < estimate / N < 1.2
    # Concurrent interrogation: wall-clock slots constant in readers.
    assert max(slots) - min(slots) <= 0.05 * max(slots)
