"""Bench fig6: estimate distributions at equal slot budgets.

PET (simulated + theory) vs FNEB vs LoF at n = 50 000, eps = 5 %,
delta = 1 %: the paper's ">99% within CI vs ~90%" comparison.
"""

from __future__ import annotations

from repro.figures import fig6
from repro.sim.report import ascii_histogram


def test_bench_fig6(once):
    result = once(fig6.run, runs=1_000)
    print()
    fig6.summary_table(result).print()
    print(
        f"theoretical PET within-CI: {result.theory_within:.4f}"
    )
    lo, hi = 0.85 * result.n, 1.15 * result.n
    for panel in (result.pet, result.fneb, result.lof):
        print(f"\n({panel.protocol})")
        print(ascii_histogram(panel.estimates, lo=lo, hi=hi, bins=15))

    assert result.pet.within_fraction >= 0.98
    assert result.fneb.within_fraction < result.pet.within_fraction
    assert result.lof.within_fraction < result.pet.within_fraction
    assert 0.80 < result.fneb.within_fraction < 0.97
    assert 0.80 < result.lof.within_fraction < 0.97
    assert result.theory_within >= 0.99
