"""Bench table4: slots to meet the accuracy target, varying epsilon.

PET vs FNEB vs LoF at delta = 1%, n = 50 000 — with an empirical
within-CI validation column for PET.
"""

from __future__ import annotations

from repro.figures import fig5


def test_bench_table4(once):
    rows = once(fig5.epsilon_sweep, validation_runs=300)
    print()
    fig5.table(
        rows,
        "Table 4 — total slots vs epsilon (delta = 1%, n = 50,000)",
        "epsilon",
    ).print()
    for row in rows:
        # Paper Sec. 5.3: PET needs ~35-43% of FNEB/LoF estimating time.
        assert 0.30 < row.pet_over_fneb < 0.50
        assert 0.35 < row.pet_over_lof < 0.50
        # And the plan actually delivers the promised confidence.
        assert row.pet_within >= 1.0 - row.delta - 0.02
