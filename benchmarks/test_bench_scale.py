"""Bench: scaling to millions of tags — the paper's headline capability.

"providing the capability to support millions of RFID tags" (Sec. 1).
Runs the full (eps = 5 %, delta = 1 %) estimation across six orders of
magnitude of population size: the slot budget is constant, the accuracy
contract holds at every scale.
"""

from __future__ import annotations

import numpy as np

from repro.config import AccuracyRequirement, PetConfig
from repro.core.accuracy import rounds_required
from repro.sim.report import Table
from repro.sim.sampled import SampledSimulator

SIZES = (1_000, 10_000, 100_000, 1_000_000, 10_000_000)
RUNS = 120


def test_bench_scaling(once):
    requirement = AccuracyRequirement(0.05, 0.01)
    rounds = rounds_required(requirement.epsilon, requirement.delta)

    def sweep():
        results = {}
        for n in SIZES:
            simulator = SampledSimulator(
                n,
                config=PetConfig(),
                rng=np.random.default_rng((17, n)),
            )
            estimates = simulator.estimate_batch(rounds, RUNS)
            low, high = requirement.interval(n)
            within = float(
                ((estimates >= low) & (estimates <= high)).mean()
            )
            results[n] = (float(estimates.mean()), within)
        return results

    results = once(sweep)
    print()
    table = Table(
        f"Scaling sweep — full (5%, 1%) estimation, m = {rounds} "
        f"rounds = {rounds * 5:,} slots at EVERY n ({RUNS} runs)",
        ["n", "mean estimate", "within-CI", "slots"],
    )
    for n in SIZES:
        mean, within = results[n]
        table.add_row(n, mean, within, rounds * 5)
    table.print()

    for n in SIZES:
        mean, within = results[n]
        assert 0.99 < mean / n < 1.01, f"n={n}"
        assert within >= 1.0 - requirement.delta - 0.03, f"n={n}"
