"""Bench extensions: the features this repo adds beyond the paper.

Covers the DESIGN.md extension index: sequential estimation, energy
accounting, the measured Sec. 4.6.2 command encodings, the
saturation-corrected estimator, and continuous monitoring.
"""

from __future__ import annotations

from repro.figures import extensions


def test_bench_adaptive_vs_fixed(once):
    table = once(
        extensions.adaptive_vs_fixed, n=20_000, trials=100
    )
    print()
    table.print()
    coverage = float(table.rows[1][3])
    assert coverage >= 0.90  # contract was (10%, 5%)


def test_bench_energy(once):
    table = once(extensions.energy_comparison)
    print()
    table.print()
    by_label = {row[0]: row for row in table.rows}
    passive_uj = float(by_label["PET passive (1-bit)"][1].replace(",", ""))
    active_uj = float(by_label["PET active"][1].replace(",", ""))
    fneb_uj = float(by_label["FNEB"][1].replace(",", ""))
    # Passive PET is the cheapest per-tag design, and hashing dominates
    # the active variant's budget.
    assert passive_uj < active_uj
    assert passive_uj < fneb_uj


def test_bench_feedback_encodings(once):
    table = once(extensions.feedback_overhead)
    print()
    table.print()
    bits_per_slot = {row[0]: float(row[3]) for row in table.rows}
    assert bits_per_slot["feedback"] == 1.0
    assert bits_per_slot["mid"] < bits_per_slot["mask"]


def test_bench_saturation_correction(once):
    table = once(extensions.saturation_correction)
    print()
    table.print()
    # At every height the corrected estimator is at least as accurate.
    for row in table.rows:
        plain_error = float(row[2].rstrip("%"))
        corrected_error = float(row[4].rstrip("%"))
        assert corrected_error <= plain_error + 1.0
    # And it rescues the most saturated configuration.
    assert float(table.rows[0][4].rstrip("%")) < 8.0


def test_bench_monitoring(once):
    table = once(extensions.monitoring_demo)
    print()
    table.print()
    flags = [row[4] for row in table.rows]
    assert flags[6] == "CHANGE"
    assert all(flag == "" for flag in flags[:6])
