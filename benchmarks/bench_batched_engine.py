"""Before/after throughput of the batched experiment engine.

Times one fig-4-sized experiment cell (n = 10 000, 300 repetitions,
paper-default rounds m(eps=5%, delta=1%) = 4697) through the
per-repetition reference loop and through the batched engine, verifies
the results are bit-identical, and records rounds-per-second for both in
``BENCH_batched_engine.json`` at the repo root.

Run with::

    PYTHONPATH=src python benchmarks/bench_batched_engine.py [--loop-reps K]

The loop baseline is timed on ``K`` repetitions (default 50) and scaled
to the full 300 — it is the slow side being replaced; the batched engine
always runs the complete cell.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.config import PAPER_RUNS_PER_POINT, PetConfig
from repro.core.accuracy import rounds_required
from repro.sim.experiment import ExperimentRunner
from repro.sim.workload import WorkloadSpec

CELL_N = 10_000
CELL_SEED = 2011
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batched_engine.json"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--loop-reps",
        type=int,
        default=50,
        help="repetitions to time the reference loop on (scaled to 300)",
    )
    args = parser.parse_args()

    rounds = rounds_required(0.05, 0.01)
    spec = WorkloadSpec(size=CELL_N, seed=0)
    config = PetConfig(passive_tags=True)
    repetitions = PAPER_RUNS_PER_POINT

    runner = ExperimentRunner(base_seed=CELL_SEED, repetitions=repetitions)

    start = time.perf_counter()
    batched = runner.run_vectorized(spec, config, rounds, engine="batched")
    batched_seconds = time.perf_counter() - start

    loop_reps = min(args.loop_reps, repetitions)
    loop_runner = ExperimentRunner(base_seed=CELL_SEED, repetitions=loop_reps)
    start = time.perf_counter()
    loop_sample = loop_runner.run_vectorized(
        spec, config, rounds, engine="loop"
    )
    loop_sample_seconds = time.perf_counter() - start
    loop_seconds = loop_sample_seconds * repetitions / loop_reps

    # The loop sample shares the seed tree's first repetitions, so its
    # estimates must be a bit-identical prefix of the batched cell's.
    if loop_sample.estimates.tolist() != batched.estimates[:loop_reps].tolist():
        raise AssertionError(
            "batched engine diverged from the reference loop"
        )

    total_rounds = repetitions * rounds
    report = {
        "cell": {
            "n": CELL_N,
            "repetitions": repetitions,
            "rounds": rounds,
            "config": "passive_tags=True, binary_search=True, H=32",
            "base_seed": CELL_SEED,
        },
        "before": {
            "engine": "run_vectorized(engine='loop')",
            "seconds": round(loop_seconds, 3),
            "timed_repetitions": loop_reps,
            "rounds_per_second": round(total_rounds / loop_seconds),
        },
        "after": {
            "engine": "run_vectorized(engine='batched')",
            "seconds": round(batched_seconds, 3),
            "timed_repetitions": repetitions,
            "rounds_per_second": round(total_rounds / batched_seconds),
        },
        "speedup": round(loop_seconds / batched_seconds, 1),
        "bit_identical": True,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    main()
