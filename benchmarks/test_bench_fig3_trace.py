"""Bench fig3: the protocol-execution traces (basic vs binary search).

Regenerates Fig. 3 and times the slot-level execution of both variants.
"""

from __future__ import annotations

from repro.figures import fig3_trace


def test_bench_fig3_traces(once):
    comparison = once(fig3_trace.run)
    print()
    print("Fig. 3 (a) basic algorithm:")
    print(comparison.basic_trace.render())
    print("Fig. 3 (b) binary search algorithm:")
    print(comparison.binary_trace.render())
    print(
        f"slots: basic={comparison.basic_slots} (paper: 5), "
        f"binary={comparison.binary_slots} (paper: 2)"
    )
    assert comparison.basic_slots == 5
    assert comparison.binary_slots == 2
