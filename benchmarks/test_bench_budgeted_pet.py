"""Bench: budgeted PET — slot budget vs censoring vs accuracy.

Sweeps the per-round slot budget around ``E[d]`` and shows the
trade-off: tighter budgets censor more rounds yet the censored MLE
keeps the estimate centred, at the cost of a higher per-round variance
(hence the planner's inflation factor).
"""

from __future__ import annotations

import numpy as np

from repro.protocols.pet_budgeted import BudgetedPetProtocol
from repro.sim.report import Table
from repro.tags.population import TagPopulation

N = 50_000
ROUNDS = 1_024
TRIALS = 25
BUDGETS = (13, 14, 16, 18, 20)


def test_bench_budgeted_sweep(once):
    def sweep():
        population = TagPopulation.random(
            N, np.random.default_rng(0)
        )
        rows = []
        for budget in BUDGETS:
            protocol = BudgetedPetProtocol(slot_budget=budget)
            estimates = np.array(
                [
                    protocol.estimate(
                        population,
                        ROUNDS,
                        np.random.default_rng((budget, trial)),
                    ).n_hat
                    for trial in range(TRIALS)
                ]
            )
            rows.append(
                (
                    budget,
                    protocol.censored_fraction(N),
                    float(estimates.mean()),
                    float(np.sqrt(np.mean((estimates - N) ** 2)))
                    / N,
                )
            )
        return rows

    rows = once(sweep)
    print()
    table = Table(
        f"Budgeted PET — censored-MLE decoding, n = {N:,}, "
        f"m = {ROUNDS}, {TRIALS} trials/budget "
        f"(E[d] ~ 15.9)",
        ["slots/round", "censored frac", "mean estimate", "nRMS"],
    )
    for row in rows:
        table.add_row(*row)
    table.print()

    by_budget = {row[0]: row for row in rows}
    # Censoring decreases with the budget.
    fracs = [row[1] for row in rows]
    assert fracs == sorted(fracs, reverse=True)
    # Budgets leaving any real signal (censored fraction < ~0.96) stay
    # essentially unbiased; budget 13 (99.8% censored) is past the
    # breakdown point and is shown as the cautionary row.
    for budget, censored, mean, _ in rows:
        if censored < 0.96:
            assert 0.95 < mean / N < 1.05, f"budget {budget}"
    # A generous budget matches the uncensored deviation
    # (ln2 * sigma_h / sqrt(m) ~ 0.041 at m = 1024).
    assert by_budget[20][3] < 0.07
    # The breakdown row really is a breakdown (documented, not hidden).
    assert by_budget[13][1] > 0.99
    assert by_budget[13][3] > by_budget[20][3]
