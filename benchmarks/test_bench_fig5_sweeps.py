"""Bench fig5: fine-grained epsilon and delta sweeps (planning only)."""

from __future__ import annotations

from repro.figures import fig5


def test_bench_fig5a_epsilon(once):
    rows = once(
        fig5.epsilon_sweep,
        epsilons=fig5.FIG5A_EPSILONS,
        validation_runs=0,
    )
    print()
    fig5.table(
        rows, "Fig. 5a — fine epsilon sweep (delta = 1%)", "epsilon"
    ).print()
    # PET/baseline ratio stays under one half across the whole sweep.
    assert all(row.pet_over_fneb < 0.5 for row in rows)
    assert all(row.pet_over_lof < 0.5 for row in rows)


def test_bench_fig5b_delta(once):
    rows = once(
        fig5.delta_sweep,
        deltas=fig5.FIG5B_DELTAS,
        validation_runs=0,
    )
    print()
    fig5.table(
        rows, "Fig. 5b — fine delta sweep (epsilon = 5%)", "delta"
    ).print()
    assert all(row.pet_over_fneb < 0.5 for row in rows)
    assert all(row.pet_over_lof < 0.5 for row in rows)
