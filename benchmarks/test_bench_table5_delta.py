"""Bench table5: slots to meet the accuracy target, varying delta."""

from __future__ import annotations

from repro.figures import fig5


def test_bench_table5(once):
    rows = once(fig5.delta_sweep, validation_runs=300)
    print()
    fig5.table(
        rows,
        "Table 5 — total slots vs delta (epsilon = 5%, n = 50,000)",
        "delta",
    ).print()
    slots = [row.pet_slots for row in rows]
    assert slots == sorted(slots, reverse=True)
    for row in rows:
        assert row.pet_slots < row.fneb_slots
        assert row.pet_slots < row.lof_slots
        assert row.pet_within >= 1.0 - row.delta - 0.03
