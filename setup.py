"""Shim for environments without PEP 660 editable-install support
(e.g. offline boxes missing the wheel package); pyproject.toml is the
source of truth for all metadata."""

from setuptools import setup

setup()
