"""Compatibility shim: the monitor now lives in :mod:`repro.obs.monitor`.

``repro.monitor`` predates the observability subsystem; the
EWMA change detector is now part of the obs surface (it emits
``monitor.drift`` events through the active registry) and is
re-exported from :mod:`repro.obs`.  This module remains so existing
imports — ``from repro.monitor import CardinalityMonitor`` — keep
working, but emits a :class:`DeprecationWarning` on first import
(once per process, even across ``importlib.reload``); migrate to
:mod:`repro.obs.monitor`.
"""

from __future__ import annotations

from ._deprecation import warn_once

warn_once(
    "repro.monitor",
    "repro.monitor is deprecated; import from repro.obs.monitor "
    "instead",
)

from .obs.monitor import (  # noqa: E402
    CardinalityMonitor,
    EpochReport,
    monitor_population,
    simulate_monitoring,
)

__all__ = [
    "CardinalityMonitor",
    "EpochReport",
    "monitor_population",
    "simulate_monitoring",
]
