"""Tag- and reader-side energy accounting.

The paper's overhead comparison (Sec. 4.6.1) is in computations and
bits; its citation of Zhou et al. (ISLPED) raises the natural follow-up
of *energy* per estimation — decisive for battery-powered active tags
and for reader duty-cycle budgets.  This module converts channel traces
and protocol plans into energy figures using a simple linear model:

* a tag spends ``rx`` energy per received command bit, ``tx`` energy
  per transmitted response, and ``hash`` energy per on-chip hash
  evaluation;
* a reader spends ``tx`` energy per transmitted command bit and carrier
  energy proportional to air time (it must power the field for passive
  tags throughout the slot).

The default constants approximate published Gen2-class figures (order
of magnitude only — the *comparisons* between protocols are the
deliverable, not absolute joules).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import TimingConfig
from ..errors import ConfigurationError
from .events import ChannelTrace


@dataclass(frozen=True)
class EnergyConfig:
    """Linear energy model parameters.

    Attributes
    ----------
    tag_rx_nj_per_bit:
        Tag energy to receive and decode one command bit (nJ).
    tag_tx_nj_per_response:
        Tag energy for one response burst (nJ).
    tag_hash_nj:
        Tag energy for one on-chip hash evaluation (nJ) — the cost the
        passive variant avoids entirely.
    reader_tx_mw:
        Reader transmit power while the carrier is up (mW).
    """

    tag_rx_nj_per_bit: float = 0.5
    tag_tx_nj_per_response: float = 20.0
    tag_hash_nj: float = 150.0
    reader_tx_mw: float = 825.0

    def __post_init__(self) -> None:
        for name in (
            "tag_rx_nj_per_bit",
            "tag_tx_nj_per_response",
            "tag_hash_nj",
            "reader_tx_mw",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")


@dataclass(frozen=True)
class EnergyBudget:
    """Computed energy for one estimation run.

    Attributes
    ----------
    tag_nj:
        Energy one (average) tag spends, in nanojoules.
    reader_mj:
        Energy the reader spends, in millijoules.
    """

    tag_nj: float
    reader_mj: float


class EnergyModel:
    """Computes energy budgets from traces or protocol plans."""

    def __init__(
        self,
        config: EnergyConfig | None = None,
        timing: TimingConfig | None = None,
    ):
        self._config = config or EnergyConfig()
        self._timing = timing or TimingConfig()

    @property
    def config(self) -> EnergyConfig:
        """The energy constants in use."""
        return self._config

    def of_trace(
        self,
        trace: ChannelTrace,
        responses_per_tag: float,
        hashes_per_tag: float,
    ) -> EnergyBudget:
        """Energy for a recorded run.

        Parameters
        ----------
        trace:
            The channel trace (command bits and slot count come from it).
        responses_per_tag:
            Mean responses transmitted per tag (from tag cost counters).
        hashes_per_tag:
            Mean hash evaluations per tag.
        """
        command_bits = trace.total_payload_bits
        tag_nj = (
            command_bits * self._config.tag_rx_nj_per_bit
            + responses_per_tag * self._config.tag_tx_nj_per_response
            + hashes_per_tag * self._config.tag_hash_nj
        )
        air_us = sum(
            self._timing.slot_duration_us(event.payload_bits)
            for event in trace.events
        )
        reader_mj = self._config.reader_tx_mw * air_us * 1e-6
        return EnergyBudget(tag_nj=tag_nj, reader_mj=reader_mj)

    def of_plan(
        self,
        rounds: int,
        slots_per_round: int,
        command_bits_per_slot: int,
        expected_responses_per_tag: float,
        hashes_per_round: float,
    ) -> EnergyBudget:
        """Energy for a *planned* run (no trace needed).

        Used by protocol-comparison benchmarks: given each protocol's
        per-round structure, produce comparable budgets.
        """
        if rounds < 1 or slots_per_round < 1:
            raise ConfigurationError(
                "rounds and slots_per_round must be >= 1"
            )
        total_slots = rounds * slots_per_round
        command_bits = total_slots * command_bits_per_slot
        tag_nj = (
            command_bits * self._config.tag_rx_nj_per_bit
            + expected_responses_per_tag
            * self._config.tag_tx_nj_per_response
            + rounds * hashes_per_round * self._config.tag_hash_nj
        )
        slot_us = self._timing.slot_duration_us(command_bits_per_slot)
        reader_mj = (
            self._config.reader_tx_mw * total_slots * slot_us * 1e-6
        )
        return EnergyBudget(tag_nj=tag_nj, reader_mj=reader_mj)


def pet_tag_energy(
    rounds: int,
    height: int = 32,
    passive: bool = True,
    model: EnergyModel | None = None,
) -> EnergyBudget:
    """Energy budget of one tag under PET for ``rounds`` rounds.

    A tag responds in expectation to roughly half the probes of each
    binary-search round early on; we charge a conservative 2 responses
    per round.  The active variant adds one hash per round.
    """
    model = model or EnergyModel()
    slots_per_round = max(1, (height - 1).bit_length())
    return model.of_plan(
        rounds=rounds,
        slots_per_round=slots_per_round,
        command_bits_per_slot=1,  # the Sec. 4.6.2 feedback encoding
        expected_responses_per_tag=2.0 * rounds,
        hashes_per_round=0.0 if passive else 1.0,
    )
