"""Slot-to-wall-clock conversion.

Estimation papers report cost in slots; deployments care about seconds.
:class:`SlotTimingModel` converts a slot budget (plus per-slot command
payload sizes) into microseconds using the Gen2-flavoured parameters in
:class:`repro.config.TimingConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import TimingConfig
from .events import ChannelTrace


@dataclass(frozen=True)
class TimeBudget:
    """A converted wall-clock budget.

    Attributes
    ----------
    slots:
        Number of slots covered.
    microseconds:
        Total estimated air time.
    """

    slots: int
    microseconds: float

    @property
    def milliseconds(self) -> float:
        """Total air time in milliseconds."""
        return self.microseconds / 1e3

    @property
    def seconds(self) -> float:
        """Total air time in seconds."""
        return self.microseconds / 1e6


class SlotTimingModel:
    """Translates slot counts and traces to wall-clock time."""

    def __init__(self, config: TimingConfig | None = None):
        self._config = config or TimingConfig()

    @property
    def config(self) -> TimingConfig:
        """The timing parameters in use."""
        return self._config

    def uniform(self, slots: int, payload_bits_per_slot: int) -> TimeBudget:
        """Budget for ``slots`` identical slots of given payload size."""
        per_slot = self._config.slot_duration_us(payload_bits_per_slot)
        return TimeBudget(slots=slots, microseconds=slots * per_slot)

    def of_trace(self, trace: ChannelTrace) -> TimeBudget:
        """Budget for a recorded trace, honouring per-slot payload sizes."""
        total = sum(
            self._config.slot_duration_us(event.payload_bits)
            for event in trace.events
        )
        return TimeBudget(slots=trace.total_slots, microseconds=total)
