"""Slot outcome types for the slotted Reader-Talks-First channel."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SlotType(enum.Enum):
    """Classification of a time slot as observed by the reader.

    PET only needs the idle/busy distinction (a collision is as
    informative as a singleton: "the reader detects the existence of
    responsive signal", Sec. 4.1).  Identification protocols additionally
    distinguish singleton from collision.
    """

    IDLE = "idle"
    SINGLETON = "singleton"
    COLLISION = "collision"

    @property
    def busy(self) -> bool:
        """Whether at least one response was detected in the slot."""
        return self is not SlotType.IDLE


@dataclass(frozen=True)
class SlotOutcome:
    """The result of one slot, as delivered to the reader.

    Attributes
    ----------
    slot_type:
        Idle / singleton / collision classification after the channel's
        loss and capture models have been applied.
    responders:
        IDs of the tags whose responses actually reached the reader
        (post-loss).  The reader's protocol logic must *not* consult this
        beyond what ``slot_type`` reveals — it is carried for tracing,
        assertions, and the identification baselines, which may read the
        payload of a decoded singleton.
    transmitted:
        Number of tags that transmitted, before loss.  Trace-only.
    """

    slot_type: SlotType
    responders: tuple[int, ...] = field(default=())
    transmitted: int = 0

    @property
    def busy(self) -> bool:
        """Whether the reader senses energy in this slot."""
        return self.slot_type.busy

    @property
    def decoded_tag(self) -> int | None:
        """Tag ID decodable from the slot, if it is a clean singleton."""
        if self.slot_type is SlotType.SINGLETON and len(self.responders) == 1:
            return self.responders[0]
        return None


def classify(responder_count: int, detect_collisions: bool = True) -> SlotType:
    """Map a surviving-response count to a :class:`SlotType`.

    When ``detect_collisions`` is false the reader cannot separate
    singleton from collision; every busy slot is reported as a collision
    (the conservative reading used by estimation-only protocols).
    """
    if responder_count <= 0:
        return SlotType.IDLE
    if responder_count == 1 and detect_collisions:
        return SlotType.SINGLETON
    return SlotType.COLLISION
