"""The slotted Reader-Talks-First channel.

One :class:`SlottedChannel` binds a set of listeners (tag state machines)
to a link model and a trace.  A slot proceeds in two phases, exactly as
described in Sec. 3:

1. the reader broadcasts a command (this also energizes passive tags);
2. every listener decides whether to respond; the channel aggregates the
   responses through the :class:`~repro.radio.link.LinkModel` into a
   single :class:`~repro.radio.slots.SlotOutcome`.

The channel is deliberately synchronous and single-threaded — RFID MAC
protocols are lock-step, and a discrete-event queue would only obscure
that.  Multi-reader deployments are modelled one channel per reader,
aggregated by :class:`repro.reader.controller.ReaderController`.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from ..config import ChannelConfig
from ..errors import ChannelError
from ..obs.registry import MetricsRegistry, get_registry
from .events import ChannelTrace, SlotEvent
from .link import LinkModel
from .slots import SlotOutcome, SlotType


class ChannelListener(Protocol):
    """Anything that can hear a reader command and maybe respond.

    Implemented by the tag state machines in :mod:`repro.tags`.
    """

    @property
    def tag_id(self) -> int:
        """Unique identifier of the listener."""
        ...

    def hear(self, command: object) -> bool:
        """Process a reader command; return True to respond this slot."""
        ...


class SlottedChannel:
    """A single reader's interrogation channel.

    When a real :class:`~repro.obs.registry.MetricsRegistry` is passed
    (or installed as the active registry), every slot outcome is counted
    under ``radio.slots[.idle|.busy|.singleton|.collision]``; the link
    model adds ``radio.responses.erased`` and ``radio.slots.captured``.
    With the default null registry all of this is a no-op.
    """

    def __init__(
        self,
        config: ChannelConfig | None = None,
        rng: np.random.Generator | None = None,
        trace: ChannelTrace | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self._config = config or ChannelConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        registry = registry if registry is not None else get_registry()
        self._link = LinkModel(self._config, self._rng, registry=registry)
        self._listeners: dict[int, ChannelListener] = {}
        self.trace = trace if trace is not None else ChannelTrace()
        # Bound once: broadcast() is the innermost slot loop.
        self._slot_counters = {
            SlotType.IDLE: registry.counter("radio.slots.idle"),
            SlotType.SINGLETON: registry.counter("radio.slots.singleton"),
            SlotType.COLLISION: registry.counter("radio.slots.collision"),
        }
        self._slots_total = registry.counter("radio.slots")
        self._slots_busy = registry.counter("radio.slots.busy")

    @property
    def config(self) -> ChannelConfig:
        """The channel's physical configuration."""
        return self._config

    @property
    def listeners(self) -> Sequence[ChannelListener]:
        """The currently attached listeners, in attach order."""
        return tuple(self._listeners.values())

    def attach(self, listener: ChannelListener) -> None:
        """Place a tag inside this reader's interrogation region."""
        tag_id = listener.tag_id
        if tag_id in self._listeners:
            raise ChannelError(
                f"tag {tag_id} is already attached to this channel"
            )
        self._listeners[tag_id] = listener

    def detach(self, tag_id: int) -> None:
        """Remove a tag from the interrogation region (tag leave/move)."""
        if tag_id not in self._listeners:
            raise ChannelError(f"tag {tag_id} is not attached to this channel")
        del self._listeners[tag_id]

    def attach_all(self, listeners: Sequence[ChannelListener]) -> None:
        """Attach every listener in ``listeners``."""
        for listener in listeners:
            self.attach(listener)

    def broadcast(
        self,
        command: object,
        label: str = "",
        payload_bits: int = 0,
    ) -> SlotOutcome:
        """Run one full slot: deliver ``command``, collect responses.

        Parameters
        ----------
        command:
            Arbitrary command object handed to every listener's ``hear``.
        label:
            Human-readable command rendering for the trace.
        payload_bits:
            Command payload size for overhead accounting (Sec. 4.6.2).

        Returns
        -------
        SlotOutcome
            The classified outcome after loss/capture.
        """
        responders = tuple(
            listener.tag_id
            for listener in self._listeners.values()
            if listener.hear(command)
        )
        outcome = self._link.deliver(responders)
        self._slots_total.inc()
        self._slot_counters[outcome.slot_type].inc()
        if outcome.busy:
            self._slots_busy.inc()
        self.trace.record(label or repr(command), payload_bits, outcome)
        return outcome

    def last_event(self) -> SlotEvent:
        """Return the most recent slot event (raises if none yet)."""
        if not self.trace.events:
            raise ChannelError("no slots have been exchanged yet")
        return self.trace.events[-1]
