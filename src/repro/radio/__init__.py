"""Slotted MAC / radio substrate.

Models the channel assumptions of Sec. 3: time is divided into slots; in
each slot the reader transmits first (Reader Talks First), energizing the
tags and carrying a command, and tags respond in the second half of the
slot.  The reader classifies each slot as idle, singleton, or collision.

The paper's evaluation assumes a lossless channel with perfect idle/busy
detection; :class:`~repro.radio.link.LinkModel` adds optional per-response
erasure and capture for robustness ablations.
"""

from .channel import SlottedChannel
from .energy import EnergyBudget, EnergyConfig, EnergyModel
from .events import ChannelTrace, SlotEvent
from .link import LinkModel
from .slots import SlotOutcome, SlotType
from .timing import SlotTimingModel

__all__ = [
    "SlottedChannel",
    "SlotEvent",
    "ChannelTrace",
    "LinkModel",
    "SlotOutcome",
    "SlotType",
    "SlotTimingModel",
    "EnergyConfig",
    "EnergyModel",
    "EnergyBudget",
]
