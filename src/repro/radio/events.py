"""Channel event tracing.

A :class:`ChannelTrace` records every slot exchanged over a
:class:`~repro.radio.channel.SlottedChannel`: the reader command, the
slot outcome, and the cumulative cost accounting (slots and command
payload bits).  Traces power the Fig. 3 protocol-execution reproduction
and the command-overhead analysis of Sec. 4.6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .slots import SlotOutcome, SlotType


@dataclass(frozen=True)
class SlotEvent:
    """One fully-resolved time slot.

    Attributes
    ----------
    index:
        Zero-based slot index within the trace.
    command:
        Human-readable rendering of the reader command (e.g. the queried
        prefix ``"00**"`` or an Aloha ``QueryRep``).
    payload_bits:
        Command payload length in bits, excluding fixed framing (used for
        the Sec. 4.6.2 command-overhead comparison).
    outcome:
        The :class:`SlotOutcome` the reader observed.
    """

    index: int
    command: str
    payload_bits: int
    outcome: SlotOutcome


@dataclass
class ChannelTrace:
    """Append-only record of the slots exchanged on a channel."""

    events: list[SlotEvent] = field(default_factory=list)

    def record(
        self, command: str, payload_bits: int, outcome: SlotOutcome
    ) -> SlotEvent:
        """Append one slot event and return it."""
        event = SlotEvent(
            index=len(self.events),
            command=command,
            payload_bits=payload_bits,
            outcome=outcome,
        )
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[SlotEvent]:
        return iter(self.events)

    @property
    def total_slots(self) -> int:
        """Number of slots consumed so far."""
        return len(self.events)

    @property
    def total_payload_bits(self) -> int:
        """Cumulative reader command payload, in bits."""
        return sum(event.payload_bits for event in self.events)

    def count(self, slot_type: SlotType) -> int:
        """Number of recorded slots with the given outcome type."""
        return sum(
            1 for event in self.events if event.outcome.slot_type is slot_type
        )

    def render(self) -> str:
        """Render the trace as an aligned text table (used by Fig. 3)."""
        lines = [f"{'slot':>4}  {'command':<20} {'outcome':<10} responders"]
        for event in self.events:
            responders = ",".join(str(tag) for tag in event.outcome.responders)
            lines.append(
                f"{event.index:>4}  {event.command:<20} "
                f"{event.outcome.slot_type.value:<10} {responders}"
            )
        return "\n".join(lines)
