"""Per-slot link effects: response erasure and capture.

The paper's simulations assume an ideal channel ("no transmission loss
between RFID tags and the reader", Sec. 5.1).  :class:`LinkModel` keeps
that as the default but lets ablation benchmarks inject independent
per-response loss and a capture effect, to check how gracefully the
protocols degrade.
"""

from __future__ import annotations

import numpy as np

from ..config import ChannelConfig
from ..obs.registry import MetricsRegistry, get_registry
from .slots import SlotOutcome, classify


class LinkModel:
    """Applies loss and capture to the set of responses in one slot.

    When given a real metrics registry, counts the link effects it
    injects: ``radio.responses.erased`` (individual responses lost
    before reaching the reader) and ``radio.slots.captured`` (collisions
    decoded as singletons by the capture effect).
    """

    def __init__(
        self,
        config: ChannelConfig,
        rng: np.random.Generator,
        registry: MetricsRegistry | None = None,
    ):
        self._config = config
        self._rng = rng
        registry = registry if registry is not None else get_registry()
        self._erased = registry.counter("radio.responses.erased")
        self._captured = registry.counter("radio.slots.captured")

    @property
    def config(self) -> ChannelConfig:
        """The channel configuration this model applies."""
        return self._config

    def deliver(self, responder_ids: tuple[int, ...]) -> SlotOutcome:
        """Resolve one slot: drop lost responses, apply capture, classify.

        Parameters
        ----------
        responder_ids:
            IDs of all tags that transmitted in the slot.
        """
        transmitted = len(responder_ids)
        survivors = self._apply_loss(responder_ids)
        survivors = self._apply_capture(survivors)
        slot_type = classify(len(survivors), self._config.detect_collisions)
        return SlotOutcome(
            slot_type=slot_type,
            responders=survivors,
            transmitted=transmitted,
        )

    def _apply_loss(self, responder_ids: tuple[int, ...]) -> tuple[int, ...]:
        loss = self._config.loss_probability
        if loss == 0.0 or not responder_ids:
            return responder_ids
        keep = self._rng.random(len(responder_ids)) >= loss
        survivors = tuple(
            tag_id for tag_id, kept in zip(responder_ids, keep) if kept
        )
        self._erased.inc(len(responder_ids) - len(survivors))
        return survivors

    def _apply_capture(self, survivors: tuple[int, ...]) -> tuple[int, ...]:
        capture = self._config.capture_probability
        if capture == 0.0 or len(survivors) < 2:
            return survivors
        if self._rng.random() < capture:
            winner = survivors[self._rng.integers(len(survivors))]
            self._captured.inc()
            return (winner,)
        return survivors
