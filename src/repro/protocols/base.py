"""Common interfaces and result types for the protocol zoo."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..config import AccuracyRequirement
from ..errors import ConfigurationError
from ..tags.population import TagPopulation


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of one full estimation run by any protocol.

    Attributes
    ----------
    protocol:
        Display name of the protocol that produced the estimate.
    n_hat:
        The cardinality estimate.
    rounds:
        Estimation rounds performed.
    total_slots:
        Time slots consumed across all rounds — the paper's estimating-
        time metric.
    per_round_statistics:
        Raw per-round observations (gray depths, first-nonempty indices,
        first-empty buckets ... protocol-specific), kept for diagnostics.
    """

    protocol: str
    n_hat: float
    rounds: int
    total_slots: int
    per_round_statistics: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    def accuracy(self, true_n: int) -> float:
        """The Eq. 22 metric ``n_hat / n``."""
        if true_n < 1:
            raise ConfigurationError(f"true_n must be >= 1, got {true_n}")
        return self.n_hat / true_n


@dataclass(frozen=True)
class IdentificationResult:
    """Outcome of an exact identification (anti-collision) run.

    Attributes
    ----------
    protocol:
        Display name.
    identified:
        IDs the reader resolved; for a correct protocol this is the
        whole population.
    total_slots:
        Slots consumed — grows linearly with ``n``, which is the paper's
        argument for estimating instead of identifying.
    """

    protocol: str
    identified: frozenset[int]
    total_slots: int

    @property
    def count(self) -> int:
        """Exact tag count obtained by identification."""
        return len(self.identified)


class CardinalityEstimatorProtocol(abc.ABC):
    """Interface every estimation protocol in the zoo implements."""

    #: Display name, overridden by subclasses.
    name: str = "abstract"

    @abc.abstractmethod
    def plan_rounds(self, requirement: AccuracyRequirement) -> int:
        """Rounds needed to meet ``requirement`` (protocol-specific)."""

    @abc.abstractmethod
    def slots_per_round(self) -> int:
        """Deterministic (or worst-case) slots per estimation round."""

    @abc.abstractmethod
    def estimate(
        self,
        population: TagPopulation,
        rounds: int,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        """Run ``rounds`` rounds against ``population``."""

    def estimate_with_requirement(
        self,
        population: TagPopulation,
        requirement: AccuracyRequirement,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        """Plan rounds from the requirement, then estimate."""
        rounds = self.plan_rounds(requirement)
        return self.estimate(population, rounds, rng)

    def planned_slots(self, requirement: AccuracyRequirement) -> int:
        """Total slot budget to meet ``requirement`` (Tables 4/5)."""
        return self.plan_rounds(requirement) * self.slots_per_round()
