"""Common interfaces and result types for the protocol zoo."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..config import AccuracyRequirement
from ..errors import ConfigurationError
from ..obs.registry import MetricsRegistry, get_registry
from ..tags.population import TagPopulation


def result_summary(
    protocol: str,
    estimate: float,
    rounds: int,
    total_slots: int,
    seed_provenance: str | None = None,
    true_n: int | None = None,
) -> dict[str, object]:
    """The one result schema every serialization path shares.

    Single runs (:class:`ProtocolResult`), batched comparison cells
    (:class:`~repro.sim.protocol_batched.ProtocolCellResult`), and
    service responses (:class:`~repro.api.EstimateResponse`) all embed
    this shape, so figures, reports, and JSON sinks read one set of
    keys: ``protocol``, ``estimate``, ``true_n``, ``relative_error``
    (signed, ``None`` without ground truth), ``rounds``,
    ``total_slots``, and ``seed_provenance``.
    """
    relative_error: float | None = None
    if true_n is not None and true_n > 0 and estimate == estimate:
        relative_error = (float(estimate) - true_n) / true_n
    return {
        "protocol": protocol,
        "estimate": float(estimate),
        "true_n": int(true_n) if true_n is not None else None,
        "relative_error": relative_error,
        "rounds": int(rounds),
        "total_slots": int(total_slots),
        "seed_provenance": seed_provenance,
    }


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of one full estimation run by any protocol.

    Attributes
    ----------
    protocol:
        Display name of the protocol that produced the estimate.
    n_hat:
        The cardinality estimate.
    rounds:
        Estimation rounds performed.
    total_slots:
        Time slots consumed across all rounds — the paper's estimating-
        time metric.
    per_round_statistics:
        Raw per-round observations (gray depths, first-nonempty indices,
        first-empty buckets ... protocol-specific), kept for diagnostics;
        ``None`` when the protocol records none.
    seed_provenance:
        Where the run's randomness came from (``"seed=7"``, ``"rng"``,
        ...); stamped by the request path, ``None`` for direct
        protocol calls.
    """

    protocol: str
    n_hat: float
    rounds: int
    total_slots: int
    per_round_statistics: np.ndarray | None = field(
        repr=False, default=None
    )
    seed_provenance: str | None = None

    def accuracy(self, true_n: int) -> float:
        """The Eq. 22 metric ``n_hat / n``."""
        if true_n < 1:
            raise ConfigurationError(f"true_n must be >= 1, got {true_n}")
        return self.n_hat / true_n

    def summary(self, true_n: int | None = None) -> dict[str, object]:
        """The common :func:`result_summary` record for this run."""
        return result_summary(
            protocol=self.protocol,
            estimate=self.n_hat,
            rounds=self.rounds,
            total_slots=self.total_slots,
            seed_provenance=self.seed_provenance,
            true_n=true_n,
        )

    def to_dict(
        self,
        include_statistics: bool = False,
        true_n: int | None = None,
    ) -> dict[str, object]:
        """Plain-type view for exporters, reports, and JSON sinks.

        The :func:`result_summary` schema plus an ``observations``
        count; ``include_statistics`` additionally inlines the raw
        per-round observations as floats.
        """
        record = self.summary(true_n=true_n)
        record["observations"] = (
            0
            if self.per_round_statistics is None
            else int(len(self.per_round_statistics))
        )
        if include_statistics and self.per_round_statistics is not None:
            record["per_round_statistics"] = [
                float(value) for value in self.per_round_statistics
            ]
        return record


@dataclass(frozen=True)
class SampledBatch:
    """Estimates from a batch of independent sampled-tier runs.

    Returned by the batched sampled-law entry points
    (``estimate_sampled_batch``): one estimate per run, with runs that
    saturated the estimator's inversion flagged as ``NaN`` instead of
    aborting the whole batch.

    Attributes
    ----------
    protocol:
        Display name of the protocol.
    rounds:
        Estimation rounds per run.
    estimates:
        One ``n_hat`` per run; ``NaN`` where the run saturated.
    slots_per_run:
        Slots one run would consume on air.
    saturated_runs:
        Number of ``NaN``-flagged entries in ``estimates``.
    """

    protocol: str
    rounds: int
    estimates: np.ndarray
    slots_per_run: int
    saturated_runs: int = 0


@dataclass(frozen=True)
class IdentificationResult:
    """Outcome of an exact identification (anti-collision) run.

    Attributes
    ----------
    protocol:
        Display name.
    identified:
        IDs the reader resolved; for a correct protocol this is the
        whole population.
    total_slots:
        Slots consumed — grows linearly with ``n``, which is the paper's
        argument for estimating instead of identifying.
    """

    protocol: str
    identified: frozenset[int]
    total_slots: int

    @property
    def count(self) -> int:
        """Exact tag count obtained by identification."""
        return len(self.identified)


class CardinalityEstimatorProtocol(abc.ABC):
    """Interface every estimation protocol in the zoo implements.

    Protocols are observable: :meth:`instrument` attaches a
    :class:`~repro.obs.registry.MetricsRegistry`, and every concrete
    ``estimate`` implementation funnels its result through
    :meth:`_observe_result`, which records runs, rounds, slots, and the
    per-round statistic distribution under ``protocol.<name>.*``.  The
    default registry is the process-wide active one (the no-op null
    registry unless something installed a real one), so uninstrumented
    use pays nothing.
    """

    #: Display name, overridden by subclasses.
    name: str = "abstract"

    #: What a ``per_round_statistics`` entry *is* — protocols whose
    #: rounds observe PET gray depths declare ``"gray_depth"`` so an
    #: attached :class:`~repro.obs.diag.EstimatorHealth` can fold them
    #: into its streaming estimate; other statistics stay ``"generic"``
    #: and feed only the drift detector (via the final estimate).
    round_statistic_kind: str = "generic"

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry results are recorded against."""
        attached = getattr(self, "_registry", None)
        return attached if attached is not None else get_registry()

    def instrument(
        self, registry: MetricsRegistry
    ) -> "CardinalityEstimatorProtocol":
        """Attach ``registry`` for result recording; returns ``self``."""
        self._registry = registry
        return self

    def _observe_result(self, result: ProtocolResult) -> ProtocolResult:
        """Record ``result`` against the registry and pass it through."""
        registry = self.registry
        prefix = f"protocol.{self.name}"
        registry.counter(f"{prefix}.runs").inc()
        registry.counter(f"{prefix}.rounds").inc(result.rounds)
        registry.counter(f"{prefix}.slots").inc(result.total_slots)
        if result.per_round_statistics is not None:
            registry.histogram(f"{prefix}.round_statistic").observe_many(
                result.per_round_statistics
            )
        health = registry.health
        if health is not None:
            health.observe_protocol_result(
                result, self.round_statistic_kind
            )
        return result

    def _observe_batch(
        self, batch: SampledBatch, statistics: np.ndarray | None
    ) -> SampledBatch:
        """Record a whole batch against the registry; pass it through.

        Feeds the same ``protocol.<name>.*`` counters and
        ``round_statistic`` histogram a loop of single runs would, in
        one call each — so instrumented batch paths stay no-op-free on
        the null registry and bit-identical either way.
        """
        registry = self.registry
        if not registry:
            return batch
        prefix = f"protocol.{self.name}"
        runs = len(batch.estimates)
        registry.counter(f"{prefix}.runs").inc(runs)
        registry.counter(f"{prefix}.rounds").inc(runs * batch.rounds)
        registry.counter(f"{prefix}.slots").inc(
            runs * batch.slots_per_run
        )
        if statistics is not None:
            registry.histogram(f"{prefix}.round_statistic").observe_many(
                statistics
            )
        health = registry.health
        if health is not None:
            finite = batch.estimates[np.isfinite(batch.estimates)]
            if finite.size:
                health.observe_estimates(finite, batch.rounds)
        return batch

    def batched_engine(self) -> "BatchedRoundEngine | None":
        """The protocol's vectorized cell executor, if it has one.

        Protocols whose per-round statistic admits a whole-cell numpy
        program return a :class:`BatchedRoundEngine`;
        :func:`repro.sim.protocol_batched.run_protocol_cell` drives it.
        The default is ``None`` — scalar :meth:`estimate` only.
        """
        return None

    @abc.abstractmethod
    def plan_rounds(self, requirement: AccuracyRequirement) -> int:
        """Rounds needed to meet ``requirement`` (protocol-specific)."""

    @abc.abstractmethod
    def slots_per_round(self) -> int:
        """Deterministic (or worst-case) slots per estimation round."""

    @abc.abstractmethod
    def estimate(
        self,
        population: TagPopulation,
        rounds: int,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        """Run ``rounds`` rounds against ``population``."""

    def estimate_with_requirement(
        self,
        population: TagPopulation,
        requirement: AccuracyRequirement,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        """Plan rounds from the requirement, then estimate."""
        rounds = self.plan_rounds(requirement)
        return self.estimate(population, rounds, rng)

    def planned_slots(self, requirement: AccuracyRequirement) -> int:
        """Total slot budget to meet ``requirement`` (Tables 4/5)."""
        return self.plan_rounds(requirement) * self.slots_per_round()


class BatchedRoundEngine(abc.ABC):
    """Vectorized whole-cell executor for one estimation protocol.

    A batched engine turns a protocol's per-round scalar statistic
    (``first_nonempty``, ``first_empty_bucket``, ``empty_slots`` ...)
    into an array program over a *vector of seeds*, so an experiment
    cell of ``repetitions x rounds`` rounds is a handful of numpy passes
    instead of hundreds of thousands of Python round trips.

    The contract is **bit-identity**: :meth:`round_statistics` must
    equal the scalar statistic evaluated seed by seed, and
    :meth:`reduce` must be the protocol's scalar inversion applied to
    one repetition's statistic row — so batched cell estimates match the
    per-repetition reference loop exactly (``bench_guard --protocols``
    enforces this).

    Engines are stateless views over their protocol; obtain one from
    :meth:`CardinalityEstimatorProtocol.batched_engine` and drive it
    with :func:`repro.sim.protocol_batched.run_protocol_cell`.
    """

    #: Statistic draws consumed per protocol round (EZB averages
    #: ``frames_per_round`` sub-frame statistics per round; every other
    #: protocol draws one).
    draws_per_round: int = 1

    def __init__(self, protocol: CardinalityEstimatorProtocol):
        self.protocol = protocol

    @abc.abstractmethod
    def round_statistics(
        self, seeds: np.ndarray, population: TagPopulation
    ) -> np.ndarray:
        """Per-seed sufficient statistic for a vector of round seeds.

        Returns a ``float64`` array of ``len(seeds)`` entries,
        bit-identical to the protocol's scalar per-round statistic at
        each seed.
        """

    @abc.abstractmethod
    def reduce(self, statistics: np.ndarray) -> float:
        """One repetition's estimate from its statistic row.

        Must raise :class:`~repro.errors.EstimationError` exactly when
        the scalar path would (saturation); the cell driver maps that to
        a flagged ``NaN`` when asked to.
        """

    def work_per_seed(self, population: TagPopulation) -> int:
        """Rough array elements touched per seed; drives caller chunking.

        Engines whose scratch arrays scale with something other than the
        population (frame-occupancy bincounts, for example) override
        this so the driver keeps chunks cache-sized.
        """
        return max(1, population.size)
