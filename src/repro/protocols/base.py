"""Common interfaces and result types for the protocol zoo."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..config import AccuracyRequirement
from ..errors import ConfigurationError
from ..obs.registry import MetricsRegistry, get_registry
from ..tags.population import TagPopulation


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of one full estimation run by any protocol.

    Attributes
    ----------
    protocol:
        Display name of the protocol that produced the estimate.
    n_hat:
        The cardinality estimate.
    rounds:
        Estimation rounds performed.
    total_slots:
        Time slots consumed across all rounds — the paper's estimating-
        time metric.
    per_round_statistics:
        Raw per-round observations (gray depths, first-nonempty indices,
        first-empty buckets ... protocol-specific), kept for diagnostics;
        ``None`` when the protocol records none.
    """

    protocol: str
    n_hat: float
    rounds: int
    total_slots: int
    per_round_statistics: np.ndarray | None = field(
        repr=False, default=None
    )

    def accuracy(self, true_n: int) -> float:
        """The Eq. 22 metric ``n_hat / n``."""
        if true_n < 1:
            raise ConfigurationError(f"true_n must be >= 1, got {true_n}")
        return self.n_hat / true_n

    def to_dict(
        self, include_statistics: bool = False
    ) -> dict[str, object]:
        """Plain-type view for exporters, reports, and JSON sinks.

        ``per_round_statistics`` is summarised (count only) unless
        ``include_statistics`` is set, in which case the raw
        observations are included as a list of floats.
        """
        record: dict[str, object] = {
            "protocol": self.protocol,
            "n_hat": float(self.n_hat),
            "rounds": int(self.rounds),
            "total_slots": int(self.total_slots),
            "observations": (
                0
                if self.per_round_statistics is None
                else int(len(self.per_round_statistics))
            ),
        }
        if include_statistics and self.per_round_statistics is not None:
            record["per_round_statistics"] = [
                float(value) for value in self.per_round_statistics
            ]
        return record


@dataclass(frozen=True)
class IdentificationResult:
    """Outcome of an exact identification (anti-collision) run.

    Attributes
    ----------
    protocol:
        Display name.
    identified:
        IDs the reader resolved; for a correct protocol this is the
        whole population.
    total_slots:
        Slots consumed — grows linearly with ``n``, which is the paper's
        argument for estimating instead of identifying.
    """

    protocol: str
    identified: frozenset[int]
    total_slots: int

    @property
    def count(self) -> int:
        """Exact tag count obtained by identification."""
        return len(self.identified)


class CardinalityEstimatorProtocol(abc.ABC):
    """Interface every estimation protocol in the zoo implements.

    Protocols are observable: :meth:`instrument` attaches a
    :class:`~repro.obs.registry.MetricsRegistry`, and every concrete
    ``estimate`` implementation funnels its result through
    :meth:`_observe_result`, which records runs, rounds, slots, and the
    per-round statistic distribution under ``protocol.<name>.*``.  The
    default registry is the process-wide active one (the no-op null
    registry unless something installed a real one), so uninstrumented
    use pays nothing.
    """

    #: Display name, overridden by subclasses.
    name: str = "abstract"

    #: What a ``per_round_statistics`` entry *is* — protocols whose
    #: rounds observe PET gray depths declare ``"gray_depth"`` so an
    #: attached :class:`~repro.obs.diag.EstimatorHealth` can fold them
    #: into its streaming estimate; other statistics stay ``"generic"``
    #: and feed only the drift detector (via the final estimate).
    round_statistic_kind: str = "generic"

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry results are recorded against."""
        attached = getattr(self, "_registry", None)
        return attached if attached is not None else get_registry()

    def instrument(
        self, registry: MetricsRegistry
    ) -> "CardinalityEstimatorProtocol":
        """Attach ``registry`` for result recording; returns ``self``."""
        self._registry = registry
        return self

    def _observe_result(self, result: ProtocolResult) -> ProtocolResult:
        """Record ``result`` against the registry and pass it through."""
        registry = self.registry
        prefix = f"protocol.{self.name}"
        registry.counter(f"{prefix}.runs").inc()
        registry.counter(f"{prefix}.rounds").inc(result.rounds)
        registry.counter(f"{prefix}.slots").inc(result.total_slots)
        if result.per_round_statistics is not None:
            registry.histogram(f"{prefix}.round_statistic").observe_many(
                result.per_round_statistics
            )
        health = registry.health
        if health is not None:
            health.observe_protocol_result(
                result, self.round_statistic_kind
            )
        return result

    @abc.abstractmethod
    def plan_rounds(self, requirement: AccuracyRequirement) -> int:
        """Rounds needed to meet ``requirement`` (protocol-specific)."""

    @abc.abstractmethod
    def slots_per_round(self) -> int:
        """Deterministic (or worst-case) slots per estimation round."""

    @abc.abstractmethod
    def estimate(
        self,
        population: TagPopulation,
        rounds: int,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        """Run ``rounds`` rounds against ``population``."""

    def estimate_with_requirement(
        self,
        population: TagPopulation,
        requirement: AccuracyRequirement,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        """Plan rounds from the requirement, then estimate."""
        rounds = self.plan_rounds(requirement)
        return self.estimate(population, rounds, rng)

    def planned_slots(self, requirement: AccuracyRequirement) -> int:
        """Total slot budget to meet ``requirement`` (Tables 4/5)."""
        return self.plan_rounds(requirement) * self.slots_per_round()
