"""Binary tree-splitting identification (Capetanakis-style tree walking).

The second classical anti-collision family the paper's related work
covers: on a collision, split the responding set by the next ID bit and
recurse.  Every tag is eventually isolated in a singleton slot, so the
reader obtains the exact count at ``O(n)`` slot cost — the contrast
motivating estimation.

The implementation recurses over *sorted* ID ranges rather than
simulating every tag per slot, so the slot accounting is exact while the
work per slot is ``O(log n)``.  Tags are addressed by ID prefixes, just
like PET addresses code prefixes — the structural similarity the paper
exploits (PET repurposes tree-walking to find one boundary instead of
all leaves).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..tags.population import TagPopulation
from .base import IdentificationResult


class TreeWalkIdentification:
    """Deterministic binary tree walking over the tag-ID space.

    Parameters
    ----------
    id_bits:
        Width of the ID space being walked (tags are 64-bit here).
    """

    name = "TreeWalk"

    def __init__(self, id_bits: int = 64):
        if not 1 <= id_bits <= 64:
            raise ConfigurationError(
                f"id_bits must lie in [1, 64], got {id_bits}"
            )
        self.id_bits = id_bits

    def identify(self, population: TagPopulation) -> IdentificationResult:
        """Walk the ID tree; returns every tag and the exact slot cost."""
        ids = np.sort(np.asarray(population.tag_ids, dtype=np.uint64))
        if ids.size and int(ids[-1]) >= (1 << self.id_bits):
            raise ConfigurationError(
                f"population has IDs wider than id_bits={self.id_bits}"
            )
        total_slots = 0
        identified: list[int] = []
        # Stack of (lo, hi, depth): tags ids[lo:hi] share a depth-bit
        # prefix; querying that prefix costs one slot.
        stack: list[tuple[int, int, int]] = [(0, ids.size, 0)]
        while stack:
            lo, hi, depth = stack.pop()
            total_slots += 1
            count = hi - lo
            if count == 0:
                continue  # idle slot
            if count == 1:
                identified.append(int(ids[lo]))  # singleton: decoded
                continue
            # Collision: split on the next ID bit.  All IDs in [lo, hi)
            # share the top `depth` bits; find where bit (depth+1 from
            # the top) flips from 0 to 1 via binary search on the sorted
            # array.
            if depth >= self.id_bits:
                raise ConfigurationError(
                    "duplicate tag IDs cannot be separated by tree walking"
                )
            shift = self.id_bits - depth - 1
            # First ID whose (depth+1)-bit prefix has its low bit set.
            prefix_hi = (int(ids[lo]) >> (shift + 1) << 1) | 1
            boundary = int(
                np.searchsorted(
                    ids[lo:hi],
                    np.uint64(prefix_hi << shift),
                    side="left",
                )
            )
            # Query 1-branch first, then 0-branch (order irrelevant).
            stack.append((lo, lo + boundary, depth + 1))
            stack.append((lo + boundary, hi, depth + 1))
        return IdentificationResult(
            protocol=self.name,
            identified=frozenset(identified),
            total_slots=total_slots,
        )

    def count(self, population: TagPopulation) -> tuple[int, int]:
        """Exact count via identification; returns ``(count, slots)``."""
        result = self.identify(population)
        return result.count, result.total_slots
