"""Framed slotted-Aloha identification with Q-adaptation.

The exact-counting baseline the paper's introduction argues *against*
for large populations: identify every tag, then count.  This is the
EPC-Gen2-style flavour — the reader opens a frame of ``2^Q`` slots, each
unidentified tag picks a uniform slot, singleton slots resolve one tag
each, and ``Q`` adapts toward the (load ~ 1) throughput optimum from the
observed idle/collision mix.

The simulation is slot-exact in cost accounting but vectorized in
execution: a frame's slot choices are drawn in one batch, singletons
are resolved set-wise, and the per-frame slot count (plus one Query
command slot) is charged.  Expected total cost is ``~ e * n`` slots —
linear in ``n``, the scaling PET escapes.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import AccuracyRequirement
from ..core.accuracy import confidence_scale
from ..errors import ConfigurationError
from ..hashing import uniform_slot_matrix, uniform_slots
from ..tags.population import TagPopulation
from .base import (
    BatchedRoundEngine,
    CardinalityEstimatorProtocol,
    IdentificationResult,
    ProtocolResult,
)


#: Schoute's backlog estimate: each collision slot hides ~2.39 tags on
#: average at the throughput-optimal operating point.
SCHOUTE_FACTOR = 2.39


class FramedAlohaIdentification:
    """Framed slotted Aloha with Schoute backlog-driven frame sizing.

    After each frame the reader estimates the remaining backlog from
    the observed collision count (Schoute 1983: ``~2.39`` tags per
    collision slot) and sizes the next frame to match — the classic
    dynamic-frame Aloha policy underlying Gen2's Q adaptation, without
    Q's per-slot oscillation.  Total cost converges to ``~e * n`` slots.

    Parameters
    ----------
    initial_q:
        Starting frame exponent (frame size ``2^Q``).
    min_q, max_q:
        Clamp range for the frame exponent.
    max_frames:
        Safety valve against non-termination.
    """

    name = "Aloha-Q"

    def __init__(
        self,
        initial_q: int = 4,
        min_q: int = 0,
        max_q: int = 15,
        max_frames: int = 100_000,
    ):
        if not 0 <= min_q <= initial_q <= max_q <= 30:
            raise ConfigurationError(
                "need 0 <= min_q <= initial_q <= max_q <= 30"
            )
        self.initial_q = initial_q
        self.min_q = min_q
        self.max_q = max_q
        self.max_frames = max_frames

    def identify(
        self, population: TagPopulation, rng: np.random.Generator
    ) -> IdentificationResult:
        """Run frames until every tag is identified."""
        remaining = np.array(population.tag_ids, dtype=np.uint64)
        identified: list[int] = []
        total_slots = 0
        q = self.initial_q
        frames = 0
        while remaining.size > 0:
            frames += 1
            if frames > self.max_frames:
                raise ConfigurationError(
                    f"identification did not converge within "
                    f"{self.max_frames} frames"
                )
            frame_size = 1 << q
            total_slots += 1 + frame_size  # Query command + the frame
            choices = rng.integers(0, frame_size, size=remaining.size)
            _, inverse, counts = np.unique(
                choices, return_inverse=True, return_counts=True
            )
            is_singleton = counts[inverse] == 1
            identified.extend(int(t) for t in remaining[is_singleton])
            remaining = remaining[~is_singleton]

            collisions = int((counts >= 2).sum())
            backlog = max(SCHOUTE_FACTOR * collisions, 1.0)
            q = int(np.clip(round(np.log2(backlog)), self.min_q,
                            self.max_q))
        return IdentificationResult(
            protocol=self.name,
            identified=frozenset(identified),
            total_slots=total_slots,
        )

    def count(
        self, population: TagPopulation, rng: np.random.Generator
    ) -> tuple[int, int]:
        """Exact count via identification; returns ``(count, slots)``."""
        result = self.identify(population, rng)
        return result.count, result.total_slots


class AlohaEstimatorProtocol(CardinalityEstimatorProtocol):
    """Single-frame Schoute estimator: ``n_hat = S + 2.39 C`` per round.

    The estimation-flavoured cousin of :class:`FramedAlohaIdentification`
    (and Gen2's Q loop): open one fixed frame per round, count singleton
    slots ``S`` (one tag each) and collision slots ``C`` (~2.39 hidden
    tags each at the throughput-optimal load), and read the backlog
    estimate straight off.  At design load ``t = n/f = 1`` the statistic
    is essentially unbiased (``E[S + 2.39 C]/n = 0.9995``); the round
    planner prices its deviation from the multinomial slot-category
    covariances at that load.
    """

    name = "ALOHA"

    def __init__(self, frame_size: int = 1024):
        if frame_size < 1:
            raise ConfigurationError(
                f"frame_size must be >= 1, got {frame_size}"
            )
        self.frame_size = frame_size

    def slots_per_round(self) -> int:
        """One frame per round."""
        return self.frame_size

    def plan_rounds(self, requirement: AccuracyRequirement) -> int:
        """CLT planner on ``S + 2.39 C`` at design load ``t = 1``.

        Slot categories are multinomial-ish; with per-slot category
        probabilities ``p0 = e^-t`` (idle), ``p1 = t e^-t`` (singleton),
        ``p2 = 1 - p0 - p1`` (collision), the round statistic's variance
        is ``f (p1(1-p1) + 2.39^2 p2(1-p2) - 2*2.39 p1 p2)`` and its
        mean is ``~ f t``.
        """
        c = confidence_scale(requirement.delta)
        t = 1.0
        p0 = math.exp(-t)
        p1 = t * math.exp(-t)
        p2 = 1.0 - p0 - p1
        variance = self.frame_size * (
            p1 * (1.0 - p1)
            + SCHOUTE_FACTOR**2 * p2 * (1.0 - p2)
            - 2.0 * SCHOUTE_FACTOR * p1 * p2
        )
        relative_sigma = math.sqrt(variance) / (self.frame_size * t)
        rounds = (c * relative_sigma / requirement.epsilon) ** 2
        return max(1, math.ceil(rounds))

    def round_statistic(
        self, seed: int, population: TagPopulation
    ) -> float:
        """One frame's backlog reading ``S + 2.39 C``."""
        if population.size == 0:
            return 0.0
        slots = uniform_slots(
            seed, population.tag_ids, self.frame_size, population.family
        )
        counts = np.bincount(slots, minlength=self.frame_size)
        singletons = int((counts == 1).sum())
        collisions = int((counts >= 2).sum())
        return singletons + SCHOUTE_FACTOR * collisions

    def estimate_from_mean(self, mean_statistic: float) -> float:
        """The Schoute statistic estimates ``n`` directly."""
        return float(mean_statistic)

    def estimate(
        self,
        population: TagPopulation,
        rounds: int,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        statistics = np.empty(rounds)
        for round_index in range(rounds):
            seed = int(rng.integers(0, 2**63))
            statistics[round_index] = self.round_statistic(
                seed, population
            )
        n_hat = self.estimate_from_mean(float(statistics.mean()))
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=rounds * self.slots_per_round(),
                per_round_statistics=statistics,
            )
        )

    def estimate_sampled(
        self, n: int, rounds: int, rng: np.random.Generator
    ) -> ProtocolResult:
        """Law-exact Schoute sampling from the true size ``n``.

        The serve tier's degraded rung: draw each frame's slot counts
        as one ``Multinomial(n, uniform)`` throw instead of hashing
        every tag, then read ``S + 2.39 C`` off the categories.  Same
        statistic distribution as :meth:`estimate` at ``O(f)`` per
        round independent of ``n``, but different randomness
        consumption — results are not bit-identical.
        """
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        if n < 0:
            raise ConfigurationError(f"population size must be >= 0, got {n}")
        pvals = np.full(self.frame_size, 1.0 / self.frame_size)
        counts = rng.multinomial(int(n), pvals, size=rounds)
        singletons = (counts == 1).sum(axis=1)
        collisions = (counts >= 2).sum(axis=1)
        statistics = (
            singletons + SCHOUTE_FACTOR * collisions
        ).astype(np.float64)
        n_hat = self.estimate_from_mean(float(statistics.mean()))
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=rounds * self.slots_per_round(),
                per_round_statistics=statistics,
            )
        )

    def batched_engine(self) -> "AlohaBatchedEngine":
        """ALOHA's vectorized cell executor (slot-category counts)."""
        return AlohaBatchedEngine(self)


class AlohaBatchedEngine(BatchedRoundEngine):
    """Whole-cell Schoute statistic via one offset bincount per chunk."""

    protocol: AlohaEstimatorProtocol

    def round_statistics(
        self, seeds: np.ndarray, population: TagPopulation
    ) -> np.ndarray:
        frame_size = self.protocol.frame_size
        if population.size == 0:
            return np.zeros(len(seeds))
        slots = uniform_slot_matrix(
            seeds, population.tag_ids, frame_size, population.family
        )
        rows = len(seeds)
        offsets = np.arange(rows, dtype=np.int64)[:, None] * frame_size
        counts = np.bincount(
            (slots + offsets).ravel(), minlength=rows * frame_size
        ).reshape(rows, frame_size)
        singletons = (counts == 1).sum(axis=1)
        collisions = (counts >= 2).sum(axis=1)
        return singletons + SCHOUTE_FACTOR * collisions

    def reduce(self, statistics: np.ndarray) -> float:
        return self.protocol.estimate_from_mean(float(statistics.mean()))

    def work_per_seed(self, population: TagPopulation) -> int:
        return max(1, population.size + self.protocol.frame_size)
