"""Framed slotted-Aloha identification with Q-adaptation.

The exact-counting baseline the paper's introduction argues *against*
for large populations: identify every tag, then count.  This is the
EPC-Gen2-style flavour — the reader opens a frame of ``2^Q`` slots, each
unidentified tag picks a uniform slot, singleton slots resolve one tag
each, and ``Q`` adapts toward the (load ~ 1) throughput optimum from the
observed idle/collision mix.

The simulation is slot-exact in cost accounting but vectorized in
execution: a frame's slot choices are drawn in one batch, singletons
are resolved set-wise, and the per-frame slot count (plus one Query
command slot) is charged.  Expected total cost is ``~ e * n`` slots —
linear in ``n``, the scaling PET escapes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..tags.population import TagPopulation
from .base import IdentificationResult


#: Schoute's backlog estimate: each collision slot hides ~2.39 tags on
#: average at the throughput-optimal operating point.
SCHOUTE_FACTOR = 2.39


class FramedAlohaIdentification:
    """Framed slotted Aloha with Schoute backlog-driven frame sizing.

    After each frame the reader estimates the remaining backlog from
    the observed collision count (Schoute 1983: ``~2.39`` tags per
    collision slot) and sizes the next frame to match — the classic
    dynamic-frame Aloha policy underlying Gen2's Q adaptation, without
    Q's per-slot oscillation.  Total cost converges to ``~e * n`` slots.

    Parameters
    ----------
    initial_q:
        Starting frame exponent (frame size ``2^Q``).
    min_q, max_q:
        Clamp range for the frame exponent.
    max_frames:
        Safety valve against non-termination.
    """

    name = "Aloha-Q"

    def __init__(
        self,
        initial_q: int = 4,
        min_q: int = 0,
        max_q: int = 15,
        max_frames: int = 100_000,
    ):
        if not 0 <= min_q <= initial_q <= max_q <= 30:
            raise ConfigurationError(
                "need 0 <= min_q <= initial_q <= max_q <= 30"
            )
        self.initial_q = initial_q
        self.min_q = min_q
        self.max_q = max_q
        self.max_frames = max_frames

    def identify(
        self, population: TagPopulation, rng: np.random.Generator
    ) -> IdentificationResult:
        """Run frames until every tag is identified."""
        remaining = np.array(population.tag_ids, dtype=np.uint64)
        identified: list[int] = []
        total_slots = 0
        q = self.initial_q
        frames = 0
        while remaining.size > 0:
            frames += 1
            if frames > self.max_frames:
                raise ConfigurationError(
                    f"identification did not converge within "
                    f"{self.max_frames} frames"
                )
            frame_size = 1 << q
            total_slots += 1 + frame_size  # Query command + the frame
            choices = rng.integers(0, frame_size, size=remaining.size)
            slots, counts = np.unique(choices, return_counts=True)
            singleton_slots = set(slots[counts == 1].tolist())
            is_singleton = np.array(
                [choice in singleton_slots for choice in choices]
            )
            identified.extend(int(t) for t in remaining[is_singleton])
            remaining = remaining[~is_singleton]

            collisions = int((counts >= 2).sum())
            backlog = max(SCHOUTE_FACTOR * collisions, 1.0)
            q = int(np.clip(round(np.log2(backlog)), self.min_q,
                            self.max_q))
        return IdentificationResult(
            protocol=self.name,
            identified=frozenset(identified),
            total_slots=total_slots,
        )

    def count(
        self, population: TagPopulation, rng: np.random.Generator
    ) -> tuple[int, int]:
        """Exact count via identification; returns ``(count, slots)``."""
        result = self.identify(population, rng)
        return result.count, result.total_slots
