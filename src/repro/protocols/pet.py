"""PET as a zoo protocol: the paper's contribution behind the common API.

Wraps the core estimator and a simulator tier into the
:class:`~repro.protocols.base.CardinalityEstimatorProtocol` interface so
benchmarks can compare PET against the baselines uniformly.

Variants (all selectable through :class:`repro.config.PetConfig`):

* ``binary_search=True`` (default) — Algorithm 3, ``ceil(log2 H)``
  slots/round: the O(log log n) protocol.
* ``binary_search=False`` — Algorithm 1, linear prefix scan: the
  O(log n) basic protocol.
* ``passive_tags=True`` — Sec. 4.5 preloaded-code operation.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import AccuracyRequirement, PetConfig
from ..core.accuracy import PHI, rounds_required
from ..sim.sampled import SampledSimulator
from ..sim.vectorized import VectorizedSimulator
from ..tags.population import TagPopulation
from .base import CardinalityEstimatorProtocol, ProtocolResult


class PetProtocol(CardinalityEstimatorProtocol):
    """The Probabilistic Estimating Tree protocol.

    Parameters
    ----------
    config:
        PET parameters (tree height, search strategy, tag variant).
    tier:
        Simulation tier for :meth:`estimate`: ``"vectorized"`` (default,
        exact w.r.t. actual tag codes) or ``"sampled"`` (fast, active
        variant only).
    """

    name = "PET"
    round_statistic_kind = "gray_depth"

    def __init__(
        self,
        config: PetConfig | None = None,
        tier: str = "vectorized",
    ):
        self.config = config or PetConfig()
        if tier not in ("vectorized", "sampled"):
            raise ValueError(
                f"tier must be 'vectorized' or 'sampled', got {tier!r}"
            )
        self.tier = tier

    def plan_rounds(self, requirement: AccuracyRequirement) -> int:
        """Eq. 20: constant in ``n``."""
        return rounds_required(requirement.epsilon, requirement.delta)

    def slots_per_round(self) -> int:
        """5 for binary search at H=32; H worst-case for linear scan."""
        if self.config.binary_search:
            return max(1, (self.config.tree_height - 1).bit_length())
        return self.config.tree_height

    def expected_slots_per_round(self, n: int) -> float:
        """Expected slots/round: constant for binary search,
        ``~ log2(phi n) + 1`` for the linear scan (Algorithm 1)."""
        if self.config.binary_search:
            return float(self.slots_per_round())
        return min(
            float(self.config.tree_height), math.log2(PHI * max(n, 1)) + 1.0
        )

    def estimate(
        self,
        population: TagPopulation,
        rounds: int,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        config = self.config.with_rounds(rounds)
        if self.tier == "sampled" and not config.passive_tags:
            simulator = SampledSimulator(
                population.size, config=config, rng=rng
            )
            result = simulator.estimate()
        else:
            vec = VectorizedSimulator(population, config=config, rng=rng)
            result = vec.estimate()
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=result.n_hat,
                rounds=result.num_rounds,
                total_slots=result.total_slots,
                per_round_statistics=result.depths,
            )
        )
