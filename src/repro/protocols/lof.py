"""LoF — Lottery-Frame estimation (Qian et al., PerCom 2008).

Each round the reader broadcasts a seed and opens a frame of ``B``
slots; every tag hashes itself to slot ``j`` with geometric probability
``2^-(j+1)`` (a "lottery": half the tags in slot 0, a quarter in slot 1,
...) and responds there.  The reader reads the whole frame — ``B`` slots
on air — and records the index ``R`` of the first *empty* slot, the
Flajolet-Martin statistic.  With

    E[R] ~ log2(kappa * n),   kappa = 0.77351...

(the FM bias constant), averaging ``R`` over ``m`` rounds and inverting
gives ``n_hat = 2^(R_bar) / kappa``.

Cost: ``B`` slots per round (the frame must be swept even after the
first empty slot, since later slots are needed in other rounds of the
original protocol's bitmap; we charge the full frame as the paper's
comparison does).  The per-round deviation ``sigma(R) ~ 1.12`` is
computed exactly from the (independent-bucket) PMF by the planner.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.theory import lof_round_moments
from ..config import AccuracyRequirement
from ..core.accuracy import confidence_scale
from ..errors import ConfigurationError, EstimationError
from ..hashing import geometric_buckets
from ..tags.population import TagPopulation
from .base import CardinalityEstimatorProtocol, ProtocolResult

#: Flajolet-Martin bias constant: E[R] ~ log2(KAPPA * n).
KAPPA = 0.77351

#: Default frame length: 32 geometric slots cover ~2^32 tags.
DEFAULT_FRAME_SLOTS = 32

#: Design cardinality at which the planner evaluates sigma(R); the
#: deviation is asymptotically flat in n (the FM periodic term only
#: wiggles it by ~1e-5).
_PLANNING_N = 50_000


class LofProtocol(CardinalityEstimatorProtocol):
    """Geometric (lottery) frame estimator with the FM statistic."""

    name = "LoF"

    def __init__(self, frame_slots: int = DEFAULT_FRAME_SLOTS):
        if frame_slots < 2:
            raise ConfigurationError(
                f"frame_slots must be >= 2, got {frame_slots}"
            )
        self.frame_slots = frame_slots

    def slots_per_round(self) -> int:
        """The full frame is swept each round."""
        return self.frame_slots

    def plan_rounds(self, requirement: AccuracyRequirement) -> int:
        """Same CLT argument as PET's Eq. 20, with sigma(R) for sigma."""
        c = confidence_scale(requirement.delta)
        sigma = lof_round_moments(_PLANNING_N, self.frame_slots).std
        lower = (-c * sigma / math.log2(1.0 - requirement.epsilon)) ** 2
        upper = (c * sigma / math.log2(1.0 + requirement.epsilon)) ** 2
        return max(1, math.ceil(max(lower, upper)))

    def first_empty_bucket(
        self, seed: int, population: TagPopulation
    ) -> int:
        """The round statistic ``R``: index of the first empty slot."""
        if population.size == 0:
            return 0
        buckets = geometric_buckets(
            seed,
            population.tag_ids,
            self.frame_slots - 1,
            population.family,
        )
        occupancy = np.bincount(buckets, minlength=self.frame_slots) > 0
        empty = np.flatnonzero(~occupancy)
        if empty.size == 0:
            return self.frame_slots
        return int(empty[0])

    def estimate_from_mean(self, mean_r: float) -> float:
        """Invert ``E[R] = log2(kappa n)`` at the observed mean."""
        if mean_r <= 0.0:
            raise EstimationError(
                "mean first-empty index is 0: population appears empty"
            )
        return 2.0**mean_r / KAPPA

    def estimate(
        self,
        population: TagPopulation,
        rounds: int,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        statistics = np.empty(rounds)
        for round_index in range(rounds):
            seed = int(rng.integers(0, 2**63))
            statistics[round_index] = self.first_empty_bucket(
                seed, population
            )
        n_hat = self.estimate_from_mean(float(statistics.mean()))
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=rounds * self.slots_per_round(),
                per_round_statistics=statistics,
            )
        )

    def estimate_sampled(
        self, n: int, rounds: int, rng: np.random.Generator
    ) -> ProtocolResult:
        """Fast path: multinomial bucket occupancy instead of hashing.

        Draws each round's per-bucket tag counts from the exact
        multinomial law of the geometric hash, then reads off the first
        empty bucket — identical in distribution to hashing ``n`` real
        tags.
        """
        if n < 1:
            raise EstimationError(f"sampled LoF requires n >= 1, got {n}")
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        from ..hashing.geometric import geometric_pmf

        pmf = geometric_pmf(self.frame_slots - 1)
        counts = rng.multinomial(n, pmf, size=rounds)
        statistics = np.empty(rounds)
        for index in range(rounds):
            empty = np.flatnonzero(counts[index] == 0)
            statistics[index] = (
                float(empty[0]) if empty.size else float(self.frame_slots)
            )
        n_hat = self.estimate_from_mean(float(statistics.mean()))
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=rounds * self.slots_per_round(),
                per_round_statistics=statistics,
            )
        )
