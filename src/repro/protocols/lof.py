"""LoF — Lottery-Frame estimation (Qian et al., PerCom 2008).

Each round the reader broadcasts a seed and opens a frame of ``B``
slots; every tag hashes itself to slot ``j`` with geometric probability
``2^-(j+1)`` (a "lottery": half the tags in slot 0, a quarter in slot 1,
...) and responds there.  The reader reads the whole frame — ``B`` slots
on air — and records the index ``R`` of the first *empty* slot, the
Flajolet-Martin statistic.  With

    E[R] ~ log2(kappa * n),   kappa = 0.77351...

(the FM bias constant), averaging ``R`` over ``m`` rounds and inverting
gives ``n_hat = 2^(R_bar) / kappa``.

Cost: ``B`` slots per round (the frame must be swept even after the
first empty slot, since later slots are needed in other rounds of the
original protocol's bitmap; we charge the full frame as the paper's
comparison does).  The per-round deviation ``sigma(R) ~ 1.12`` is
computed exactly from the (independent-bucket) PMF by the planner.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.theory import lof_round_moments
from ..config import AccuracyRequirement
from ..core.accuracy import confidence_scale
from ..errors import ConfigurationError, EstimationError
from ..hashing import geometric_bucket_matrix, geometric_buckets
from ..hashing.geometric import geometric_pmf
from ..tags.population import TagPopulation
from .base import (
    BatchedRoundEngine,
    CardinalityEstimatorProtocol,
    ProtocolResult,
    SampledBatch,
)

#: Flajolet-Martin bias constant: E[R] ~ log2(KAPPA * n).
KAPPA = 0.77351

#: Default frame length: 32 geometric slots cover ~2^32 tags.
DEFAULT_FRAME_SLOTS = 32

#: Design cardinality at which the planner evaluates sigma(R); the
#: deviation is asymptotically flat in n (the FM periodic term only
#: wiggles it by ~1e-5).
_PLANNING_N = 50_000


class LofProtocol(CardinalityEstimatorProtocol):
    """Geometric (lottery) frame estimator with the FM statistic."""

    name = "LoF"

    def __init__(self, frame_slots: int = DEFAULT_FRAME_SLOTS):
        if frame_slots < 2:
            raise ConfigurationError(
                f"frame_slots must be >= 2, got {frame_slots}"
            )
        self.frame_slots = frame_slots

    def slots_per_round(self) -> int:
        """The full frame is swept each round."""
        return self.frame_slots

    def plan_rounds(self, requirement: AccuracyRequirement) -> int:
        """Same CLT argument as PET's Eq. 20, with sigma(R) for sigma."""
        c = confidence_scale(requirement.delta)
        sigma = lof_round_moments(_PLANNING_N, self.frame_slots).std
        lower = (-c * sigma / math.log2(1.0 - requirement.epsilon)) ** 2
        upper = (c * sigma / math.log2(1.0 + requirement.epsilon)) ** 2
        return max(1, math.ceil(max(lower, upper)))

    def first_empty_bucket(
        self, seed: int, population: TagPopulation
    ) -> int:
        """The round statistic ``R``: index of the first empty slot."""
        if population.size == 0:
            return 0
        buckets = geometric_buckets(
            seed,
            population.tag_ids,
            self.frame_slots - 1,
            population.family,
        )
        occupancy = np.bincount(buckets, minlength=self.frame_slots) > 0
        empty = np.flatnonzero(~occupancy)
        if empty.size == 0:
            return self.frame_slots
        return int(empty[0])

    def estimate_from_mean(self, mean_r: float) -> float:
        """Invert ``E[R] = log2(kappa n)`` at the observed mean."""
        if mean_r <= 0.0:
            raise EstimationError(
                "mean first-empty index is 0: population appears empty"
            )
        return 2.0**mean_r / KAPPA

    def estimate(
        self,
        population: TagPopulation,
        rounds: int,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        statistics = np.empty(rounds)
        for round_index in range(rounds):
            seed = int(rng.integers(0, 2**63))
            statistics[round_index] = self.first_empty_bucket(
                seed, population
            )
        n_hat = self.estimate_from_mean(float(statistics.mean()))
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=rounds * self.slots_per_round(),
                per_round_statistics=statistics,
            )
        )

    def round_statistic_pmf(self, n: int) -> np.ndarray:
        """Law of the round statistic ``R`` for ``n`` tags.

        Independent-bucket occupancy (the same approximation the round
        planner's :func:`~repro.analysis.theory.lof_round_moments`
        uses): bucket ``j`` is occupied with ``q_j = 1 - (1-p_j)^n``,
        and ``R = r`` requires buckets ``0..r-1`` occupied and bucket
        ``r`` empty, so ``P(R=r) = (prod_{j<r} q_j)(1 - q_r)`` with the
        all-occupied residual in ``R = frame_slots``.  Entries telescope
        to an exact sum of 1.
        """
        if n < 1:
            raise EstimationError(f"sampled LoF requires n >= 1, got {n}")
        occupancy = 1.0 - (1.0 - geometric_pmf(self.frame_slots - 1)) ** n
        tail = np.cumprod(occupancy)
        pmf = np.empty(self.frame_slots + 1)
        pmf[0] = 1.0 - tail[0]
        pmf[1 : self.frame_slots] = tail[:-1] - tail[1:]
        pmf[self.frame_slots] = tail[-1]
        return pmf

    def estimate_sampled(
        self, n: int, rounds: int, rng: np.random.Generator
    ) -> ProtocolResult:
        """Fast path: draw ``R`` from its law by inverse CDF.

        One uniform per round looked up in the CDF of
        :meth:`round_statistic_pmf` — no per-round multinomial or
        Python-level first-empty scan.  The historical multinomial
        sampler survives as :meth:`estimate_sampled_multinomial` and the
        test suite cross-checks the two distributions.
        """
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        cdf = np.cumsum(self.round_statistic_pmf(n))
        statistics = np.minimum(
            np.searchsorted(cdf, rng.random(rounds), side="right"),
            self.frame_slots,
        ).astype(np.float64)
        n_hat = self.estimate_from_mean(float(statistics.mean()))
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=rounds * self.slots_per_round(),
                per_round_statistics=statistics,
            )
        )

    def estimate_sampled_multinomial(
        self, n: int, rounds: int, rng: np.random.Generator
    ) -> ProtocolResult:
        """Reference sampler: multinomial bucket occupancy per round.

        Draws each round's per-bucket tag counts from the exact
        multinomial law of the geometric hash, then reads off the first
        empty bucket — identical in distribution to hashing ``n`` real
        tags.  Kept as the slow reference tier for
        :meth:`estimate_sampled`'s inverse-CDF law.
        """
        if n < 1:
            raise EstimationError(f"sampled LoF requires n >= 1, got {n}")
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        pmf = geometric_pmf(self.frame_slots - 1)
        counts = rng.multinomial(n, pmf, size=rounds)
        statistics = np.empty(rounds)
        for index in range(rounds):
            empty = np.flatnonzero(counts[index] == 0)
            statistics[index] = (
                float(empty[0]) if empty.size else float(self.frame_slots)
            )
        n_hat = self.estimate_from_mean(float(statistics.mean()))
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=rounds * self.slots_per_round(),
                per_round_statistics=statistics,
            )
        )

    def estimate_sampled_batch(
        self, n: int, rounds: int, runs: int, rng: np.random.Generator
    ) -> SampledBatch:
        """A whole batch of :meth:`estimate_sampled` runs at once.

        Bit-identical to ``runs`` sequential ``estimate_sampled`` calls
        sharing ``rng`` (same uniform word stream row by row, same CDF
        lookup, same per-row mean).  Runs whose mean statistic is 0 —
        where the scalar path raises
        :class:`~repro.errors.EstimationError` — are flagged ``NaN``
        and counted in ``saturated_runs`` instead of aborting the batch.
        """
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        if runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {runs}")
        cdf = np.cumsum(self.round_statistic_pmf(n))
        statistics = np.minimum(
            np.searchsorted(cdf, rng.random((runs, rounds)), side="right"),
            self.frame_slots,
        ).astype(np.float64)
        estimates = np.empty(runs)
        saturated = 0
        for index in range(runs):
            try:
                estimates[index] = self.estimate_from_mean(
                    float(statistics[index].mean())
                )
            except EstimationError:
                estimates[index] = np.nan
                saturated += 1
        return self._observe_batch(
            SampledBatch(
                protocol=self.name,
                rounds=rounds,
                estimates=estimates,
                slots_per_run=rounds * self.slots_per_round(),
                saturated_runs=saturated,
            ),
            statistics,
        )

    def batched_engine(self) -> "LofBatchedEngine":
        """LoF's vectorized cell executor (first empty bucket)."""
        return LofBatchedEngine(self)


class LofBatchedEngine(BatchedRoundEngine):
    """Whole-cell LoF: per-seed first empty bucket via offset bincount."""

    protocol: LofProtocol

    def round_statistics(
        self, seeds: np.ndarray, population: TagPopulation
    ) -> np.ndarray:
        frame_slots = self.protocol.frame_slots
        if population.size == 0:
            return np.zeros(len(seeds))
        buckets = geometric_bucket_matrix(
            seeds,
            population.tag_ids,
            frame_slots - 1,
            population.family,
        )
        rows = len(seeds)
        offsets = np.arange(rows, dtype=np.int64)[:, None] * frame_slots
        counts = np.bincount(
            (buckets + offsets).ravel(), minlength=rows * frame_slots
        ).reshape(rows, frame_slots)
        empty = counts == 0
        first = empty.argmax(axis=1)
        first[~empty.any(axis=1)] = frame_slots
        return first.astype(np.float64)

    def reduce(self, statistics: np.ndarray) -> float:
        return self.protocol.estimate_from_mean(float(statistics.mean()))

    def work_per_seed(self, population: TagPopulation) -> int:
        return max(1, population.size + self.protocol.frame_slots)
