"""Protocol registry: build any estimation protocol by name.

Keeps the CLI and the benchmark sweeps decoupled from concrete classes.
"""

from __future__ import annotations

from typing import Callable

from ..config import PetConfig
from ..errors import ConfigurationError
from .base import CardinalityEstimatorProtocol
from .fneb import FnebProtocol
from .fneb_enhanced import EnhancedFnebProtocol
from .framed import EzbProtocol, UpeProtocol, UseProtocol
from .lof import LofProtocol
from .pet import PetProtocol
from .pet_budgeted import BudgetedPetProtocol

_BUILDERS: dict[str, Callable[[], CardinalityEstimatorProtocol]] = {
    "pet": lambda: PetProtocol(),
    "pet-linear": lambda: PetProtocol(
        config=PetConfig(binary_search=False)
    ),
    "pet-passive": lambda: PetProtocol(
        config=PetConfig(passive_tags=True)
    ),
    "pet-budgeted": lambda: BudgetedPetProtocol.for_max_population(
        1_000_000
    ),
    "fneb": lambda: FnebProtocol(),
    "fneb-enhanced": lambda: EnhancedFnebProtocol(),
    "lof": lambda: LofProtocol(),
    "use": lambda: UseProtocol(),
    "upe": lambda: UpeProtocol(),
    "ezb": lambda: EzbProtocol(),
}


def available_protocols() -> list[str]:
    """Names accepted by :func:`make_protocol`."""
    return sorted(_BUILDERS)


def make_protocol(name: str) -> CardinalityEstimatorProtocol:
    """Instantiate the named protocol with its default parameters."""
    key = name.lower()
    if key not in _BUILDERS:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {available_protocols()}"
        )
    return _BUILDERS[key]()
