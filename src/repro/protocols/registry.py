"""Protocol registry: build any estimation protocol by name.

Keeps the CLI, the benchmark sweeps, and the :func:`repro.estimate`
facade decoupled from concrete classes.  Every entry carries a factory
*and* a one-line summary, and :func:`make_protocol` forwards keyword
configuration to the underlying constructor::

    make_protocol("fneb", frame_size=2**16)
    make_protocol("pet", rounds=256, tree_height=16)
    make_protocol("pet", accuracy=AccuracyRequirement(0.05, 0.01))

PET-family entries accept the :class:`~repro.config.PetConfig` fields
directly (``tree_height=``, ``rounds=``, ...), a whole ``config=``
object, a ``tier=`` selector, and ``accuracy=`` — an
:class:`~repro.config.AccuracyRequirement` translated into the Eq. 20
round count when ``rounds`` was not pinned explicitly.  Unknown keywords
raise :class:`~repro.errors.ConfigurationError` naming the offending
keys and the accepted ones.  The old one-argument call keeps working.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass
from typing import Callable

from ..config import AccuracyRequirement, PetConfig
from ..core.accuracy import rounds_required
from ..errors import ConfigurationError
from .aloha import AlohaEstimatorProtocol
from .base import CardinalityEstimatorProtocol
from .fneb import FnebProtocol
from .fneb_enhanced import EnhancedFnebProtocol
from .framed import EzbProtocol, UpeProtocol, UseProtocol
from .lof import LofProtocol
from .pet import PetProtocol
from .pet_budgeted import BudgetedPetProtocol

_PET_CONFIG_FIELDS = tuple(
    f.name for f in dataclasses.fields(PetConfig)
)


def _merge_pet_config(
    preset: dict[str, object],
    config: PetConfig | None,
    fields: dict[str, object],
    accuracy: AccuracyRequirement | None,
) -> PetConfig:
    """Resolve a PetConfig from preset defaults + caller configuration.

    Precedence: explicit ``fields`` > ``config=`` object > preset.
    ``accuracy`` fills ``rounds`` (Eq. 20) only when nothing pinned it.
    """
    if config is not None:
        merged = (
            dataclasses.replace(config, **fields)  # type: ignore[arg-type]
            if fields
            else config
        )
    else:
        merged = PetConfig(**{**preset, **fields})  # type: ignore[arg-type]
    if accuracy is not None and merged.rounds is None:
        merged = merged.with_rounds(
            rounds_required(accuracy.epsilon, accuracy.delta)
        )
    return merged


def _pet_factory(
    **preset: object,
) -> Callable[..., CardinalityEstimatorProtocol]:
    def build(
        config: PetConfig | None = None,
        tier: str = "vectorized",
        accuracy: AccuracyRequirement | None = None,
        **fields: object,
    ) -> CardinalityEstimatorProtocol:
        return PetProtocol(
            config=_merge_pet_config(preset, config, fields, accuracy),
            tier=tier,
        )

    build.accepted = (  # type: ignore[attr-defined]
        "config",
        "tier",
        "accuracy",
        *_PET_CONFIG_FIELDS,
    )
    return build


def _budgeted_pet_factory(
    n_max: int = 1_000_000,
    slot_budget: int | None = None,
    censor_inflation: float = 1.5,
    margin: int = 2,
    config: PetConfig | None = None,
    accuracy: AccuracyRequirement | None = None,
    **fields: object,
) -> CardinalityEstimatorProtocol:
    merged = _merge_pet_config({}, config, fields, accuracy)
    if slot_budget is None:
        slot_budget = BudgetedPetProtocol.for_max_population(
            n_max, config=merged, margin=margin
        ).slot_budget
    return BudgetedPetProtocol(
        slot_budget=slot_budget,
        config=merged,
        censor_inflation=censor_inflation,
    )


_budgeted_pet_factory.accepted = (  # type: ignore[attr-defined]
    "n_max",
    "slot_budget",
    "censor_inflation",
    "margin",
    "config",
    "accuracy",
    *_PET_CONFIG_FIELDS,
)


@dataclass(frozen=True)
class ProtocolSpec:
    """One registry entry: display summary + configurable factory."""

    name: str
    summary: str
    factory: Callable[..., CardinalityEstimatorProtocol]

    @property
    def accepted_config(self) -> tuple[str, ...]:
        """Keyword names :func:`make_protocol` forwards to the factory."""
        accepted = getattr(self.factory, "accepted", None)
        if accepted is not None:
            return tuple(accepted)
        parameters = inspect.signature(self.factory).parameters
        return tuple(
            name
            for name, parameter in parameters.items()
            if name != "self"
            and parameter.kind
            in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        )


_SPECS: dict[str, ProtocolSpec] = {
    spec.name: spec
    for spec in (
        ProtocolSpec(
            "pet",
            "PET with Algorithm 3 binary search — O(log log n) "
            "slots/round",
            _pet_factory(),
        ),
        ProtocolSpec(
            "pet-linear",
            "PET with the Algorithm 1 linear prefix scan — O(log n)",
            _pet_factory(binary_search=False),
        ),
        ProtocolSpec(
            "pet-passive",
            "PET over Sec. 4.5 passive tags (one preloaded code)",
            _pet_factory(passive_tags=True),
        ),
        ProtocolSpec(
            "pet-budgeted",
            "PET with a hard per-round slot budget + censored MLE",
            _budgeted_pet_factory,
        ),
        ProtocolSpec(
            "fneb",
            "First-nonempty-slot estimation (Han et al. 2010)",
            FnebProtocol,
        ),
        ProtocolSpec(
            "fneb-enhanced",
            "FNEB with pilot-phase frame shrinking",
            EnhancedFnebProtocol,
        ),
        ProtocolSpec(
            "lof",
            "Lottery-Frame / Flajolet-Martin estimation (Qian et al.)",
            LofProtocol,
        ),
        ProtocolSpec(
            "use",
            "Unified Simple Estimator — empty slots of one Aloha frame",
            UseProtocol,
        ),
        ProtocolSpec(
            "upe",
            "Unified Probabilistic Estimator — load-matched USE",
            UpeProtocol,
        ),
        ProtocolSpec(
            "ezb",
            "Enhanced Zero-Based — zero statistic over k sub-frames",
            EzbProtocol,
        ),
        ProtocolSpec(
            "aloha",
            "Schoute backlog estimator — S + 2.39 C of one Aloha frame",
            AlohaEstimatorProtocol,
        ),
    )
}


def protocol_names() -> list[str]:
    """Sorted names accepted by :func:`make_protocol`."""
    return sorted(_SPECS)


def available_protocols() -> list[tuple[str, str]]:
    """``(name, summary)`` pairs for every registered protocol."""
    return [
        (name, _SPECS[name].summary) for name in protocol_names()
    ]


def make_protocol(
    name: str, **config: object
) -> CardinalityEstimatorProtocol:
    """Instantiate the named protocol, forwarding ``config`` keywords.

    With no keywords this builds the protocol with its default
    parameters, exactly as before.  Unknown protocol names and unknown
    keywords both raise :class:`~repro.errors.ConfigurationError`; the
    latter lists the keywords the protocol accepts.
    """
    key = name.lower()
    spec = _SPECS.get(key)
    if spec is None:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {protocol_names()}"
        )
    accepted = spec.accepted_config
    unknown = sorted(set(config) - set(accepted))
    if unknown:
        raise ConfigurationError(
            f"protocol {name!r} got unknown configuration "
            f"{unknown}; accepted keywords: {sorted(accepted)}"
        )
    return spec.factory(**config)
