"""Enhanced FNEB: adaptive frame shrinking (Han et al., Sec. of [12]).

Plain FNEB sizes its search frame for the worst-case population, paying
``log2(f_max)`` slots per round forever.  Han et al.'s enhancement —
the variant the paper benchmarks in Fig. 6b — first pins down the
*magnitude* of ``n`` with a short pilot phase, then shrinks the frame's
effective upper bound so the per-round binary search runs over a much
smaller range.

Implementation here:

1. **Pilot phase**: a few plain rounds at the full frame produce a
   coarse ``n_0``.
2. **Shrunk phase**: the reader knows the first nonempty slot lies
   below ``x_max = ceil(kappa * f / n_0)`` with overwhelming
   probability (``P(X > x_max) = e^-kappa``); it binary-searches only
   ``[1, x_max]``, spending ``log2(x_max)`` slots.  Rounds whose
   statistic hits the ``x_max`` boundary fall back to a full-range
   search (rare; counted honestly).

The estimator arithmetic is shared with :class:`FnebProtocol`.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import AccuracyRequirement
from ..errors import ConfigurationError, EstimationError
from ..tags.population import TagPopulation
from .base import CardinalityEstimatorProtocol, ProtocolResult
from .fneb import DEFAULT_FRAME_SIZE, FnebProtocol

#: Tail-mass exponent for the shrunk bound: P(miss) = e^-kappa.
DEFAULT_KAPPA = 12.0


class EnhancedFnebProtocol(CardinalityEstimatorProtocol):
    """FNEB with pilot-phase frame shrinking.

    Parameters
    ----------
    frame_size:
        Worst-case (pilot) frame size.
    pilot_rounds:
        Rounds of the magnitude-finding pilot phase.
    kappa:
        Tail-mass exponent for the shrunk search bound; larger = safer
        bound = slightly more slots.
    """

    name = "E-FNEB"

    def __init__(
        self,
        frame_size: int = DEFAULT_FRAME_SIZE,
        pilot_rounds: int = 16,
        kappa: float = DEFAULT_KAPPA,
    ):
        if pilot_rounds < 1:
            raise ConfigurationError(
                f"pilot_rounds must be >= 1, got {pilot_rounds}"
            )
        if kappa <= 0:
            raise ConfigurationError(f"kappa must be > 0, got {kappa}")
        self._plain = FnebProtocol(frame_size=frame_size)
        self.frame_size = frame_size
        self.pilot_rounds = pilot_rounds
        self.kappa = kappa

    def plan_rounds(self, requirement: AccuracyRequirement) -> int:
        """Same statistic as plain FNEB; same round count."""
        return self._plain.plan_rounds(requirement)

    def slots_per_round(self) -> int:
        """Worst case (pilot-phase cost); the realized mean is lower."""
        return self._plain.slots_per_round()

    def shrunk_bound(self, n_estimate: float) -> int:
        """Search bound covering the statistic w.p. ``1 - e^-kappa``."""
        if n_estimate <= 0:
            raise EstimationError(
                f"n_estimate must be positive, got {n_estimate!r}"
            )
        bound = math.ceil(self.kappa * self.frame_size / n_estimate)
        return max(2, min(bound, self.frame_size))

    def shrunk_slots_per_round(self, n_estimate: float) -> int:
        """Binary-search cost over the shrunk range."""
        bound = self.shrunk_bound(n_estimate)
        return max(1, (bound - 1).bit_length())

    def estimate(
        self,
        population: TagPopulation,
        rounds: int,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        pilot = min(self.pilot_rounds, rounds)
        statistics = np.empty(rounds)
        total_slots = 0
        # Phase 1: pilot at full range.
        for index in range(pilot):
            seed = int(rng.integers(0, 2**63))
            statistics[index] = self._plain.first_nonempty(
                seed, population
            )
            total_slots += self._plain.slots_per_round()
        n_pilot = self._plain.estimate_from_mean(
            float(statistics[:pilot].mean())
        )
        # Phase 2: shrunk-range rounds.
        bound = self.shrunk_bound(n_pilot)
        shrunk_cost = self.shrunk_slots_per_round(n_pilot)
        full_cost = self._plain.slots_per_round()
        for index in range(pilot, rounds):
            seed = int(rng.integers(0, 2**63))
            statistic = self._plain.first_nonempty(seed, population)
            statistics[index] = statistic
            if statistic <= bound:
                total_slots += shrunk_cost
            else:
                # Boundary miss: the reader detects "all of [1, bound]
                # empty" and falls back to a full-range search.
                total_slots += shrunk_cost + full_cost
        n_hat = self._plain.estimate_from_mean(float(statistics.mean()))
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=total_slots,
                per_round_statistics=statistics,
            )
        )
