"""FNEB — First Non-Empty slot Based estimation (Han et al., 2010).

Each round the reader broadcasts a seed; every tag hashes itself to a
uniform slot of a conceptual frame of size ``f``.  The statistic is the
index ``X`` of the first nonempty slot, located by binary search over
prefix ranges of the frame ("do any tags sit in slots 1..x?"), costing
``ceil(log2 f)`` slots per round.  Since the minimum of ``n`` uniform
slot draws is (essentially) geometric with success probability
``1 - exp(-n/f)``,

    E[X] ~ 1 / (1 - exp(-n/f)),

the reader inverts the observed mean:  ``n_hat = -f ln(1 - 1/X_bar)``.

The frame must be sized for the largest anticipated population (FNEB
needs this prior bound; one of the criticisms PET's Sec. 2 levels).  We
default to ``f = 2^24`` (~16.7M tags), giving 24 slots per round.

Round planning: the per-round relative deviation of ``X`` is ~1
(geometric), so meeting ``(epsilon, delta)`` needs
``m = (c(delta) * sigma_X / (epsilon * E[X]))^2`` rounds; we evaluate the
moment ratio at the frame's design load rather than the unknown true
``n`` — for ``n << f`` it is insensitive to ``n`` (tests cover this).
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.theory import fneb_round_moments
from ..config import AccuracyRequirement
from ..core.accuracy import confidence_scale
from ..errors import ConfigurationError, EstimationError
from ..hashing import uniform_min_slots, uniform_slots
from ..tags.population import TagPopulation
from .base import (
    BatchedRoundEngine,
    CardinalityEstimatorProtocol,
    ProtocolResult,
    SampledBatch,
)

#: Default conceptual frame size (prior upper bound on n).
DEFAULT_FRAME_SIZE = 2**24

#: Design load at which the round planner evaluates X's moment ratio.
_PLANNING_LOAD = 1e-3  # n / f


class FnebProtocol(CardinalityEstimatorProtocol):
    """First-nonempty-slot estimator with binary-search rounds."""

    name = "FNEB"

    def __init__(self, frame_size: int = DEFAULT_FRAME_SIZE):
        if frame_size < 2:
            raise ConfigurationError(
                f"frame_size must be >= 2, got {frame_size}"
            )
        self.frame_size = frame_size

    def slots_per_round(self) -> int:
        """Binary search over the frame: ``ceil(log2 f)`` probes."""
        return max(1, (self.frame_size - 1).bit_length())

    def plan_rounds(self, requirement: AccuracyRequirement) -> int:
        """Rounds from the CLT on the mean first-nonempty index."""
        c = confidence_scale(requirement.delta)
        design_n = max(1, int(self._PLANNING_LOAD_N()))
        moments = fneb_round_moments(design_n, self.frame_size)
        relative_sigma = moments.std / moments.mean
        rounds = (c * relative_sigma / requirement.epsilon) ** 2
        return max(1, math.ceil(rounds))

    def _PLANNING_LOAD_N(self) -> float:
        return _PLANNING_LOAD * self.frame_size

    def first_nonempty(self, seed: int, population: TagPopulation) -> int:
        """The round statistic: 1 + the minimum hashed slot index."""
        if population.size == 0:
            raise EstimationError(
                "FNEB's statistic is undefined for an empty population "
                "(every slot is empty)"
            )
        slots = uniform_slots(
            seed, population.tag_ids, self.frame_size, population.family
        )
        return int(slots.min()) + 1

    def estimate_from_mean(self, mean_x: float) -> float:
        """Invert ``E[X] = 1/(1 - e^(-n/f))`` at the observed mean."""
        if mean_x <= 1.0:
            # Every round found slot 1 nonempty: n is at least ~f; report
            # the saturation point instead of infinity.
            return float(self.frame_size * math.log(self.frame_size))
        survival = 1.0 - 1.0 / mean_x  # e^(-n/f)
        return -self.frame_size * math.log(survival)

    def estimate(
        self,
        population: TagPopulation,
        rounds: int,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        statistics = np.empty(rounds)
        for round_index in range(rounds):
            seed = int(rng.integers(0, 2**63))
            statistics[round_index] = self.first_nonempty(seed, population)
        n_hat = self.estimate_from_mean(float(statistics.mean()))
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=rounds * self.slots_per_round(),
                per_round_statistics=statistics,
            )
        )

    def estimate_sampled(
        self, n: int, rounds: int, rng: np.random.Generator
    ) -> ProtocolResult:
        """Fast path: draw ``X`` from its exact law instead of hashing.

        ``P(X <= x) = 1 - (1 - x/f)^n`` inverts to
        ``X = ceil(f * (1 - (1-u)^(1/n)))`` for ``u ~ U(0,1)``.
        """
        if n < 1:
            raise EstimationError(f"sampled FNEB requires n >= 1, got {n}")
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        uniforms = rng.random(rounds)
        xs = np.ceil(
            self.frame_size * (1.0 - (1.0 - uniforms) ** (1.0 / n))
        )
        xs = np.clip(xs, 1, self.frame_size)
        n_hat = self.estimate_from_mean(float(xs.mean()))
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=rounds * self.slots_per_round(),
                per_round_statistics=xs,
            )
        )

    def estimate_sampled_batch(
        self, n: int, rounds: int, runs: int, rng: np.random.Generator
    ) -> SampledBatch:
        """A whole batch of :meth:`estimate_sampled` runs at once.

        Bit-identical to ``runs`` sequential ``estimate_sampled`` calls
        sharing ``rng``: ``rng.random((runs, rounds))`` yields the same
        word stream row by row as ``runs`` separate ``rng.random(rounds)``
        calls, and every later step is elementwise or a per-row mean.
        FNEB's inversion handles saturation internally (``mean <= 1``
        reports the frame's saturation point), so no run is flagged.
        """
        if n < 1:
            raise EstimationError(f"sampled FNEB requires n >= 1, got {n}")
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        if runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {runs}")
        uniforms = rng.random((runs, rounds))
        xs = np.ceil(
            self.frame_size * (1.0 - (1.0 - uniforms) ** (1.0 / n))
        )
        xs = np.clip(xs, 1, self.frame_size)
        estimates = np.array(
            [self.estimate_from_mean(float(row.mean())) for row in xs]
        )
        return self._observe_batch(
            SampledBatch(
                protocol=self.name,
                rounds=rounds,
                estimates=estimates,
                slots_per_run=rounds * self.slots_per_round(),
            ),
            xs,
        )

    def batched_engine(self) -> "FnebBatchedEngine":
        """FNEB's vectorized cell executor (first nonempty slot)."""
        return FnebBatchedEngine(self)


class FnebBatchedEngine(BatchedRoundEngine):
    """Whole-cell FNEB: minimum hashed slot per seed, one matrix pass."""

    protocol: FnebProtocol

    def round_statistics(
        self, seeds: np.ndarray, population: TagPopulation
    ) -> np.ndarray:
        if population.size == 0:
            raise EstimationError(
                "FNEB's statistic is undefined for an empty population "
                "(every slot is empty)"
            )
        mins = uniform_min_slots(
            seeds,
            population.tag_ids,
            self.protocol.frame_size,
            population.family,
        )
        return (mins + 1).astype(np.float64)

    def reduce(self, statistics: np.ndarray) -> float:
        return self.protocol.estimate_from_mean(float(statistics.mean()))
