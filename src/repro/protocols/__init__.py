"""The protocol zoo: PET variants, estimation baselines, identification.

Every estimation protocol implements the
:class:`~repro.protocols.base.CardinalityEstimatorProtocol` interface —
``plan(epsilon, delta)`` to size the run and ``estimate(population,
rng)`` to produce a :class:`~repro.protocols.base.ProtocolResult` — so
benchmarks compare them uniformly.

Estimation protocols
--------------------
* :class:`~repro.protocols.pet.PetProtocol` — this paper (all variants).
* :class:`~repro.protocols.fneb.FnebProtocol` — Han et al., INFOCOM 2010:
  binary-search the first nonempty slot of a hashed frame.
* :class:`~repro.protocols.lof.LofProtocol` — Qian et al., PerCom 2008:
  geometric (lottery) frames, first-empty-slot statistic.
* :class:`~repro.protocols.framed.UseProtocol` /
  :class:`~repro.protocols.framed.UpeProtocol` /
  :class:`~repro.protocols.framed.EzbProtocol` — Kodialam & Nandagopal's
  framed-Aloha estimators (MobiCom 2006, INFOCOM 2007).

Identification baselines (exact counting, the motivating contrast)
------------------------------------------------------------------
* :class:`~repro.protocols.aloha.FramedAlohaIdentification` — EPC-Gen2
  style framed slotted Aloha with Q-adaptation.
* :class:`~repro.protocols.treewalk.TreeWalkIdentification` — binary
  tree-splitting collision arbitration.
"""

from .aloha import AlohaEstimatorProtocol, FramedAlohaIdentification
from .base import (
    BatchedRoundEngine,
    CardinalityEstimatorProtocol,
    IdentificationResult,
    ProtocolResult,
    SampledBatch,
)
from .fneb import FnebProtocol
from .fneb_enhanced import EnhancedFnebProtocol
from .framed import EzbProtocol, UpeProtocol, UseProtocol
from .lof import LofProtocol
from .pet import PetProtocol
from .pet_budgeted import BudgetedPetProtocol
from .registry import (
    ProtocolSpec,
    available_protocols,
    make_protocol,
    protocol_names,
)
from .treewalk import TreeWalkIdentification

__all__ = [
    "CardinalityEstimatorProtocol",
    "BatchedRoundEngine",
    "ProtocolResult",
    "SampledBatch",
    "IdentificationResult",
    "AlohaEstimatorProtocol",
    "PetProtocol",
    "BudgetedPetProtocol",
    "FnebProtocol",
    "EnhancedFnebProtocol",
    "LofProtocol",
    "UseProtocol",
    "UpeProtocol",
    "EzbProtocol",
    "FramedAlohaIdentification",
    "TreeWalkIdentification",
    "available_protocols",
    "protocol_names",
    "ProtocolSpec",
    "make_protocol",
]
