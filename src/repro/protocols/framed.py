"""Framed slotted-Aloha estimators: USE, UPE, EZB.

The Kodialam & Nandagopal lineage the paper cites as earlier related
work.  All three observe the occupancy profile of an Aloha frame in
which each tag participates with persistence probability ``p`` and picks
a uniform slot:

* **USE** (Unified Simple Estimator, MobiCom 2006): reads the number of
  *empty* slots ``z`` of one frame and inverts
  ``E[z] = f (1 - p/f)^n`` — the "zero estimator", usable without
  decoding collisions.
* **UPE** (Unified Probabilistic Estimator, MobiCom 2006): same frame
  but sized from a prior magnitude so the load stays near-optimal;
  modelled here as USE with a load-matched persistence (the prior-
  knowledge requirement Sec. 2 criticises).
* **EZB** (Enhanced Zero-Based, INFOCOM 2007): accumulates the zero
  statistic across ``k`` frames and estimates once from the average —
  anonymous and robust to multiple readers.

These are implemented for the related-work comparison example and the
identification-vs-estimation benchmark; the paper's evaluation compares
PET against FNEB and LoF only.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import AccuracyRequirement
from ..core.accuracy import confidence_scale
from ..errors import ConfigurationError, EstimationError
from ..hashing import uniform_slot_matrix, uniform_slots
from ..tags.population import TagPopulation
from .base import (
    BatchedRoundEngine,
    CardinalityEstimatorProtocol,
    ProtocolResult,
)


class _ZeroFrameEstimator(CardinalityEstimatorProtocol):
    """Shared machinery: estimate from empty-slot counts of frames."""

    def __init__(self, frame_size: int, persistence: float = 1.0):
        if frame_size < 1:
            raise ConfigurationError(
                f"frame_size must be >= 1, got {frame_size}"
            )
        if not 0.0 < persistence <= 1.0:
            raise ConfigurationError(
                f"persistence must lie in (0, 1], got {persistence!r}"
            )
        self.frame_size = frame_size
        self.persistence = persistence

    def slots_per_round(self) -> int:
        """One frame per round."""
        return self.frame_size

    def plan_rounds(self, requirement: AccuracyRequirement) -> int:
        """CLT planner on the zero-count statistic at design load.

        At load ``t = n p / f`` the zero fraction is ``e^-t`` with
        variance ``~ e^-t (1 - e^-t) / f`` per frame; propagating
        through the log-inversion gives the relative deviation of one
        frame's estimate, and the usual ``(c sigma_rel / eps)^2`` round
        count.  Evaluated at the design load ``t = 1``.
        """
        c = confidence_scale(requirement.delta)
        t = 1.0
        zero_fraction = math.exp(-t)
        sigma_zero = math.sqrt(
            zero_fraction * (1.0 - zero_fraction) / self.frame_size
        )
        # n_hat = -(f/p) ln(z/f)  =>  d n_hat / d zfrac = -(f/p)/zfrac;
        # relative sigma of n_hat = sigma_zero / (zfrac * t).
        relative_sigma = sigma_zero / (zero_fraction * t)
        rounds = (c * relative_sigma / requirement.epsilon) ** 2
        return max(1, math.ceil(rounds))

    def empty_slots(self, seed: int, population: TagPopulation) -> int:
        """Count empty slots of one frame under seed-derived behaviour."""
        if population.size == 0:
            return self.frame_size
        slots = uniform_slots(
            seed, population.tag_ids, self.frame_size, population.family
        )
        if self.persistence < 1.0:
            # Persistence decision is also hash-derived (stateless tags):
            # reuse an independent seed stream.
            participation = uniform_slots(
                seed ^ 0xA5A5_A5A5, population.tag_ids, 1 << 20,
                population.family,
            )
            mask = participation < self.persistence * (1 << 20)
            slots = slots[mask]
        if slots.size == 0:
            return self.frame_size
        occupied = np.unique(slots).size
        return self.frame_size - occupied

    def estimate_from_zero_fraction(self, zero_fraction: float) -> float:
        """Invert ``E[z/f] = (1 - p/f)^n`` at the observed fraction."""
        if zero_fraction <= 0.0:
            raise EstimationError(
                "no empty slots observed: frame saturated; increase the "
                "frame size (USE/UPE need a prior magnitude of n)"
            )
        if zero_fraction >= 1.0:
            return 0.0
        per_tag = math.log(1.0 - self.persistence / self.frame_size)
        return math.log(zero_fraction) / per_tag

    def estimate(
        self,
        population: TagPopulation,
        rounds: int,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        zeros = np.empty(rounds)
        for round_index in range(rounds):
            seed = int(rng.integers(0, 2**63))
            zeros[round_index] = self.empty_slots(seed, population)
        zero_fraction = float(zeros.mean()) / self.frame_size
        n_hat = self.estimate_from_zero_fraction(zero_fraction)
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=rounds * self.slots_per_round(),
                per_round_statistics=zeros,
            )
        )

    def estimate_sampled(
        self, n: int, rounds: int, rng: np.random.Generator
    ) -> ProtocolResult:
        """Law-exact zero-count sampling from the true size ``n``.

        The serve tier's degraded rung: instead of hashing every tag
        into a frame, draw each frame's occupancy directly —
        participants ``B ~ Binomial(n, p)``, slot choices
        ``Multinomial(B, uniform)`` — and count empty slots.  The
        statistic's distribution matches :meth:`estimate` exactly
        (``O(f)`` per frame independent of ``n``), but consumes
        different randomness, so results are not bit-identical.
        """
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        if n < 0:
            raise ConfigurationError(f"population size must be >= 0, got {n}")
        draws = rounds * getattr(self, "frames_per_round", 1)
        if self.persistence < 1.0:
            participants = rng.binomial(int(n), self.persistence, size=draws)
        else:
            participants = np.full(draws, int(n))
        pvals = np.full(self.frame_size, 1.0 / self.frame_size)
        counts = rng.multinomial(participants, pvals)
        zeros = (counts == 0).sum(axis=1).astype(np.float64)
        zero_fraction = float(zeros.mean()) / self.frame_size
        n_hat = self.estimate_from_zero_fraction(zero_fraction)
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=rounds * self.slots_per_round(),
                per_round_statistics=zeros,
            )
        )

    def batched_engine(self) -> "ZeroFrameBatchedEngine":
        """The shared zero-frame vectorized cell executor."""
        return ZeroFrameBatchedEngine(self)


class ZeroFrameBatchedEngine(BatchedRoundEngine):
    """Whole-cell zero-frame statistic for USE/UPE/EZB.

    Per-seed empty-slot counts via a single offset bincount: tags masked
    out by the persistence draw are parked in a sentinel slot
    ``frame_size`` (one column past the frame) so a ``(rows,
    frame_size + 1)``-wide count matrix yields occupied counts without
    any per-row filtering.
    """

    protocol: _ZeroFrameEstimator

    def __init__(self, protocol: _ZeroFrameEstimator):
        super().__init__(protocol)
        # EZB averages frames_per_round sub-frame statistics per round.
        self.draws_per_round = getattr(protocol, "frames_per_round", 1)

    def round_statistics(
        self, seeds: np.ndarray, population: TagPopulation
    ) -> np.ndarray:
        frame_size = self.protocol.frame_size
        if population.size == 0:
            return np.full(len(seeds), float(frame_size))
        slots = uniform_slot_matrix(
            seeds, population.tag_ids, frame_size, population.family
        )
        if self.protocol.persistence < 1.0:
            participation = uniform_slot_matrix(
                np.asarray(seeds, dtype=np.uint64)
                ^ np.uint64(0xA5A5_A5A5),
                population.tag_ids,
                1 << 20,
                population.family,
            )
            mask = participation < self.protocol.persistence * (1 << 20)
            slots = np.where(mask, slots, frame_size)
        rows = len(seeds)
        width = frame_size + 1
        offsets = np.arange(rows, dtype=np.int64)[:, None] * width
        counts = np.bincount(
            (slots + offsets).ravel(), minlength=rows * width
        ).reshape(rows, width)
        occupied = np.count_nonzero(counts[:, :frame_size], axis=1)
        return (frame_size - occupied).astype(np.float64)

    def reduce(self, statistics: np.ndarray) -> float:
        zero_fraction = float(statistics.mean()) / self.protocol.frame_size
        return self.protocol.estimate_from_zero_fraction(zero_fraction)

    def work_per_seed(self, population: TagPopulation) -> int:
        hashes = population.size * (
            2 if self.protocol.persistence < 1.0 else 1
        )
        return max(1, hashes + self.protocol.frame_size + 1)


class UseProtocol(_ZeroFrameEstimator):
    """USE: full-persistence zero estimator, one frame per round."""

    name = "USE"

    def __init__(self, frame_size: int = 1024):
        super().__init__(frame_size=frame_size, persistence=1.0)


class UpeProtocol(_ZeroFrameEstimator):
    """UPE: persistence tuned to a prior magnitude ``n0``.

    Chooses ``p = f / n0`` (load ~1) so the zero fraction sits near the
    information-optimal ``1/e``.  The dependence on ``n0`` is the
    prior-knowledge drawback PET's related-work section highlights.
    """

    name = "UPE"

    def __init__(self, frame_size: int = 1024, prior_n: int = 1024):
        if prior_n < 1:
            raise ConfigurationError(f"prior_n must be >= 1, got {prior_n}")
        persistence = min(1.0, frame_size / prior_n)
        super().__init__(frame_size=frame_size, persistence=persistence)
        self.prior_n = prior_n


class EzbProtocol(_ZeroFrameEstimator):
    """EZB: the zero statistic averaged over ``k`` sub-frames per round.

    Functionally USE with the variance reduction folded into the round
    structure; its claim to fame is anonymity and multi-reader
    mergeability (bitmaps OR cleanly), which the multireader tests
    exercise.
    """

    name = "EZB"

    def __init__(
        self,
        frame_size: int = 1024,
        persistence: float = 0.5,
        frames_per_round: int = 4,
    ):
        if frames_per_round < 1:
            raise ConfigurationError(
                f"frames_per_round must be >= 1, got {frames_per_round}"
            )
        super().__init__(frame_size=frame_size, persistence=persistence)
        self.frames_per_round = frames_per_round

    def slots_per_round(self) -> int:
        return self.frame_size * self.frames_per_round

    def estimate(
        self,
        population: TagPopulation,
        rounds: int,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        zeros = np.empty(rounds * self.frames_per_round)
        for index in range(zeros.size):
            seed = int(rng.integers(0, 2**63))
            zeros[index] = self.empty_slots(seed, population)
        zero_fraction = float(zeros.mean()) / self.frame_size
        n_hat = self.estimate_from_zero_fraction(zero_fraction)
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=rounds * self.slots_per_round(),
                per_round_statistics=zeros,
            )
        )
