"""Budgeted PET: fixed slots per round + censored-MLE decoding.

An extension enabled by the MLE machinery: instead of letting each
round run its search to completion, give every round a *hard slot
budget* ``k`` — the reader linearly scans prefixes ``1..k`` and stops,
observing ``min(d, k)``.  Rounds are then perfectly periodic (useful
for schedulers interleaving estimation with other inventory traffic),
and the censored maximum-likelihood estimator of
:mod:`repro.analysis.mle` decodes the truncated observations without
bias.

Choosing ``k`` near ``E[d] = log2(phi n_max)`` keeps the censored
fraction moderate; the information loss (and hence the extra rounds
needed) is quantified by the accompanying tests.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.mle import mle_estimate_censored
from ..config import AccuracyRequirement, PetConfig
from ..core.accuracy import PHI, rounds_required
from ..errors import ConfigurationError
from ..sim.sampled import SampledSimulator
from ..sim.vectorized import VectorizedSimulator
from ..tags.population import TagPopulation
from .base import CardinalityEstimatorProtocol, ProtocolResult


class BudgetedPetProtocol(CardinalityEstimatorProtocol):
    """PET with exactly ``slot_budget`` slots per round.

    Parameters
    ----------
    slot_budget:
        Slots per round (linear prefix scan truncated at this length).
    config:
        Underlying PET parameters (height, tag variant).
    censor_inflation:
        Multiplier on the Eq. 20 round count compensating for the
        information lost to censoring (the per-round Fisher information
        drops as the censored fraction grows; 1.5 covers budgets down
        to ``E[d] - 2``, per the calibration tests).
    """

    name = "PET-budgeted"

    def __init__(
        self,
        slot_budget: int,
        config: PetConfig | None = None,
        censor_inflation: float = 1.5,
    ):
        self.config = config or PetConfig()
        if not 1 <= slot_budget <= self.config.tree_height:
            raise ConfigurationError(
                f"slot_budget must lie in [1, "
                f"{self.config.tree_height}], got {slot_budget}"
            )
        if censor_inflation < 1.0:
            raise ConfigurationError(
                "censor_inflation must be >= 1.0"
            )
        self.slot_budget = slot_budget
        self.censor_inflation = censor_inflation

    @classmethod
    def for_max_population(
        cls, n_max: int, config: PetConfig | None = None, margin: int = 2
    ) -> "BudgetedPetProtocol":
        """Pick the budget from a population upper bound.

        ``k = ceil(log2(phi n_max)) + margin`` keeps the censored
        fraction small at every population up to ``n_max``.
        """
        if n_max < 1:
            raise ConfigurationError(f"n_max must be >= 1, got {n_max}")
        config = config or PetConfig()
        budget = min(
            config.tree_height,
            math.ceil(math.log2(PHI * n_max)) + margin,
        )
        return cls(slot_budget=budget, config=config)

    def plan_rounds(self, requirement: AccuracyRequirement) -> int:
        """Eq. 20 inflated for the censoring information loss."""
        base = rounds_required(requirement.epsilon, requirement.delta)
        return math.ceil(base * self.censor_inflation)

    def slots_per_round(self) -> int:
        """Exactly the budget — that's the point."""
        return self.slot_budget

    def _observe_rounds(
        self,
        population: TagPopulation,
        rounds: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Censored depth observations, ``min(d, budget)`` per round."""
        if self.config.passive_tags:
            simulator = VectorizedSimulator(
                population, config=self.config, rng=rng
            )
            from ..core.path import EstimatingPath

            depths = np.empty(rounds, dtype=np.int64)
            for index in range(rounds):
                path = EstimatingPath.random(
                    self.config.tree_height, rng
                )
                depths[index] = simulator.gray_depth(path, None)
        else:
            simulator = SampledSimulator(
                population.size, config=self.config, rng=rng
            )
            depths = simulator.sample_depths(rounds)
        return np.minimum(depths, self.slot_budget)

    def estimate(
        self,
        population: TagPopulation,
        rounds: int,
        rng: np.random.Generator,
    ) -> ProtocolResult:
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        observations = self._observe_rounds(population, rounds, rng)
        n_hat = mle_estimate_censored(
            observations,
            self.config.tree_height,
            censor_at=self.slot_budget,
        )
        return self._observe_result(
            ProtocolResult(
                protocol=self.name,
                n_hat=n_hat,
                rounds=rounds,
                total_slots=rounds * self.slot_budget,
                per_round_statistics=observations.astype(np.float64),
            )
        )

    def censored_fraction(self, n: int) -> float:
        """Expected fraction of rounds hitting the budget at truth n.

        ``P(d >= k) = 1 - (1 - 2^-k)^n`` — used to size budgets.
        """
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        return 1.0 - (1.0 - 2.0**-self.slot_budget) ** n
