"""The multi-reader back-end controller (Sec. 4.6.3).

With several readers covering a large region, the controller picks each
round's estimating path, fans the per-slot prefix queries out to all
readers simultaneously, and ORs their observations: a slot counts as idle
only when *no* reader heard a response.  Because the aggregate is a pure
existence test, a tag sitting in an overlap (or moving between regions)
contributes exactly as much as a single-reader tag — the duplicate-
insensitivity PET inherits from its idle/busy statistic.

The controller implements ``RoundDriver``, so it plugs into a
:class:`~repro.core.estimator.PetEstimator` exactly like a single reader.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import PetConfig
from ..core.messages import PrefixQuery, StartRound
from ..core.path import EstimatingPath
from ..core.search import strategy_for
from ..errors import ProtocolError
from ..radio.channel import SlottedChannel


class _FanoutPrefixOracle:
    """Queries every reader's channel in the same slot, ORs busy-ness."""

    def __init__(
        self,
        channels: Sequence[SlottedChannel],
        path: EstimatingPath,
        encoding: str,
    ):
        self._channels = channels
        self._path = path
        self._encoding = encoding
        self.slots_used = 0

    def is_busy(self, prefix_length: int) -> bool:
        query = PrefixQuery(
            length=prefix_length,
            encoding=self._encoding,
            height=self._path.height,
        )
        label = self._path.prefix_string(prefix_length)
        busy_anywhere = False
        for channel in self._channels:
            outcome = channel.broadcast(
                query, label=label, payload_bits=query.payload_bits
            )
            busy_anywhere = busy_anywhere or outcome.busy
        # Readers interrogate concurrently: one wall-clock slot total.
        self.slots_used += 1
        return busy_anywhere


class ReaderController:
    """Coordinates multiple readers into one logical estimator.

    Parameters
    ----------
    channels:
        One slotted channel per deployed reader, with the tags of each
        reader's region attached.  A tag may legitimately be attached to
        several channels (overlapping coverage).
    config:
        PET parameters shared by all readers.
    rng:
        Randomness for seeds (paths are drawn by the estimator).
    """

    def __init__(
        self,
        channels: Sequence[SlottedChannel],
        config: PetConfig | None = None,
        rng: np.random.Generator | None = None,
        query_encoding: str = "mid",
    ):
        if not channels:
            raise ProtocolError("a controller needs at least one reader")
        self.channels = tuple(channels)
        self.config = config or PetConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._strategy = strategy_for(self.config.binary_search)
        self._query_encoding = query_encoding

    @property
    def num_readers(self) -> int:
        """Number of readers under this controller."""
        return len(self.channels)

    def run_round(
        self, path: EstimatingPath, round_index: int
    ) -> tuple[int, int]:
        """Execute one round across all readers; ``(depth, slots)``."""
        seed = (
            None
            if self.config.passive_tags
            else int(self._rng.integers(0, 2**63))
        )
        start = StartRound(path=path, seed=seed)
        for channel in self.channels:
            channel.broadcast(
                start,
                label=f"start r={path}",
                payload_bits=start.payload_bits,
            )
        oracle = _FanoutPrefixOracle(
            self.channels, path, self._query_encoding
        )
        gray_depth = self._strategy.find_gray_depth(oracle, path.height)
        return gray_depth, oracle.slots_used
