"""Geometric reader deployment and coverage computation.

Readers have limited interrogation range (Sec. 4.6.3), so large regions
deploy several.  :class:`Deployment` places readers and tags on a 2-D
region, derives each tag's covering reader set from distances, and can
materialise one channel per reader with the right tags attached — the
input the :class:`~repro.reader.controller.ReaderController` needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ChannelConfig
from ..errors import ConfigurationError
from ..radio.channel import SlottedChannel
from ..tags.mobility import MobileTagField
from ..tags.population import TagPopulation


@dataclass(frozen=True)
class ReaderPlacement:
    """One reader's position and interrogation radius (metres)."""

    x: float
    y: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ConfigurationError(
                f"reader radius must be positive, got {self.radius!r}"
            )

    def covers(self, x: float, y: float) -> bool:
        """Whether the point lies inside this reader's range."""
        return (x - self.x) ** 2 + (y - self.y) ** 2 <= self.radius**2


class Deployment:
    """Readers and tags placed on a rectangular region.

    Parameters
    ----------
    width, height:
        Region dimensions in metres.
    readers:
        Reader placements.  :meth:`grid` builds a regular layout that
        covers the region with a chosen overlap.
    """

    def __init__(
        self,
        width: float,
        height: float,
        readers: list[ReaderPlacement],
    ):
        if width <= 0 or height <= 0:
            raise ConfigurationError("region dimensions must be positive")
        if not readers:
            raise ConfigurationError("a deployment needs at least one reader")
        self.width = width
        self.height = height
        self.readers = list(readers)

    @classmethod
    def grid(
        cls,
        width: float,
        height: float,
        rows: int,
        cols: int,
        radius_scale: float = 1.2,
    ) -> "Deployment":
        """Regular ``rows x cols`` reader grid with overlapping ranges.

        ``radius_scale`` > 1 inflates each reader's radius beyond the
        half-diagonal of its cell, guaranteeing full coverage and
        deliberate overlap between neighbours.
        """
        if rows < 1 or cols < 1:
            raise ConfigurationError("grid needs rows >= 1 and cols >= 1")
        cell_w, cell_h = width / cols, height / rows
        radius = radius_scale * 0.5 * float(np.hypot(cell_w, cell_h))
        readers = [
            ReaderPlacement(
                x=(col + 0.5) * cell_w, y=(row + 0.5) * cell_h, radius=radius
            )
            for row in range(rows)
            for col in range(cols)
        ]
        return cls(width, height, readers)

    def scatter_tags(
        self, population: TagPopulation, rng: np.random.Generator
    ) -> MobileTagField:
        """Place tags uniformly in the region; compute coverage sets.

        Raises if any tag lands outside all reader ranges — a deployment
        bug the caller should fix (enlarge radii or add readers) rather
        than silently under-count.
        """
        positions_x = rng.uniform(0.0, self.width, size=population.size)
        positions_y = rng.uniform(0.0, self.height, size=population.size)
        coverage: dict[int, frozenset[int]] = {}
        uncovered = 0
        for tag_id, x, y in zip(
            population.tag_ids, positions_x, positions_y
        ):
            covering = frozenset(
                index
                for index, reader in enumerate(self.readers)
                if reader.covers(float(x), float(y))
            )
            if not covering:
                uncovered += 1
            coverage[int(tag_id)] = covering
        if uncovered:
            raise ConfigurationError(
                f"{uncovered} tags fall outside every reader's range; "
                f"increase reader radii or density"
            )
        return MobileTagField(
            num_readers=len(self.readers), coverage=coverage
        )

    def build_channels(
        self,
        field_map: MobileTagField,
        tags_by_id: dict[int, object],
        channel_config: ChannelConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[SlottedChannel]:
        """One channel per reader with its covered tags attached.

        ``tags_by_id`` maps tag ID to a tag state machine; a tag covered
        by several readers is attached to each of their channels (it
        hears, and answers, every one of them — the duplicate scenario).
        """
        rng = rng if rng is not None else np.random.default_rng()
        channels = []
        for reader_index in range(len(self.readers)):
            channel = SlottedChannel(config=channel_config, rng=rng)
            for tag_id in field_map.tags_of_reader(reader_index):
                channel.attach(tags_by_id[tag_id])  # type: ignore[arg-type]
            channels.append(channel)
        return channels
