"""Estimation sessions: the operational loop around single estimates.

A deployment rarely estimates once.  An :class:`EstimationSession`
wraps a round driver (single reader, controller, or any simulator tier)
with the operational concerns:

* repeated epoch estimation with managed seeds,
* optional continuous change monitoring (:mod:`repro.obs.monitor`),
* a persistent log of epoch results suitable for
  :func:`repro.sim.persist.save_experiment`.

This is the API the warehouse/conference examples are built on
conceptually; it exists so downstream users don't re-wire the pieces
by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import AccuracyRequirement, PetConfig
from ..core.estimator import PetEstimator, RoundDriver
from ..errors import ConfigurationError
from ..obs.monitor import CardinalityMonitor, EpochReport


@dataclass(frozen=True)
class EpochResult:
    """One epoch of a session.

    Attributes
    ----------
    epoch:
        Epoch index.
    n_hat:
        The epoch's estimate.
    rounds:
        Rounds used.
    slots:
        Slots consumed this epoch.
    monitor_report:
        The change-detector verdict (None when monitoring is off).
    """

    epoch: int
    n_hat: float
    rounds: int
    slots: int
    monitor_report: EpochReport | None = None

    def row(self) -> dict[str, object]:
        """Flat rendering for persistence."""
        return {
            "epoch": self.epoch,
            "n_hat": self.n_hat,
            "rounds": self.rounds,
            "slots": self.slots,
            "changed": (
                self.monitor_report.changed
                if self.monitor_report
                else False
            ),
        }


@dataclass
class EstimationSession:
    """Repeated PET estimation with optional change monitoring.

    Parameters
    ----------
    driver_factory:
        ``epoch -> RoundDriver``: builds (or returns) the driver for
        each epoch.  A factory rather than a fixed driver because in
        dynamic scenarios the population behind the driver changes
        between epochs.
    config:
        PET parameters; ``rounds`` may be None if ``requirement`` is
        given.
    requirement:
        Accuracy contract used to size each epoch when ``config.rounds``
        is unset.
    monitor:
        Enable EWMA change detection across epochs.
    base_seed:
        Root seed for the per-epoch reader randomness.
    """

    driver_factory: Callable[[int], RoundDriver]
    config: PetConfig = field(default_factory=PetConfig)
    requirement: AccuracyRequirement | None = None
    monitor: bool = True
    base_seed: int = 0

    def __post_init__(self) -> None:
        if self.config.rounds is None and self.requirement is None:
            raise ConfigurationError(
                "either config.rounds or a requirement must size epochs"
            )
        rounds = self._epoch_rounds()
        self._monitor = (
            CardinalityMonitor(rounds_per_epoch=rounds)
            if self.monitor
            else None
        )
        self._epoch = 0
        self.history: list[EpochResult] = []

    def _epoch_rounds(self) -> int:
        if self.config.rounds is not None:
            return self.config.rounds
        assert self.requirement is not None  # guarded in __post_init__
        from ..core.accuracy import rounds_required

        return rounds_required(
            self.requirement.epsilon, self.requirement.delta
        )

    def run_epoch(self) -> EpochResult:
        """Estimate once and fold the result into the session state."""
        rounds = self._epoch_rounds()
        estimator = PetEstimator(
            config=self.config.with_rounds(rounds),
            rng=np.random.default_rng((self.base_seed, self._epoch)),
        )
        driver = self.driver_factory(self._epoch)
        estimate = estimator.run(driver)
        report = (
            self._monitor.observe(max(estimate.n_hat, 1e-9))
            if self._monitor
            else None
        )
        result = EpochResult(
            epoch=self._epoch,
            n_hat=estimate.n_hat,
            rounds=estimate.num_rounds,
            slots=estimate.total_slots,
            monitor_report=report,
        )
        self.history.append(result)
        self._epoch += 1
        return result

    def run(self, epochs: int) -> list[EpochResult]:
        """Run several epochs; returns their results."""
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        return [self.run_epoch() for _ in range(epochs)]

    @property
    def change_epochs(self) -> list[int]:
        """Epochs where the monitor flagged a change (empty if off)."""
        if self._monitor is None:
            return []
        return self._monitor.change_epochs

    def save(self, path, name: str = "session"):
        """Persist the epoch log via :mod:`repro.sim.persist`."""
        from ..sim.persist import save_experiment

        return save_experiment(
            path,
            name,
            parameters={
                "rounds_per_epoch": self._epoch_rounds(),
                "tree_height": self.config.tree_height,
                "passive_tags": self.config.passive_tags,
                "monitor": self.monitor,
            },
            rows=[result.row() for result in self.history],
        )
