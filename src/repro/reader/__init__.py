"""RFID reader substrate.

* :class:`~repro.reader.reader.PetReader` — the reader state machine for
  Algorithms 1 and 3, driving one slotted channel.
* :class:`~repro.reader.controller.ReaderController` — the Sec. 4.6.3
  back-end controller that coordinates multiple readers and aggregates
  their per-slot observations duplicate-insensitively.
* :mod:`~repro.reader.deployment` — geometric placement of readers and
  tags, producing coverage maps for the multireader scenarios.
"""

from .controller import ReaderController
from .deployment import Deployment, ReaderPlacement
from .reader import PetReader
from .session import EpochResult, EstimationSession

__all__ = [
    "PetReader",
    "ReaderController",
    "Deployment",
    "ReaderPlacement",
    "EstimationSession",
    "EpochResult",
]
