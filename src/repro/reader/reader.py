"""The PET reader state machine (Algorithms 1 and 3).

A :class:`PetReader` owns one slotted channel.  Each round it broadcasts
``StartRound`` (path + optional seed), then drives a gray-node search
strategy whose prefix probes become real ``PrefixQuery`` slots on the
channel.  The reader implements the :class:`repro.core.estimator.RoundDriver`
protocol, so a :class:`~repro.core.estimator.PetEstimator` can run a full
estimation against it directly.
"""

from __future__ import annotations

import numpy as np

from ..config import PetConfig
from ..core.messages import PrefixQuery, StartRound
from ..core.path import EstimatingPath
from ..core.search import GraySearchStrategy, strategy_for
from ..radio.channel import SlottedChannel


class _ChannelPrefixOracle:
    """Adapts a channel to the search strategies' PrefixOracle protocol.

    Each ``is_busy`` call consumes exactly one slot on the channel.
    """

    def __init__(
        self,
        channel: SlottedChannel,
        path: EstimatingPath,
        encoding: str,
    ):
        self._channel = channel
        self._path = path
        self._encoding = encoding
        self.slots_used = 0

    def is_busy(self, prefix_length: int) -> bool:
        query = PrefixQuery(
            length=prefix_length,
            encoding=self._encoding,
            height=self._path.height,
        )
        outcome = self._channel.broadcast(
            query,
            label=self._path.prefix_string(prefix_length),
            payload_bits=query.payload_bits,
        )
        self.slots_used += 1
        return outcome.busy


class PetReader:
    """A single RFID reader executing PET estimation rounds.

    Parameters
    ----------
    channel:
        The slotted channel covering this reader's interrogation region
        (attach tag state machines to it before running rounds).
    config:
        PET parameters; selects linear vs binary search and active vs
        passive tag operation (whether a seed is broadcast per round).
    rng:
        Randomness for per-round seeds.
    query_encoding:
        On-air encoding of prefix queries, for overhead accounting:
        ``"mask"`` / ``"mid"`` / ``"feedback"`` (Sec. 4.6.2).
    """

    def __init__(
        self,
        channel: SlottedChannel,
        config: PetConfig | None = None,
        rng: np.random.Generator | None = None,
        query_encoding: str = "mid",
    ):
        self.channel = channel
        self.config = config or PetConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._strategy: GraySearchStrategy = strategy_for(
            self.config.binary_search
        )
        self._query_encoding = query_encoding

    @property
    def strategy(self) -> GraySearchStrategy:
        """The gray-node search strategy in use."""
        return self._strategy

    def draw_seed(self) -> int | None:
        """Per-round hash seed; ``None`` in passive-tag operation."""
        if self.config.passive_tags:
            return None
        return int(self._rng.integers(0, 2**63))

    def start_round(self, path: EstimatingPath) -> StartRound:
        """Broadcast the round-start command (path + seed) to all tags.

        The broadcast occupies the channel but expects no responses; it
        is recorded in the trace with its payload size so command
        overhead is accounted end to end.
        """
        command = StartRound(path=path, seed=self.draw_seed())
        self.channel.broadcast(
            command,
            label=f"start r={path}",
            payload_bits=command.payload_bits,
        )
        return command

    def run_round(
        self, path: EstimatingPath, round_index: int
    ) -> tuple[int, int]:
        """Execute one full round; return ``(gray_depth, slots_used)``.

        Slot accounting covers only the query slots, matching the
        paper's cost metric (the round-start broadcast is a command, not
        a contended slot; its bits are still in the channel trace).
        """
        self.start_round(path)
        oracle = _ChannelPrefixOracle(
            self.channel, path, self._query_encoding
        )
        gray_depth = self._strategy.find_gray_depth(oracle, path.height)
        return gray_depth, oracle.slots_used
