"""Extension experiments: features beyond the paper's evaluation.

* :func:`adaptive_vs_fixed` — sequential early-stopping estimation
  (``repro.core.adaptive``) vs the fixed Eq. 20 plan: rounds used and
  empirical coverage.
* :func:`energy_comparison` — per-tag and reader energy for PET
  (passive/active/linear) vs FNEB and LoF under one accuracy contract
  (``repro.radio.energy``).
* :func:`feedback_overhead` — on-air command bits per round for the
  three Sec. 4.6.2 encodings, measured on real traces.
* :func:`saturation_correction` — plain vs exact-law-inverting
  estimator in the saturated band (``repro.analysis.saturation``).
* :func:`monitoring_demo` — the continuous monitor tracking a
  population step change.
* :func:`protocol_comparison` — every baseline with a batched engine on
  one shared accuracy contract, whole cells through
  ``repro.sim.protocol_batched``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.saturation import corrected_estimate
from ..config import AccuracyRequirement, PetConfig
from ..core.accuracy import PHI
from ..core.adaptive import AdaptivePetEstimator
from ..core.feedback import FeedbackPetReader, build_feedback_channel
from ..core.path import EstimatingPath
from ..obs.monitor import simulate_monitoring
from ..protocols.fneb import FnebProtocol
from ..protocols.lof import LofProtocol
from ..protocols.pet import PetProtocol
from ..protocols.registry import make_protocol
from ..sim.protocol_batched import run_protocol_cell
from ..sim.workload import WorkloadSpec, build_population
from ..radio.energy import EnergyModel
from ..sim.report import Table
from ..sim.sampled import SampledSimulator
from ..sim.slotsim import SlotLevelSimulator
from ..tags.population import TagPopulation


def adaptive_vs_fixed(
    n: int = 20_000,
    epsilon: float = 0.10,
    delta: float = 0.05,
    trials: int = 100,
    base_seed: int = 91,
) -> Table:
    """Sequential stopping vs the fixed Eq. 20 plan."""
    requirement = AccuracyRequirement(epsilon, delta)
    rounds_used = []
    hits_adaptive = 0
    planned = 0
    for trial in range(trials):
        estimator = AdaptivePetEstimator(
            requirement,
            min_rounds=32,
            rng=np.random.default_rng((base_seed, trial)),
        )
        driver = SampledSimulator(
            n, rng=np.random.default_rng((base_seed, trial, 1))
        )
        result = estimator.run(driver)
        planned = result.rounds_planned
        rounds_used.append(result.rounds_used)
        if abs(result.n_hat - n) <= epsilon * n:
            hits_adaptive += 1
    table = Table(
        f"Extension — sequential vs fixed plan "
        f"(n = {n:,}, eps = {epsilon:.0%}, delta = {delta:.0%}, "
        f"{trials} trials)",
        ["design", "mean rounds", "mean slots", "coverage"],
    )
    table.add_row(
        "fixed (Eq. 20)", planned, planned * 5, f">= {1 - delta:.0%}"
    )
    table.add_row(
        "sequential",
        float(np.mean(rounds_used)),
        float(np.mean(rounds_used)) * 5,
        hits_adaptive / trials,
    )
    return table


def energy_comparison(
    epsilon: float = 0.05, delta: float = 0.01
) -> Table:
    """Per-tag / reader energy for one full estimation per protocol."""
    requirement = AccuracyRequirement(epsilon, delta)
    model = EnergyModel()
    pet, fneb, lof = PetProtocol(), FnebProtocol(), LofProtocol()
    pet_rounds = pet.plan_rounds(requirement)
    fneb_rounds = fneb.plan_rounds(requirement)
    lof_rounds = lof.plan_rounds(requirement)
    rows = [
        # (label, rounds, slots/round, cmd bits/slot, responses/tag,
        #  hashes/round)
        ("PET passive (1-bit)", pet_rounds, 5, 1, 2.0 * pet_rounds, 0.0),
        ("PET active", pet_rounds, 5, 6, 2.0 * pet_rounds, 1.0),
        (
            "PET linear (Alg. 1)",
            pet_rounds,
            17,
            6,
            16.0 * pet_rounds,
            1.0,
        ),
        (
            "FNEB",
            fneb_rounds,
            fneb.slots_per_round(),
            24,
            1.0 * fneb_rounds,
            1.0,
        ),
        (
            "LoF",
            lof_rounds,
            lof.slots_per_round(),
            5,
            1.0 * lof_rounds,
            1.0,
        ),
    ]
    table = Table(
        f"Extension — energy per estimation "
        f"(eps = {epsilon:.0%}, delta = {delta:.0%})",
        ["protocol", "tag energy (uJ)", "reader energy (mJ)"],
    )
    for label, rounds, spr, bits, responses, hashes in rows:
        budget = model.of_plan(rounds, spr, bits, responses, hashes)
        table.add_row(label, budget.tag_nj / 1e3, budget.reader_mj)
    return table


def feedback_overhead(
    n: int = 200, height: int = 16, rounds: int = 50, seed: int = 92
) -> Table:
    """Measured command bits per round for the three encodings."""
    rng = np.random.default_rng(seed)
    population = TagPopulation.random(n, rng)
    table = Table(
        f"Extension — measured command payload "
        f"(n = {n}, H = {height}, {rounds} rounds)",
        ["encoding", "query slots", "command bits", "bits/slot"],
    )
    for encoding in ("mask", "mid"):
        simulator = SlotLevelSimulator(
            population,
            config=PetConfig(
                tree_height=height, passive_tags=True, rounds=rounds
            ),
            rng=np.random.default_rng(seed),
            query_encoding=encoding,
        )
        result = simulator.estimate()
        query_bits = sum(
            event.payload_bits
            for event in simulator.trace
            if not event.command.startswith("start")
        )
        table.add_row(
            encoding,
            result.total_slots,
            query_bits,
            query_bits / result.total_slots,
        )
    # The true stateful 1-bit protocol, on its own channel.
    codes = population.preloaded_codes(height)
    channel = build_feedback_channel(
        codes, height, rng=np.random.default_rng(seed)
    )
    reader = FeedbackPetReader(channel, height=height)
    slots = 0
    for _ in range(rounds):
        path = EstimatingPath.random(height, rng)
        _, used = reader.run_round(path)
        slots += used
    query_bits = sum(
        event.payload_bits
        for event in channel.trace
        if not event.command.startswith("start")
    )
    table.add_row("feedback", slots, query_bits, query_bits / slots)
    return table


def saturation_correction(
    n: int = 50_000,
    heights: tuple[int, ...] = (17, 18, 20, 24),
    rounds: int = 2048,
    seed: int = 93,
) -> Table:
    """Plain vs exact-law-corrected estimator under saturation."""
    table = Table(
        f"Extension — saturation-corrected estimation, n = {n:,}",
        ["H", "plain estimate", "plain error", "corrected estimate",
         "corrected error"],
    )
    for height in heights:
        simulator = SampledSimulator(
            n,
            config=PetConfig(tree_height=height),
            rng=np.random.default_rng((seed, height)),
        )
        depths = simulator.sample_depths(rounds)
        mean_depth = float(depths.mean())
        plain = 2.0**mean_depth / PHI
        corrected = corrected_estimate(mean_depth, height)
        table.add_row(
            height,
            plain,
            f"{abs(plain - n) / n:.1%}",
            corrected,
            f"{abs(corrected - n) / n:.1%}",
        )
    return table


def monitoring_demo(
    sizes: tuple[int, ...] = (
        5_000, 5_000, 5_000, 5_000, 5_000, 5_000,
        12_000, 12_000, 12_000,
    ),
    rounds_per_epoch: int = 512,
    seed: int = 94,
) -> Table:
    """The continuous monitor over a step-changed population."""
    reports = simulate_monitoring(
        list(sizes), rounds_per_epoch, seed=seed
    )
    table = Table(
        "Extension — continuous monitoring with change detection",
        ["epoch", "true n", "estimate", "z-score", "change?"],
    )
    for report, true_n in zip(reports, sizes):
        table.add_row(
            report.epoch,
            true_n,
            report.estimate,
            report.z_score,
            "CHANGE" if report.changed else "",
        )
    return table


def protocol_comparison(
    n: int = 2_000,
    epsilon: float = 0.1,
    delta: float = 0.05,
    repetitions: int = 60,
    base_seed: int = 95,
) -> Table:
    """Every batched baseline on one shared accuracy contract.

    Each protocol plans its own round count for the ``(epsilon,
    delta)`` requirement, then runs ``repetitions`` whole cells through
    its batched engine (bit-identical to the scalar estimate loop);
    saturated repetitions are flagged NaN and reported instead of
    aborting the table.
    """
    requirement = AccuracyRequirement(epsilon, delta)
    population = build_population(
        WorkloadSpec(size=n, seed=base_seed)
    )
    table = Table(
        f"Extension — batched baseline comparison "
        f"(n = {n:,}, eps = {epsilon:.0%}, delta = {delta:.0%}, "
        f"{repetitions} runs)",
        [
            "protocol",
            "rounds",
            "slots/run",
            "mean estimate",
            "coverage",
            "saturated",
        ],
    )
    for name in ("fneb", "lof", "use", "upe", "ezb", "aloha"):
        protocol = make_protocol(name)
        rounds = protocol.plan_rounds(requirement)
        cell = run_protocol_cell(
            protocol,
            population,
            rounds=rounds,
            repetitions=repetitions,
            base_seed=base_seed,
            on_error="nan",
        )
        finite = cell.estimates[np.isfinite(cell.estimates)]
        hits = (
            (np.abs(cell.estimates - n) <= epsilon * n).mean()
            if cell.estimates.size
            else float("nan")
        )
        table.add_row(
            protocol.name,
            rounds,
            cell.slots_per_run,
            float(finite.mean()) if finite.size else float("nan"),
            float(hits),
            cell.saturated_runs,
        )
    return table


def main() -> None:
    """Print every extension experiment."""
    adaptive_vs_fixed().print()
    energy_comparison().print()
    feedback_overhead().print()
    saturation_correction().print()
    monitoring_demo().print()
    protocol_comparison().print()


if __name__ == "__main__":
    main()
