"""Fig. 3 — protocol execution traces, basic vs binary search.

Recreates the paper's worked example: a height-6 PET, 16 tags, and the
estimating path ``r = 000011``.  The basic (Algorithm 1) protocol walks
the path prefix by prefix and needs 5 slots to hit the first idle slot;
the binary-search (Algorithm 3) protocol converges in 2 slots.

The example is executed on the *slot-level* simulator with explicitly
preloaded tag codes, so the printed trace is the literal on-air
exchange, not a re-derivation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PetConfig
from ..core.estimator import PetEstimator
from ..core.path import EstimatingPath
from ..radio.channel import SlottedChannel
from ..radio.events import ChannelTrace
from ..reader.reader import PetReader
from ..tags.pet_tags import PassivePetTag

#: The paper's example: height-6 codes of the 16 tags.  Chosen so the
#: gray node for path 000011 sits at depth 4 (prefixes 0, 00, 000, 0000
#: busy; 00001 idle), reproducing the figure's 5-slot / 2-slot traces.
EXAMPLE_HEIGHT = 6
EXAMPLE_PATH = "000011"
EXAMPLE_CODES = (
    "000000",
    "000001",
    "000100",
    "000111",
    "001010",
    "001101",
    "010010",
    "010111",
    "011001",
    "011100",
    "100011",
    "101001",
    "101110",
    "110010",
    "110111",
    "111100",
)


@dataclass(frozen=True)
class TraceComparison:
    """The two executions of the same round.

    Attributes
    ----------
    basic_trace, binary_trace:
        Full channel traces (round-start broadcast + query slots).
    basic_slots, binary_slots:
        Query slots consumed (the figure's headline numbers: 5 vs 2).
    gray_depth:
        The gray-node depth both protocols must agree on.
    """

    basic_trace: ChannelTrace
    binary_trace: ChannelTrace
    basic_slots: int
    binary_slots: int
    gray_depth: int


def _run_variant(binary_search: bool) -> tuple[ChannelTrace, int, int]:
    channel = SlottedChannel(rng=np.random.default_rng(0))
    for index, code in enumerate(EXAMPLE_CODES):
        tag = PassivePetTag(
            tag_id=index,
            height=EXAMPLE_HEIGHT,
            preloaded_code=int(code, 2),
        )
        channel.attach(tag)
    config = PetConfig(
        tree_height=EXAMPLE_HEIGHT,
        binary_search=binary_search,
        passive_tags=True,
        rounds=1,
    )
    reader = PetReader(channel, config=config)
    path = EstimatingPath.from_string(EXAMPLE_PATH)
    depth, slots = reader.run_round(path, round_index=0)
    return channel.trace, slots, depth


def run() -> TraceComparison:
    """Execute the example under both protocols and package the traces."""
    basic_trace, basic_slots, basic_depth = _run_variant(
        binary_search=False
    )
    binary_trace, binary_slots, binary_depth = _run_variant(
        binary_search=True
    )
    if basic_depth != binary_depth:
        raise AssertionError(
            f"protocol disagreement: basic found depth {basic_depth}, "
            f"binary found {binary_depth}"
        )
    return TraceComparison(
        basic_trace=basic_trace,
        binary_trace=binary_trace,
        basic_slots=basic_slots,
        binary_slots=binary_slots,
        gray_depth=basic_depth,
    )


def estimate_from_example() -> float:
    """One-round estimate from the example (illustrative only)."""
    from ..core.accuracy import estimate_from_depths

    comparison = run()
    return estimate_from_depths([comparison.gray_depth])


def main() -> None:
    """Print the Fig. 3 reproduction."""
    comparison = run()
    print("Fig. 3 — protocol execution on the paper's example")
    print(f"(H = {EXAMPLE_HEIGHT}, 16 tags, estimating path r = "
          f"{EXAMPLE_PATH})\n")
    print("(a) Basic algorithm (linear prefix scan):")
    print(comparison.basic_trace.render())
    print(f"\n    query slots used: {comparison.basic_slots} "
          f"(paper: 5)\n")
    print("(b) Binary search algorithm:")
    print(comparison.binary_trace.render())
    print(f"\n    query slots used: {comparison.binary_slots} "
          f"(paper: 2)")
    print(f"\nBoth locate the gray node at depth "
          f"{comparison.gray_depth} (height "
          f"{EXAMPLE_HEIGHT - comparison.gray_depth}).")


if __name__ == "__main__":
    main()
