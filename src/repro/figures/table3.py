"""Table 3 — total time slots needed by PET, plus the protocol sweep.

With ``H = 32`` the binary-search protocol spends exactly
``ceil(log2 32) = 5`` slots per round (Sec. 5.2: "PET only takes five
time slots to complete each round"), so ``m`` rounds cost ``5 m`` slots.
This driver verifies the per-round figure *empirically* on the sampled
simulator rather than just multiplying constants: the measured mean
slots per round is printed next to the nominal 5.

:func:`protocol_sweep` is the companion comparison sweep: every baseline
protocol with a batched engine (FNEB, LoF, USE, UPE, EZB, ALOHA) over
the same rounds grid, through
:func:`repro.sim.protocol_batched.sweep_protocol_cells` — the workload
``bench_guard --protocols`` prices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PAPER_RUNS_PER_POINT, PetConfig
from ..sim.protocol_batched import (
    ProtocolCellResult,
    ProtocolCellSpec,
    sweep_protocol_cells,
)
from ..sim.sampled import SampledSimulator
from ..sim.report import Table

#: Round counts reported by the paper's Table 3.
DEFAULT_ROUNDS = (8, 16, 32, 64, 128, 256, 512)

#: Population at which the empirical per-round cost is measured.
DEFAULT_N = 50_000


@dataclass(frozen=True)
class Table3Row:
    """Slot totals for one round count."""

    rounds: int
    nominal_slots: int
    measured_slots: float


def run(
    rounds_grid: tuple[int, ...] = DEFAULT_ROUNDS,
    n: int = DEFAULT_N,
    base_seed: int = 42,
) -> list[Table3Row]:
    """Measure total slots for each round count."""
    config = PetConfig()
    slots_per_round = max(1, (config.tree_height - 1).bit_length())
    rows = []
    for rounds in rounds_grid:
        rng = np.random.default_rng((base_seed, rounds))
        simulator = SampledSimulator(n, config=config, rng=rng)
        result = simulator.estimate(rounds=rounds)
        rows.append(
            Table3Row(
                rounds=rounds,
                nominal_slots=slots_per_round * rounds,
                measured_slots=float(result.total_slots),
            )
        )
    return rows


def table(rows: list[Table3Row]) -> Table:
    """Render the Table 3 reproduction."""
    out = Table(
        "Table 3 — total time slots needed for PET (H = 32, "
        "binary search: 5 slots/round)",
        ["rounds m", "slots (5m)", "measured slots"],
    )
    for row in rows:
        out.add_row(row.rounds, row.nominal_slots, row.measured_slots)
    return out


#: Baseline protocols included in the comparison sweep (every registry
#: entry with a batched engine).
SWEEP_PROTOCOLS = ("fneb", "lof", "use", "upe", "ezb", "aloha")

#: Population of the comparison sweep.  The framed zero estimators run
#: their default 1024-slot frames, so the sweep sits at their design
#: load (n ~ f) — at Table 3's n = 50 000 they would saturate in every
#: run (the prior-knowledge drawback Sec. 2 describes; fig6 covers the
#: large-n regime for FNEB/LoF).
SWEEP_N = 1_000

#: Rounds grid for the comparison sweep (subset of Table 3's grid; the
#: baselines' cost per round dwarfs PET's, so the sweep stays bounded).
SWEEP_ROUNDS = (8, 32, 128)


def protocol_sweep_specs(
    n: int = SWEEP_N,
    protocols: tuple[str, ...] = SWEEP_PROTOCOLS,
    rounds_grid: tuple[int, ...] = SWEEP_ROUNDS,
) -> list[ProtocolCellSpec]:
    """The sweep's cell grid: every protocol at every round count."""
    return [
        ProtocolCellSpec(protocol=name, n=n, rounds=rounds)
        for name in protocols
        for rounds in rounds_grid
    ]


def protocol_sweep(
    n: int = SWEEP_N,
    runs: int = PAPER_RUNS_PER_POINT,
    protocols: tuple[str, ...] = SWEEP_PROTOCOLS,
    rounds_grid: tuple[int, ...] = SWEEP_ROUNDS,
    base_seed: int = 42,
    workers: int | None = None,
    progress: bool = False,
) -> list[ProtocolCellResult]:
    """Run the baseline-protocol comparison sweep on the batched tier."""
    return sweep_protocol_cells(
        protocol_sweep_specs(n, protocols, rounds_grid),
        repetitions=runs,
        base_seed=base_seed,
        workers=workers,
        progress=progress,
    )


def protocol_table(results: list[ProtocolCellResult]) -> Table:
    """Render the comparison sweep."""
    out = Table(
        "Baseline-protocol comparison sweep (batched engines)",
        [
            "protocol",
            "rounds",
            "slots/run",
            "mean estimate",
            "rel. std",
            "saturated",
        ],
    )
    for result in results:
        finite = result.estimates[np.isfinite(result.estimates)]
        out.add_row(
            result.protocol,
            result.rounds,
            result.slots_per_run,
            float(finite.mean()) if finite.size else float("nan"),
            (
                float(finite.std() / result.true_n)
                if finite.size and result.true_n
                else float("nan")
            ),
            result.saturated_runs,
        )
    return out


def main() -> None:
    """Print the Table 3 reproduction."""
    table(run()).print()


def protocol_main(
    n: int = SWEEP_N,
    runs: int = PAPER_RUNS_PER_POINT,
    workers: int | None = None,
    progress: bool = False,
) -> None:
    """Print the baseline comparison sweep (CLI ``protocols`` entry)."""
    protocol_table(
        protocol_sweep(
            n=n, runs=runs, workers=workers, progress=progress
        )
    ).print()


if __name__ == "__main__":
    main()
