"""Table 3 — total time slots needed by PET.

With ``H = 32`` the binary-search protocol spends exactly
``ceil(log2 32) = 5`` slots per round (Sec. 5.2: "PET only takes five
time slots to complete each round"), so ``m`` rounds cost ``5 m`` slots.
This driver verifies the per-round figure *empirically* on the sampled
simulator rather than just multiplying constants: the measured mean
slots per round is printed next to the nominal 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PetConfig
from ..sim.sampled import SampledSimulator
from ..sim.report import Table

#: Round counts reported by the paper's Table 3.
DEFAULT_ROUNDS = (8, 16, 32, 64, 128, 256, 512)

#: Population at which the empirical per-round cost is measured.
DEFAULT_N = 50_000


@dataclass(frozen=True)
class Table3Row:
    """Slot totals for one round count."""

    rounds: int
    nominal_slots: int
    measured_slots: float


def run(
    rounds_grid: tuple[int, ...] = DEFAULT_ROUNDS,
    n: int = DEFAULT_N,
    base_seed: int = 42,
) -> list[Table3Row]:
    """Measure total slots for each round count."""
    config = PetConfig()
    slots_per_round = max(1, (config.tree_height - 1).bit_length())
    rows = []
    for rounds in rounds_grid:
        rng = np.random.default_rng((base_seed, rounds))
        simulator = SampledSimulator(n, config=config, rng=rng)
        result = simulator.estimate(rounds=rounds)
        rows.append(
            Table3Row(
                rounds=rounds,
                nominal_slots=slots_per_round * rounds,
                measured_slots=float(result.total_slots),
            )
        )
    return rows


def table(rows: list[Table3Row]) -> Table:
    """Render the Table 3 reproduction."""
    out = Table(
        "Table 3 — total time slots needed for PET (H = 32, "
        "binary search: 5 slots/round)",
        ["rounds m", "slots (5m)", "measured slots"],
    )
    for row in rows:
        out.add_row(row.rounds, row.nominal_slots, row.measured_slots)
    return out


def main() -> None:
    """Print the Table 3 reproduction."""
    table(run()).print()


if __name__ == "__main__":
    main()
