"""Experiment drivers: one module per paper table/figure, plus ablations.

Each driver exposes a ``run(...)`` function returning
:class:`~repro.sim.report.Table` objects (and raw arrays where useful),
and is callable through ``python -m repro <experiment>``.  The
``benchmarks/`` suite calls the same ``run`` functions, so CLI output
and benchmark output cannot drift apart.

Scaling knobs (``runs=``, ``sizes=``...) default to the paper's settings
(300 runs per point, n up to 50 000) but accept smaller values so the
benchmark suite stays fast.
"""

from . import (
    ablations,
    extensions,
    fig3_trace,
    fig4,
    fig5,
    fig6,
    fig7,
    table3,
)

__all__ = [
    "fig3_trace",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table3",
    "ablations",
    "extensions",
]
