"""Fig. 6 — distribution of estimates at equal slot budgets.

Three panels, all at n = 50 000 with the (epsilon = 5 %, delta = 1 %)
requirement:

* (a) PET: theoretical sampling distribution (log-normal, from the
  exact gray-depth moments) vs the simulated histogram — they should
  coincide, and >= 99 % of estimates should land inside
  [47 500, 52 500];
* (b) FNEB, granted *the same total slot budget* as PET (so
  ``floor(pet_slots / fneb_slots_per_round)`` rounds);
* (c) LoF under the same equal-budget rule.

The paper reports > 99 % of PET estimates inside the interval vs ~90 %
for FNEB and LoF at equal time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.theory import estimate_distribution, within_interval_probability
from ..config import AccuracyRequirement, PetConfig
from ..protocols.fneb import FnebProtocol
from ..protocols.lof import LofProtocol
from ..protocols.pet import PetProtocol
from ..sim.report import Table, ascii_histogram
from ..sim.sampled import SampledSimulator

DEFAULT_N = 50_000
DEFAULT_RUNS = 1_000


@dataclass(frozen=True)
class DistributionPanel:
    """One protocol's estimate distribution under the shared budget.

    Attributes
    ----------
    protocol:
        Display name.
    rounds:
        Rounds granted under the equal-slot budget.
    slots:
        Total slots actually consumed.
    estimates:
        One estimate per simulated run; saturated runs (the estimator's
        inversion undefined, e.g. LoF's mean-zero case) are flagged
        ``NaN`` rather than aborting the figure.
    within_fraction:
        Fraction inside the requirement's confidence interval
        (``NaN`` estimates count as outside).
    saturated:
        Number of ``NaN``-flagged runs.
    """

    protocol: str
    rounds: int
    slots: int
    estimates: np.ndarray
    within_fraction: float
    saturated: int = 0


@dataclass(frozen=True)
class Fig6Result:
    """All three panels plus the PET theoretical overlay."""

    pet: DistributionPanel
    fneb: DistributionPanel
    lof: DistributionPanel
    theory_grid: np.ndarray
    theory_pdf: np.ndarray
    theory_within: float
    requirement: AccuracyRequirement
    n: int


def _within(estimates: np.ndarray, requirement: AccuracyRequirement,
            n: int) -> float:
    low, high = requirement.interval(n)
    return float(((estimates >= low) & (estimates <= high)).mean())


def run(
    n: int = DEFAULT_N,
    runs: int = DEFAULT_RUNS,
    requirement: AccuracyRequirement | None = None,
    base_seed: int = 6,
) -> Fig6Result:
    """Simulate all three protocols at PET's planned slot budget."""
    requirement = requirement or AccuracyRequirement(0.05, 0.01)
    pet_protocol = PetProtocol()
    fneb_protocol = FnebProtocol()
    lof_protocol = LofProtocol()

    pet_rounds = pet_protocol.plan_rounds(requirement)
    pet_budget = pet_rounds * pet_protocol.slots_per_round()
    fneb_rounds = max(1, pet_budget // fneb_protocol.slots_per_round())
    lof_rounds = max(1, pet_budget // lof_protocol.slots_per_round())

    rng = np.random.default_rng((base_seed, n))
    pet_sim = SampledSimulator(n, config=PetConfig(), rng=rng)
    pet_estimates = pet_sim.estimate_batch(pet_rounds, runs)

    # Batched samplers: bit-identical to the historical per-run loops
    # (same word stream from the shared rng), with saturated runs
    # flagged NaN instead of aborting the figure.
    fneb_batch = fneb_protocol.estimate_sampled_batch(
        n, fneb_rounds, runs, rng
    )
    lof_batch = lof_protocol.estimate_sampled_batch(
        n, lof_rounds, runs, rng
    )

    height = PetConfig().tree_height
    grid, pdf = estimate_distribution(n, height, pet_rounds)
    theory_within = within_interval_probability(
        n, height, pet_rounds, requirement.epsilon
    )
    return Fig6Result(
        pet=DistributionPanel(
            protocol="PET",
            rounds=pet_rounds,
            slots=pet_budget,
            estimates=pet_estimates,
            within_fraction=_within(pet_estimates, requirement, n),
        ),
        fneb=DistributionPanel(
            protocol="FNEB",
            rounds=fneb_rounds,
            slots=fneb_rounds * fneb_protocol.slots_per_round(),
            estimates=fneb_batch.estimates,
            within_fraction=_within(
                fneb_batch.estimates, requirement, n
            ),
            saturated=fneb_batch.saturated_runs,
        ),
        lof=DistributionPanel(
            protocol="LoF",
            rounds=lof_rounds,
            slots=lof_rounds * lof_protocol.slots_per_round(),
            estimates=lof_batch.estimates,
            within_fraction=_within(lof_batch.estimates, requirement, n),
            saturated=lof_batch.saturated_runs,
        ),
        theory_grid=grid,
        theory_pdf=pdf,
        theory_within=theory_within,
        requirement=requirement,
        n=n,
    )


def summary_table(result: Fig6Result) -> Table:
    """Comparison table across the three panels."""
    out = Table(
        f"Fig. 6 — estimate distributions at PET's slot budget "
        f"(n = {result.n:,}, eps = {result.requirement.epsilon:.0%}, "
        f"delta = {result.requirement.delta:.0%})",
        [
            "protocol",
            "rounds",
            "slots",
            "mean estimate",
            "std",
            "within-CI",
            "saturated",
        ],
    )
    for panel in (result.pet, result.fneb, result.lof):
        out.add_row(
            panel.protocol,
            panel.rounds,
            panel.slots,
            float(np.nanmean(panel.estimates)),
            float(np.nanstd(panel.estimates)),
            panel.within_fraction,
            panel.saturated,
        )
    return out


def main(runs: int = DEFAULT_RUNS) -> None:
    """Print the Fig. 6 reproduction with ASCII histograms."""
    result = run(runs=runs)
    summary_table(result).print()
    low, high = result.requirement.interval(result.n)
    print(
        f"theoretical PET within-CI probability: "
        f"{result.theory_within:.4f} (paper: > 0.99)\n"
    )
    lo, hi = 0.85 * result.n, 1.15 * result.n
    for panel in (result.pet, result.fneb, result.lof):
        saturation = (
            f", {panel.saturated} saturated run(s) flagged NaN"
            if panel.saturated
            else ""
        )
        print(
            f"({panel.protocol}) histogram of {panel.estimates.size} "
            f"estimates, CI = [{low:,.0f}, {high:,.0f}]{saturation}"
        )
        finite = panel.estimates[np.isfinite(panel.estimates)]
        print(ascii_histogram(finite, lo=lo, hi=hi))
        print()


if __name__ == "__main__":
    main()
