"""Fig. 4 — PET accuracy and deviation vs number of estimation rounds.

Three panels, all over rounds m in {8, 16, 32, 64, 128, 256} and
populations n in {1 000, 5 000, 10 000, 50 000}, each cell averaged over
300 independent runs (the paper's setup):

* (a) estimation accuracy ``mean(n_hat) / n`` — approaches 1 by m ~ 32-64
  and is insensitive to n;
* (b) standard deviation ``sqrt(E[(n_hat - n)^2])`` — shrinks with
  ``1/sqrt(m)`` and scales with n;
* (c) normalized standard deviation — collapses across n, ~0.2 at m = 64.

Runs on the sampled tier (exact gray-depth law), which is what makes
300 x 24 cells tractable in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.stats import SeriesSummary
from ..config import PAPER_RUNS_PER_POINT, PetConfig
from ..core.accuracy import SIGMA_H, estimate_std
from ..obs.registry import get_registry
from ..sim.experiment import ExperimentRunner
from ..sim.report import Table
from ..sim.workload import PAPER_TAG_COUNTS

#: Round counts swept by the figure.
DEFAULT_ROUNDS = (8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class Fig4Cell:
    """One (n, m) cell of the sweep with its summary statistics."""

    n: int
    rounds: int
    summary: SeriesSummary
    predicted_normalized_std: float


def run(
    sizes: tuple[int, ...] = PAPER_TAG_COUNTS,
    rounds_grid: tuple[int, ...] = DEFAULT_ROUNDS,
    runs: int = PAPER_RUNS_PER_POINT,
    base_seed: int = 41,
    workers: int | None = None,
    progress: bool = False,
) -> list[Fig4Cell]:
    """Run the full sweep; returns one cell per (n, m) pair.

    ``workers`` fans the per-``n`` cells of each rounds value out over
    worker processes (see :meth:`ExperimentRunner.sweep`); results are
    bit-identical for any worker count.  ``progress`` renders a live
    status line per sweep (one sweep per rounds value).
    """
    registry = get_registry()
    runner = ExperimentRunner(base_seed=base_seed, repetitions=runs)
    config = PetConfig()
    cells = []
    with registry.span(
        "figure.fig4",
        cells=len(sizes) * len(rounds_grid),
        runs=runs,
    ):
        for rounds in rounds_grid:
            for n, repeated in zip(
                sizes,
                runner.sweep(
                    sizes,
                    config,
                    rounds,
                    workers=workers,
                    progress=progress,
                ),
            ):
                cells.append(
                    Fig4Cell(
                        n=n,
                        rounds=rounds,
                        summary=repeated.summary(),
                        predicted_normalized_std=(
                            estimate_std(n, rounds) / n
                        ),
                    )
                )
    return cells


def tables(cells: list[Fig4Cell]) -> tuple[Table, Table, Table]:
    """Render the three panels as tables (rows = m, columns = n)."""
    sizes = sorted({cell.n for cell in cells})
    rounds_grid = sorted({cell.rounds for cell in cells})
    by_key = {(cell.n, cell.rounds): cell for cell in cells}

    headers = ["rounds m"] + [f"n={n:,}" for n in sizes]
    table_a = Table("Fig. 4a — estimation accuracy (n_hat / n)", headers)
    table_b = Table("Fig. 4b — standard deviation of n_hat", headers)
    table_c = Table(
        "Fig. 4c — normalized standard deviation "
        "(theory: sigma_h ln2 / sqrt(m))",
        headers + ["theory"],
    )
    for rounds in rounds_grid:
        row_a: list[object] = [rounds]
        row_b: list[object] = [rounds]
        row_c: list[object] = [rounds]
        for n in sizes:
            cell = by_key[(n, rounds)]
            row_a.append(cell.summary.accuracy)
            row_b.append(cell.summary.std)
            row_c.append(cell.summary.normalized_std)
        row_c.append(by_key[(sizes[0], rounds)].predicted_normalized_std)
        table_a.add_row(*row_a)
        table_b.add_row(*row_b)
        table_c.add_row(*row_c)
    return table_a, table_b, table_c


def main(
    runs: int = PAPER_RUNS_PER_POINT,
    workers: int | None = None,
    progress: bool = False,
) -> None:
    """Print all three panels at the paper's scale."""
    cells = run(runs=runs, workers=workers, progress=progress)
    for table in tables(cells):
        table.print()
    print(
        f"(sigma(h) = {SIGMA_H:.4f}; the paper reports ~0.2 normalized "
        f"deviation at m = 64 — theory gives "
        f"{SIGMA_H * 0.6931 / 8:.3f})"
    )


if __name__ == "__main__":
    main()
