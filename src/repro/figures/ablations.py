"""Ablation experiments beyond the paper's tables (DESIGN.md index).

* :func:`passive_vs_active` — does reusing one preloaded code across all
  rounds (Sec. 4.5) degrade accuracy relative to fresh per-round codes?
  The paper argues the path randomness yields "near independent"
  instances; this measures how near.
* :func:`height_sensitivity` — the hash-saturation regime: what happens
  to the estimate when ``2^H`` is not ``>> n`` (Eq. 1's boundary).
* :func:`search_cost` — per-round slot cost of the linear (Alg. 1) scan
  vs binary (Alg. 3) search as ``n`` scales: O(log n) vs O(log log n).
* :func:`loss_robustness` — estimate bias under per-response erasure
  (the paper assumes a lossless channel).
* :func:`identification_vs_estimation` — exact counting (Aloha-Q, tree
  walking) slot cost vs PET's, the motivating gap of the introduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ChannelConfig, PetConfig
from ..core.accuracy import minimum_height
from ..protocols.aloha import FramedAlohaIdentification
from ..protocols.pet import PetProtocol
from ..protocols.treewalk import TreeWalkIdentification
from ..sim.experiment import ExperimentRunner
from ..sim.report import Table
from ..sim.sampled import SampledSimulator
from ..sim.slotsim import SlotLevelSimulator
from ..sim.workload import WorkloadSpec
from ..tags.population import TagPopulation


@dataclass(frozen=True)
class AblationRow:
    """Generic (label -> metrics) row shared by the ablation tables."""

    label: str
    metrics: dict[str, float]


def passive_vs_active(
    n: int = 10_000,
    rounds: int = 128,
    runs: int = 200,
    base_seed: int = 71,
) -> Table:
    """Accuracy/std of the passive variant vs the active one."""
    runner = ExperimentRunner(base_seed=base_seed, repetitions=runs)
    spec = WorkloadSpec(size=n, seed=base_seed)
    out = Table(
        f"Ablation — passive (fixed codes) vs active (fresh codes), "
        f"n = {n:,}, m = {rounds}",
        ["variant", "accuracy", "normalized std", "runs"],
    )
    for label, passive in (("active", False), ("passive", True)):
        config = PetConfig(passive_tags=passive)
        repeated = runner.run_vectorized(spec, config, rounds)
        summary = repeated.summary()
        out.add_row(label, summary.accuracy, summary.normalized_std, runs)
    return out


def height_sensitivity(
    n: int = 50_000,
    heights: tuple[int, ...] = (16, 18, 20, 24, 32),
    rounds: int = 256,
    runs: int = 300,
    base_seed: int = 72,
) -> Table:
    """Estimation quality as the tree height approaches saturation."""
    out = Table(
        f"Ablation — tree height H sensitivity, n = {n:,} "
        f"(recommended minimum H = {minimum_height(n)})",
        ["H", "2^H / n", "accuracy", "normalized std"],
    )
    for height in heights:
        rng = np.random.default_rng((base_seed, height))
        simulator = SampledSimulator(
            n, config=PetConfig(tree_height=height), rng=rng
        )
        estimates = simulator.estimate_batch(rounds, runs)
        accuracy = float(estimates.mean()) / n
        normalized_std = float(
            np.sqrt(np.mean((estimates - n) ** 2))
        ) / n
        out.add_row(
            height, (2.0**height) / n, accuracy, normalized_std
        )
    return out


def search_cost(
    sizes: tuple[int, ...] = (100, 1_000, 10_000, 100_000, 1_000_000),
    rounds: int = 200,
    base_seed: int = 73,
) -> Table:
    """Mean slots per round: linear scan vs binary search."""
    out = Table(
        "Ablation — per-round slot cost, Algorithm 1 (linear, O(log n)) "
        "vs Algorithm 3 (binary, O(log log n))",
        ["n", "linear slots/round", "binary slots/round"],
    )
    for n in sizes:
        row = [n]
        for binary in (False, True):
            rng = np.random.default_rng((base_seed, n, int(binary)))
            simulator = SampledSimulator(
                n, config=PetConfig(binary_search=binary), rng=rng
            )
            result = simulator.estimate(rounds=rounds)
            row.append(result.total_slots / rounds)
        out.add_row(*row)
    return out


def loss_robustness(
    n: int = 2_000,
    loss_probabilities: tuple[float, ...] = (0.0, 0.01, 0.05, 0.10),
    rounds: int = 64,
    runs: int = 30,
    base_seed: int = 74,
) -> Table:
    """PET estimate bias under per-response erasure (slot-level sim).

    Loss can only flip a busy slot to idle (never the reverse), so the
    gray depth is under-read and the estimate biases low; the table
    quantifies by how much.
    """
    out = Table(
        f"Ablation — channel loss robustness, n = {n:,}, m = {rounds} "
        f"(slot-level simulation)",
        ["loss prob", "accuracy", "normalized std"],
    )
    for loss in loss_probabilities:
        estimates = []
        for run_index in range(runs):
            rng = np.random.default_rng(
                (base_seed, int(loss * 1000), run_index)
            )
            population = TagPopulation.random(n, rng)
            simulator = SlotLevelSimulator(
                population,
                config=PetConfig(rounds=rounds),
                channel_config=ChannelConfig(loss_probability=loss),
                rng=rng,
            )
            estimates.append(simulator.estimate().n_hat)
        values = np.asarray(estimates)
        out.add_row(
            f"{loss:.2f}",
            float(values.mean()) / n,
            float(np.sqrt(np.mean((values - n) ** 2))) / n,
        )
    return out


def identification_vs_estimation(
    sizes: tuple[int, ...] = (1_000, 5_000, 20_000),
    base_seed: int = 75,
) -> Table:
    """Slots for exact identification vs PET estimation (eps=5%, d=1%)."""
    from ..config import AccuracyRequirement

    requirement = AccuracyRequirement(0.05, 0.01)
    pet = PetProtocol()
    pet_slots = pet.planned_slots(requirement)
    out = Table(
        "Ablation — exact identification vs estimation "
        "(PET at eps = 5%, delta = 1%)",
        ["n", "Aloha-Q slots", "TreeWalk slots", "PET slots",
         "PET/TreeWalk"],
    )
    for n in sizes:
        rng = np.random.default_rng((base_seed, n))
        population = TagPopulation.random(n, rng)
        aloha_slots = FramedAlohaIdentification().identify(
            population, rng
        ).total_slots
        tree_slots = TreeWalkIdentification().identify(
            population
        ).total_slots
        out.add_row(
            n, aloha_slots, tree_slots, pet_slots,
            pet_slots / tree_slots,
        )
    return out


def main() -> None:
    """Print every ablation at moderate scale."""
    passive_vs_active().print()
    height_sensitivity().print()
    search_cost().print()
    loss_robustness().print()
    identification_vs_estimation().print()


if __name__ == "__main__":
    main()
