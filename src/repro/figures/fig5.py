"""Tables 4/5 and Fig. 5 — estimating time to meet an accuracy target.

For each accuracy requirement the three protocols plan their round
counts from their own per-round statistics (PET: Eq. 20 with
``sigma(h) = 1.87``; FNEB: CLT on the first-nonempty index; LoF: CLT on
the first-empty bucket) and the total slot budget is
``rounds x slots_per_round``:

* Table 4 / Fig. 5a: sweep the confidence interval ``epsilon``
  (delta = 1 %);
* Table 5 / Fig. 5b: sweep the error probability ``delta``
  (epsilon = 5 %).

An optional empirical column validates each plan by running the planned
rounds on the sampled simulators and reporting the fraction of runs
inside the interval — which should be >= 1 - delta.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AccuracyRequirement, PetConfig
from ..protocols.fneb import FnebProtocol
from ..protocols.lof import LofProtocol
from ..protocols.pet import PetProtocol
from ..sim.report import Table
from ..sim.sampled import SampledSimulator

#: Coarse grids from the paper's Tables 4 and 5.
TABLE4_EPSILONS = (0.05, 0.10, 0.15, 0.20)
TABLE5_DELTAS = (0.01, 0.05, 0.10, 0.20)

#: Fine-grained sweeps of Fig. 5a / 5b.
FIG5A_EPSILONS = (0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20)
FIG5B_DELTAS = (0.01, 0.02, 0.05, 0.08, 0.10, 0.15, 0.20)

#: The paper's evaluation population for these comparisons.
DEFAULT_N = 50_000


@dataclass(frozen=True)
class PlanRow:
    """Planned cost of the three protocols for one requirement."""

    epsilon: float
    delta: float
    pet_rounds: int
    pet_slots: int
    fneb_slots: int
    lof_slots: int
    pet_within: float

    @property
    def pet_over_fneb(self) -> float:
        """PET's estimating time as a fraction of FNEB's."""
        return self.pet_slots / self.fneb_slots

    @property
    def pet_over_lof(self) -> float:
        """PET's estimating time as a fraction of LoF's."""
        return self.pet_slots / self.lof_slots


def _validate_pet(
    requirement: AccuracyRequirement,
    rounds: int,
    n: int,
    runs: int,
    seed: int,
) -> float:
    """Fraction of sampled PET runs inside the confidence interval."""
    if runs <= 0:
        return float("nan")
    rng = np.random.default_rng(
        (seed, int(requirement.epsilon * 1e6), int(requirement.delta * 1e6))
    )
    simulator = SampledSimulator(n, config=PetConfig(), rng=rng)
    estimates = simulator.estimate_batch(rounds, runs)
    low, high = requirement.interval(n)
    return float(((estimates >= low) & (estimates <= high)).mean())


def run(
    requirements: list[AccuracyRequirement],
    n: int = DEFAULT_N,
    validation_runs: int = 300,
    base_seed: int = 5,
) -> list[PlanRow]:
    """Plan (and optionally validate) all three protocols per target."""
    pet, fneb, lof = PetProtocol(), FnebProtocol(), LofProtocol()
    rows = []
    for requirement in requirements:
        pet_rounds = pet.plan_rounds(requirement)
        rows.append(
            PlanRow(
                epsilon=requirement.epsilon,
                delta=requirement.delta,
                pet_rounds=pet_rounds,
                pet_slots=pet.planned_slots(requirement),
                fneb_slots=fneb.planned_slots(requirement),
                lof_slots=lof.planned_slots(requirement),
                pet_within=_validate_pet(
                    requirement, pet_rounds, n, validation_runs, base_seed
                ),
            )
        )
    return rows


def epsilon_sweep(
    epsilons: tuple[float, ...] = TABLE4_EPSILONS,
    delta: float = 0.01,
    **kwargs: object,
) -> list[PlanRow]:
    """Table 4 / Fig. 5a sweep (varying epsilon)."""
    requirements = [AccuracyRequirement(e, delta) for e in epsilons]
    return run(requirements, **kwargs)  # type: ignore[arg-type]


def delta_sweep(
    deltas: tuple[float, ...] = TABLE5_DELTAS,
    epsilon: float = 0.05,
    **kwargs: object,
) -> list[PlanRow]:
    """Table 5 / Fig. 5b sweep (varying delta)."""
    requirements = [AccuracyRequirement(epsilon, d) for d in deltas]
    return run(requirements, **kwargs)  # type: ignore[arg-type]


def table(rows: list[PlanRow], title: str, vary: str) -> Table:
    """Render one sweep as a paper-style table."""
    out = Table(
        title,
        [
            vary,
            "PET rounds",
            "PET slots",
            "FNEB slots",
            "LoF slots",
            "PET/FNEB",
            "PET/LoF",
            "PET within-CI",
        ],
    )
    for row in rows:
        varied = row.epsilon if vary == "epsilon" else row.delta
        out.add_row(
            f"{varied:.3f}",
            row.pet_rounds,
            row.pet_slots,
            row.fneb_slots,
            row.lof_slots,
            row.pet_over_fneb,
            row.pet_over_lof,
            row.pet_within,
        )
    return out


def main() -> None:
    """Print Tables 4/5 and the fine Fig. 5 sweeps."""
    table(
        epsilon_sweep(),
        "Table 4 — total slots to meet the accuracy requirement, "
        "varying epsilon (delta = 1%, n = 50,000)",
        "epsilon",
    ).print()
    table(
        delta_sweep(),
        "Table 5 — total slots to meet the accuracy requirement, "
        "varying delta (epsilon = 5%, n = 50,000)",
        "delta",
    ).print()
    table(
        epsilon_sweep(epsilons=FIG5A_EPSILONS, validation_runs=0),
        "Fig. 5a — fine epsilon sweep (delta = 1%)",
        "epsilon",
    ).print()
    table(
        delta_sweep(deltas=FIG5B_DELTAS, validation_runs=0),
        "Fig. 5b — fine delta sweep (epsilon = 5%)",
        "delta",
    ).print()
    print(
        "Paper's claim: PET needs ~35-43% of FNEB/LoF estimating time "
        "(Sec. 5.3)."
    )


if __name__ == "__main__":
    main()
