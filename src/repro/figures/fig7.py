"""Fig. 7 — per-tag memory for preloaded random codes (log scale).

For passive operation, the randomness each protocol needs per round
must be preloaded at manufacturing.  PET preloads one 32-bit code
regardless of the accuracy target; FNEB and LoF need one draw per round,
so their footprint is ``32 x m(epsilon, delta)`` bits and grows as the
target tightens:

* (a) sweep epsilon at delta = 1 %;
* (b) sweep delta at epsilon = 5 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AccuracyRequirement
from ..protocols.fneb import FnebProtocol
from ..protocols.lof import LofProtocol
from ..protocols.pet import PetProtocol
from ..sim.report import Table
from ..tags.memory import MemoryModel
from .fig5 import FIG5A_EPSILONS, FIG5B_DELTAS


@dataclass(frozen=True)
class MemoryRow:
    """Per-tag preloaded bits for one accuracy requirement."""

    epsilon: float
    delta: float
    pet_bits: int
    fneb_bits: int
    lof_bits: int


def run(requirements: list[AccuracyRequirement]) -> list[MemoryRow]:
    """Compute preloaded-memory footprints for each requirement."""
    model = MemoryModel(code_bits=32)
    pet, fneb, lof = PetProtocol(), FnebProtocol(), LofProtocol()
    rows = []
    for requirement in requirements:
        rows.append(
            MemoryRow(
                epsilon=requirement.epsilon,
                delta=requirement.delta,
                pet_bits=model.pet(pet.plan_rounds(requirement))
                .preloaded_bits,
                fneb_bits=model.fneb(fneb.plan_rounds(requirement))
                .preloaded_bits,
                lof_bits=model.lof(lof.plan_rounds(requirement))
                .preloaded_bits,
            )
        )
    return rows


def epsilon_sweep(
    epsilons: tuple[float, ...] = FIG5A_EPSILONS, delta: float = 0.01
) -> list[MemoryRow]:
    """Fig. 7a sweep."""
    return run([AccuracyRequirement(e, delta) for e in epsilons])


def delta_sweep(
    deltas: tuple[float, ...] = FIG5B_DELTAS, epsilon: float = 0.05
) -> list[MemoryRow]:
    """Fig. 7b sweep."""
    return run([AccuracyRequirement(epsilon, d) for d in deltas])


def table(rows: list[MemoryRow], title: str, vary: str) -> Table:
    """Render one sweep, including the log2 columns the figure plots."""
    import math

    out = Table(
        title,
        [
            vary,
            "PET bits",
            "FNEB bits",
            "LoF bits",
            "log2(FNEB/PET)",
            "log2(LoF/PET)",
        ],
    )
    for row in rows:
        varied = row.epsilon if vary == "epsilon" else row.delta
        out.add_row(
            f"{varied:.3f}",
            row.pet_bits,
            row.fneb_bits,
            row.lof_bits,
            math.log2(row.fneb_bits / row.pet_bits),
            math.log2(row.lof_bits / row.pet_bits),
        )
    return out


def empirical_coverage(
    requirement: AccuracyRequirement,
    n: int = 10_000,
    runs: int = 200,
    base_seed: int = 7,
) -> dict[str, float]:
    """Validate the planned round counts the memory figure prices.

    Fig. 7 converts ``plan_rounds`` straight into preloaded bits; this
    helper checks those plans actually deliver the requirement, running
    FNEB and LoF at their planned round counts on the batched sampled
    tier and reporting the within-CI fraction per protocol (``NaN``-
    saturated runs count as misses).
    """
    low, high = requirement.interval(n)
    coverage: dict[str, float] = {}
    for protocol in (FnebProtocol(), LofProtocol()):
        rounds = protocol.plan_rounds(requirement)
        rng = np.random.default_rng((base_seed, n, rounds))
        batch = protocol.estimate_sampled_batch(n, rounds, runs, rng)
        hits = (batch.estimates >= low) & (batch.estimates <= high)
        coverage[protocol.name] = float(hits.mean())
    return coverage


def main(validate: bool = False) -> None:
    """Print both Fig. 7 panels."""
    table(
        epsilon_sweep(),
        "Fig. 7a — per-tag preloaded memory vs epsilon (delta = 1%)",
        "epsilon",
    ).print()
    table(
        delta_sweep(),
        "Fig. 7b — per-tag preloaded memory vs delta (epsilon = 5%)",
        "delta",
    ).print()
    print(
        "PET stays at one 32-bit code; FNEB/LoF grow linearly with the "
        "round count (Sec. 4.5 / Fig. 7)."
    )
    if validate:
        requirement = AccuracyRequirement(0.05, 0.01)
        coverage = empirical_coverage(requirement)
        for name, fraction in coverage.items():
            print(
                f"{name}: planned rounds deliver {fraction:.1%} "
                f"within-CI coverage (target >= "
                f"{1 - requirement.delta:.0%})"
            )


if __name__ == "__main__":
    main()
