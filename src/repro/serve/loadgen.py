"""Traffic generation for the estimation service.

Two arrival processes, following the RFID-simulation idiom of
uncoordinated versus alarm traffic:

* ``poisson`` — independent arrivals at a mean ``rate`` per second
  (exponential inter-arrival times), the steady-state many-readers
  model;
* ``bursty`` — ``burst_size`` simultaneous arrivals every
  ``burst_interval`` seconds, the synchronized alarm/inventory-sweep
  model that stresses the coalescing scheduler hardest (and rewards
  it most: one burst is one micro-batch).

Schedules are deterministic functions of the config seed: request
seeds, tenants, and arrival times all derive from one generator, so a
load run is replayable.  Tenants model independent reader fields —
each tenant's requests share a ``population_seed``, which is what lets
the service cache the synthesized population per field and fuse that
tenant's requests into shared kernel calls.

Use :func:`run_load` from synchronous code (the CLI and CI smoke test
do), or :func:`build_schedule` + :func:`drive` against an already
running service.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..api import EstimateRequest, EstimateResponse
from ..errors import ConfigurationError
from ..obs.registry import MetricsRegistry
from .service import EstimationService, ServiceConfig

#: Arrival patterns :func:`build_schedule` understands.
PATTERNS = ("poisson", "bursty")


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run.

    Attributes
    ----------
    requests:
        Total requests to generate.
    pattern:
        Arrival process, one of :data:`PATTERNS`.
    rate:
        Mean arrivals per second (``poisson``).
    burst_size / burst_interval:
        Requests per burst and seconds between bursts (``bursty``).
    tenants:
        Number of reader fields; requests round-robin across them and
        each field shares one ``population_seed``.
    population:
        True cardinality per reader field.
    rounds:
        Estimation rounds per request.
    protocol:
        Registry name every request uses.
    deadline:
        Optional relative deadline stamped on every request.
    seed:
        Root of all schedule randomness (arrivals and request seeds).
    unique_seeds:
        When set, only this many distinct request identities are
        generated and the stream cycles through them — request
        ``index`` replays identity ``index % unique_seeds`` exactly
        (same seed, tenant, and population), which makes the repeats
        idempotent result-cache hits.  ``None`` (default) keeps every
        request distinct.
    """

    requests: int = 200
    pattern: str = "poisson"
    rate: float = 500.0
    burst_size: int = 16
    burst_interval: float = 0.02
    tenants: int = 4
    population: int = 2_000
    rounds: int = 64
    protocol: str = "pet"
    deadline: float | None = None
    seed: int = 7
    unique_seeds: int | None = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigurationError(
                f"requests must be >= 1, got {self.requests}"
            )
        if self.pattern not in PATTERNS:
            raise ConfigurationError(
                f"pattern must be one of {PATTERNS}, "
                f"got {self.pattern!r}"
            )
        if self.rate <= 0:
            raise ConfigurationError(
                f"rate must be > 0, got {self.rate}"
            )
        if self.burst_size < 1:
            raise ConfigurationError(
                f"burst_size must be >= 1, got {self.burst_size}"
            )
        if self.burst_interval < 0:
            raise ConfigurationError(
                f"burst_interval must be >= 0, got {self.burst_interval}"
            )
        if self.tenants < 1:
            raise ConfigurationError(
                f"tenants must be >= 1, got {self.tenants}"
            )
        if self.unique_seeds is not None and self.unique_seeds < 1:
            raise ConfigurationError(
                f"unique_seeds must be >= 1 when given, got "
                f"{self.unique_seeds}"
            )


def build_schedule(
    config: LoadgenConfig,
) -> list[tuple[float, EstimateRequest]]:
    """The deterministic ``(arrival_time, request)`` schedule."""
    rng = np.random.default_rng(config.seed)
    if config.pattern == "poisson":
        gaps = rng.exponential(1.0 / config.rate, size=config.requests)
        arrivals = np.cumsum(gaps)
    else:
        bursts = math.ceil(config.requests / config.burst_size)
        arrivals = np.repeat(
            np.arange(bursts) * config.burst_interval,
            config.burst_size,
        )[: config.requests]
    request_seeds = rng.integers(
        0, 2**63, size=config.requests, dtype=np.int64
    )
    schedule = []
    for index in range(config.requests):
        # With unique_seeds set, the whole request identity (seed,
        # tenant, population) is a function of the cycled identity —
        # repeats are exact idempotent replays, i.e. cache hits.
        identity = (
            index % config.unique_seeds
            if config.unique_seeds is not None
            else index
        )
        tenant_index = identity % config.tenants
        request = EstimateRequest(
            population=config.population,
            protocol=config.protocol,
            seed=int(request_seeds[identity]),
            population_seed=1_000 + tenant_index,
            rounds=config.rounds,
            tenant=f"tenant-{tenant_index}",
            deadline=config.deadline,
            request_id=f"req-{index:05d}",
        )
        schedule.append((float(arrivals[index]), request))
    return schedule


async def drive(
    service: EstimationService,
    schedule: list[tuple[float, EstimateRequest]],
    time_scale: float = 1.0,
) -> list[EstimateResponse]:
    """Submit a schedule against a running service at its own pace.

    Each request is submitted when its (scaled) arrival time comes up,
    from its own task — so a burst genuinely lands concurrently.
    ``time_scale`` compresses (<1) or stretches (>1) the schedule.
    """
    start = time.perf_counter()

    async def _one(
        arrival: float, request: EstimateRequest
    ) -> EstimateResponse:
        delay = arrival * time_scale - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        return await service.submit(request)

    return list(
        await asyncio.gather(
            *(
                _one(arrival, request)
                for arrival, request in schedule
            )
        )
    )


@dataclass
class LoadReport:
    """Outcome of one load run: the request-level SLO view.

    ``p50_seconds``/``p99_seconds`` are read from the registry's
    ``serve.request.latency_seconds`` histogram — the same fixed log2
    bucket grid the OpenMetrics export carries, so the report and a
    Prometheus scrape agree.
    """

    requests: int
    wall_seconds: float
    by_status: dict[str, int] = field(default_factory=dict)
    by_tenant: dict[str, int] = field(default_factory=dict)
    p50_seconds: float = float("nan")
    p99_seconds: float = float("nan")
    shards: int = 1
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def throughput(self) -> float:
        """Answered requests per second of wall time."""
        if self.wall_seconds <= 0:
            return float("nan")
        return self.requests / self.wall_seconds

    @property
    def failures(self) -> int:
        """Responses that carried neither an estimate nor backpressure.

        ``error`` is the service's 5xx class; ``ok``, ``degraded``,
        ``rejected``, and ``expired`` are all deliberate answers.
        """
        return self.by_status.get("error", 0)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready view (the CLI and CI smoke step print this)."""
        return {
            "requests": self.requests,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_per_second": round(self.throughput, 2),
            "by_status": dict(sorted(self.by_status.items())),
            "by_tenant": dict(sorted(self.by_tenant.items())),
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "failures": self.failures,
            "shards": self.shards,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def render(self) -> str:
        lines = [
            f"load report: {self.requests} requests in "
            f"{self.wall_seconds:.3f}s "
            f"({self.throughput:,.0f} req/s)",
            "  status: "
            + ", ".join(
                f"{status}={count}"
                for status, count in sorted(self.by_status.items())
            ),
            "  tenants: "
            + ", ".join(
                f"{tenant}={count}"
                for tenant, count in sorted(self.by_tenant.items())
            ),
            f"  latency: p50={self.p50_seconds * 1e3:.2f}ms  "
            f"p99={self.p99_seconds * 1e3:.2f}ms",
            f"  shards: {self.shards}  cache: "
            f"hits={self.cache_hits} misses={self.cache_misses}",
        ]
        return "\n".join(lines)


def summarize(
    responses: list[EstimateResponse],
    wall_seconds: float,
    registry: MetricsRegistry,
    shards: int = 1,
) -> LoadReport:
    """Fold responses plus the registry's histogram into a report."""
    by_status: dict[str, int] = {}
    by_tenant: dict[str, int] = {}
    for response in responses:
        by_status[response.status] = (
            by_status.get(response.status, 0) + 1
        )
        by_tenant[response.tenant] = (
            by_tenant.get(response.tenant, 0) + 1
        )
    latency = registry.histogram("serve.request.latency_seconds")
    return LoadReport(
        requests=len(responses),
        wall_seconds=wall_seconds,
        by_status=by_status,
        by_tenant=by_tenant,
        p50_seconds=latency.quantile(0.50),
        p99_seconds=latency.quantile(0.99),
        shards=shards,
        cache_hits=int(registry.counter("serve.cache.hits").value),
        cache_misses=int(
            registry.counter("serve.cache.misses").value
        ),
    )


def run_load(
    config: LoadgenConfig | None = None,
    service_config: ServiceConfig | None = None,
    registry: MetricsRegistry | None = None,
    time_scale: float = 1.0,
    shards: int = 1,
) -> LoadReport:
    """Generate, drive, and summarize one load run (sync entry).

    Builds the schedule, runs a fresh service for its duration, and
    reports the SLO view.  A real registry is attached even when the
    caller passes none, so the latency percentiles always exist.

    ``shards > 1`` drives the same schedule through a
    :class:`~repro.serve.shard.ShardedService` (N worker processes
    behind the hash router) instead of one in-process service; the
    report then reads from the *merged* registry.
    """
    config = config or LoadgenConfig()
    if registry is None:
        registry = MetricsRegistry()
    schedule = build_schedule(config)

    if shards > 1:
        from .shard import ShardedService

        futures = []
        with ShardedService(
            shards=shards, config=service_config, registry=registry
        ) as service:
            start = time.perf_counter()
            for arrival, request in schedule:
                delay = arrival * time_scale - (
                    time.perf_counter() - start
                )
                if delay > 0:
                    time.sleep(delay)
                futures.append(service.submit(request))
            responses = [future.result() for future in futures]
            wall_seconds = time.perf_counter() - start
        # Summarize only after stop() merged the shard snapshots.
        return summarize(
            responses, wall_seconds, registry, shards=shards
        )

    async def _main() -> tuple[list[EstimateResponse], float]:
        service = EstimationService(
            config=service_config, registry=registry
        )
        async with service:
            start = time.perf_counter()
            responses = await drive(
                service, schedule, time_scale=time_scale
            )
            return responses, time.perf_counter() - start

    responses, wall_seconds = asyncio.run(_main())
    return summarize(responses, wall_seconds, registry)
