"""Micro-batch execution: fuse compatible requests into one kernel call.

The scheduler (:mod:`repro.serve.service`) drains a tick's worth of
pending requests and hands them here as resolved plans.  This module
groups them by *fusion key* — same protocol class/config and same
population object — and executes each group through the batched
kernels:

* **PET (vectorized tier)**: every request's per-round word stream is
  drawn from its own generator exactly as the scalar path would
  (path word, then seed word for active tags — the PR-1 discipline),
  then all requests' paths/seeds are concatenated into a single
  :func:`~repro.sim.batched.batched_gray_depths_fresh` /
  :func:`~repro.sim.batched.batched_gray_depths_sorted` call and the
  depth vector is split back per request.
* **Engine protocols** (FNEB, LoF, USE/UPE/EZB, ALOHA): per-request
  seed vectors are concatenated and evaluated through the protocol's
  :class:`~repro.protocols.base.BatchedRoundEngine` in one chunked
  pass, then each request's statistic row is reduced by the
  protocol's own scalar inversion.
* Everything else (sampled-tier PET, protocols without an engine)
  falls back to the scalar request path, one request at a time.

The contract is **bit-identity**: because per-round statistics are
elementwise in the seed/path vector and each request's words come from
its own generator, a request served through a fused batch returns the
same :class:`~repro.protocols.base.ProtocolResult` — estimate, slots,
per-round statistics — as :func:`repro.estimate` with the same seed.
The serve test-suite asserts this for PET and FNEB; the per-request
observability (``protocol.<NAME>.*`` counters) mirrors the scalar path
through the same :meth:`_observe_result` funnel.

Fusion only amortises kernel launches for requests that share a
population *object* — which is what the request model's
``population_seed`` field and the service's population cache arrange.
Requests with private populations still execute vectorized across
their own rounds (no Python round loop), they just don't share the
kernel call.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..api import ResolvedRequest
from ..core.accuracy import estimate_from_depths
from ..core.search import slots_lookup_table, strategy_for
from ..errors import ConfigurationError
from ..protocols.base import ProtocolResult
from ..protocols.pet import PetProtocol
from ..sim.batched import (
    batched_gray_depths_fresh,
    batched_gray_depths_sorted,
)
from ..sim.backends import active_backend
from ..sim.protocol_batched import _chunked_statistics
from ..tags.population import TagPopulation

#: Chunk bound for the fused fresh-code kernel.  The experiment engine
#: default (2^21 elements) optimises few huge cells; service groups are
#: many medium ones, where cache-resident chunks keep the
#: XOR/leading-zeros temporaries in L2 and run ~3x faster.  Chunking
#: never changes results — depths are elementwise in the round axis.
_SERVE_CHUNK_ELEMENTS = 1 << 15


@dataclass(frozen=True)
class GroupExecution:
    """Timing + attributes of one kernel execution inside a micro-batch.

    The service turns each row into per-request ``kernel`` spans: every
    request in ``indices`` (batch-local positions) shares the same
    kernel call, so its span carries the fusion group's size, the
    active kernel backend, and the chunk bound — the attributes an
    exemplar-driven trace lookup needs to explain a latency band.
    """

    kind: str  # "pet" | "engine" | "scalar"
    indices: tuple[int, ...]
    start: float  # perf_counter at kernel start
    seconds: float
    backend: str
    protocol: str
    chunk_elements: int | None = None


@dataclass
class MicroBatchReport:
    """What one :func:`execute_micro_batch` call did, for telemetry."""

    requests: int = 0
    fused_groups: int = 0
    fused_requests: int = 0
    scalar_requests: int = 0
    degraded_requests: int = 0
    groups: list[GroupExecution] = field(default_factory=list)

    def group_of(self, index: int) -> GroupExecution | None:
        """The execution row covering batch position ``index``."""
        for group in self.groups:
            if index in group.indices:
                return group
        return None


def _config_key(resolved: ResolvedRequest) -> tuple:
    """Hashable identity of a request's protocol configuration."""
    request = resolved.request
    return (
        request.protocol,
        tuple(
            sorted(
                (key, repr(value))
                for key, value in request.config.items()
            )
        ),
    )


def _pet_fusible(resolved: ResolvedRequest) -> bool:
    """Whether the direct PET kernel path can serve this request."""
    protocol = resolved.protocol
    if not isinstance(protocol, PetProtocol):
        return False
    if protocol.tier != "vectorized" and not protocol.config.passive_tags:
        return False
    # The vectorized kernels share the scalar tier's height ceiling.
    if (
        resolved.population.size > 0
        and protocol.config.tree_height > 62
    ):
        return False
    return True


def _pet_words(resolved: ResolvedRequest) -> np.ndarray:
    """One request's per-round word draw, scalar-stream-identical.

    The scalar estimator draws, per round, one full-range ``uint64``
    path word (:meth:`~repro.core.path.EstimatingPath.random`) and —
    active variant — one seed word (``integers(0, 2**63)`` is a
    one-word Lemire draw).  A single C-order ``(rounds, words)`` array
    draw consumes the request generator's stream identically.
    """
    config = resolved.protocol.config
    words_per_round = 1 if config.passive_tags else 2
    return resolved.rng.integers(
        0,
        2**64,
        size=(resolved.rounds, words_per_round),
        dtype=np.uint64,
    )


#: Per-population sorted-code cache key -> sorted codes, kept for the
#: lifetime of one micro-batch only (populations are the cache key of
#: the service's own longer-lived population cache).
_SortedCodes = dict[tuple[int, int], np.ndarray]


def _fused_pet_group(
    group: list[tuple[int, ResolvedRequest, np.ndarray]],
    population: TagPopulation,
    sorted_codes: _SortedCodes,
    results: list,
) -> None:
    """Run one PET fusion group through a single depth-kernel call."""
    first = group[0][1]
    config = first.protocol.config
    height = config.tree_height
    all_paths = np.concatenate(
        [words[:, 0] >> np.uint64(64 - height) for _, _, words in group]
    )
    if config.passive_tags:
        cache_key = (id(population), height)
        codes = sorted_codes.get(cache_key)
        if codes is None:
            codes = np.sort(population.preloaded_codes(height))
            sorted_codes[cache_key] = codes
        depths = batched_gray_depths_sorted(codes, all_paths, height)
    else:
        all_seeds = np.concatenate(
            [words[:, 1] >> np.uint64(1) for _, _, words in group]
        )
        depths = batched_gray_depths_fresh(
            population.tag_ids,
            all_seeds,
            all_paths,
            height,
            population.family,
            chunk_elements=_SERVE_CHUNK_ELEMENTS,
        )
    slots_table = slots_lookup_table(
        strategy_for(config.binary_search), height
    )
    offset = 0
    for index, resolved, words in group:
        request_depths = depths[offset : offset + resolved.rounds]
        offset += resolved.rounds
        result = ProtocolResult(
            protocol=resolved.protocol.name,
            n_hat=estimate_from_depths(request_depths),
            rounds=resolved.rounds,
            total_slots=int(slots_table[request_depths].sum()),
            per_round_statistics=request_depths.astype(np.float64),
            seed_provenance=resolved.seed_provenance,
        )
        results[index] = resolved.protocol._observe_result(result)


def _fused_engine_group(
    group: list[tuple[int, ResolvedRequest, np.ndarray]],
    population: TagPopulation,
    results: list,
) -> None:
    """Run one engine fusion group through a single statistics pass."""
    engine = group[0][1].protocol.batched_engine()
    all_seeds = np.concatenate([seeds for _, _, seeds in group])
    statistics = _chunked_statistics(engine, all_seeds, population)
    offset = 0
    for index, resolved, seeds in group:
        row = statistics[offset : offset + seeds.size]
        offset += seeds.size
        protocol = resolved.protocol
        try:
            n_hat = engine.reduce(row)
        except Exception as error:  # saturation etc. — per request
            results[index] = error
            continue
        result = ProtocolResult(
            protocol=protocol.name,
            n_hat=n_hat,
            rounds=resolved.rounds,
            total_slots=resolved.rounds * protocol.slots_per_round(),
            per_round_statistics=row,
            seed_provenance=resolved.seed_provenance,
        )
        results[index] = protocol._observe_result(result)


def execute_micro_batch(
    batch: Sequence[ResolvedRequest],
    report: MicroBatchReport | None = None,
) -> list:
    """Execute one tick's requests, fusing compatible ones.

    Returns one entry per request, in input order: a
    :class:`~repro.protocols.base.ProtocolResult` on success or the
    raised exception (so the service can answer that request with an
    ``error`` response without losing the rest of the batch).
    """
    if report is None:
        report = MicroBatchReport()
    report.requests += len(batch)
    results: list = [None] * len(batch)
    pet_groups: dict[tuple, list] = {}
    engine_groups: dict[tuple, list] = {}
    scalar: list[tuple[int, ResolvedRequest]] = []
    sorted_codes: _SortedCodes = {}

    for index, resolved in enumerate(batch):
        try:
            if _pet_fusible(resolved):
                key = (
                    _config_key(resolved),
                    id(resolved.population),
                )
                # Words are drawn at classification time, from the
                # request's own generator — group membership can never
                # change what any single request consumes.
                pet_groups.setdefault(key, []).append(
                    (index, resolved, _pet_words(resolved))
                )
            elif resolved.protocol.batched_engine() is not None:
                key = (
                    _config_key(resolved),
                    id(resolved.population),
                )
                engine = resolved.protocol.batched_engine()
                draws = resolved.rounds * engine.draws_per_round
                seeds = resolved.rng.integers(
                    0, 2**64, size=draws, dtype=np.uint64
                ) >> np.uint64(1)
                engine_groups.setdefault(key, []).append(
                    (index, resolved, seeds)
                )
            else:
                scalar.append((index, resolved))
        except Exception as error:
            results[index] = error

    backend_name = active_backend().name

    for key, group in pet_groups.items():
        report.fused_groups += 1
        report.fused_requests += len(group)
        population = group[0][1].population
        started = time.perf_counter()
        try:
            _fused_pet_group(group, population, sorted_codes, results)
        except Exception as error:
            for index, _, _ in group:
                if results[index] is None:
                    results[index] = error
        report.groups.append(
            GroupExecution(
                kind="pet",
                indices=tuple(index for index, _, _ in group),
                start=started,
                seconds=time.perf_counter() - started,
                backend=backend_name,
                protocol=group[0][1].protocol.name,
                chunk_elements=_SERVE_CHUNK_ELEMENTS,
            )
        )

    for key, group in engine_groups.items():
        report.fused_groups += 1
        report.fused_requests += len(group)
        population = group[0][1].population
        started = time.perf_counter()
        try:
            _fused_engine_group(group, population, results)
        except Exception as error:
            for index, _, _ in group:
                if results[index] is None:
                    results[index] = error
        report.groups.append(
            GroupExecution(
                kind="engine",
                indices=tuple(index for index, _, _ in group),
                start=started,
                seconds=time.perf_counter() - started,
                backend=backend_name,
                protocol=group[0][1].protocol.name,
            )
        )

    for index, resolved in scalar:
        report.scalar_requests += 1
        started = time.perf_counter()
        try:
            result = resolved.protocol.estimate(
                resolved.population, resolved.rounds, resolved.rng
            )
            results[index] = dataclasses.replace(
                result, seed_provenance=resolved.seed_provenance
            )
        except Exception as error:
            results[index] = error
        report.groups.append(
            GroupExecution(
                kind="scalar",
                indices=(index,),
                start=started,
                seconds=time.perf_counter() - started,
                backend=backend_name,
                protocol=resolved.protocol.name,
            )
        )

    return results


def degradable(resolved: ResolvedRequest) -> bool:
    """Whether the sampled fallback tier can serve this request.

    The ladder's cheap rung draws per-round *statistics* from their
    exact law instead of hashing every tag: active-variant PET through
    :class:`~repro.sim.sampled.SampledSimulator`, and any protocol
    exposing an ``estimate_sampled(n, rounds, rng)`` statistic law
    (FNEB, LoF, USE/UPE/EZB, ALOHA).  Sampled laws need the true
    population *size* only, so a request qualifies exactly when its
    protocol has a law for it.
    """
    protocol = resolved.protocol
    if isinstance(protocol, PetProtocol):
        return not protocol.config.passive_tags
    return callable(getattr(protocol, "estimate_sampled", None))


def execute_degraded(resolved: ResolvedRequest):
    """Serve one request from the sampled tier (overload fallback).

    Draws per-round statistics from their exact distribution instead
    of hashing the population — cheap per round regardless of ``n``.
    The estimate follows the same law but is *not* bit-identical to
    the vectorized tier (different randomness consumption), which is
    why the service marks these responses ``degraded`` and the result
    cache never stores them.
    """
    from ..sim.sampled import SampledSimulator

    protocol = resolved.protocol
    if not degradable(resolved):
        raise ConfigurationError(
            f"protocol {protocol.name!r} has no sampled fallback tier"
        )
    if not isinstance(protocol, PetProtocol):
        result = protocol.estimate_sampled(
            resolved.population.size, resolved.rounds, resolved.rng
        )
        # estimate_sampled already funnels through _observe_result;
        # only the request's provenance stamp is missing.
        return dataclasses.replace(
            result, seed_provenance=resolved.seed_provenance
        )
    simulator = SampledSimulator(
        resolved.population.size,
        config=protocol.config.with_rounds(resolved.rounds),
        rng=resolved.rng,
    )
    outcome = simulator.estimate()
    result = ProtocolResult(
        protocol=protocol.name,
        n_hat=outcome.n_hat,
        rounds=outcome.num_rounds,
        total_slots=outcome.total_slots,
        per_round_statistics=outcome.depths,
        seed_provenance=resolved.seed_provenance,
    )
    return protocol._observe_result(result)
