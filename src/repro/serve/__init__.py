"""repro.serve — estimation as a long-running, multi-tenant service.

A single :class:`EstimationService` accepts concurrent
:class:`~repro.api.EstimateRequest` submissions (many tenants / reader
fields) and coalesces them through a micro-batching scheduler: each
tick packs the pending compatible requests — same protocol
configuration, same cached population — into one batched kernel
invocation (:mod:`repro.serve.batching`), so serving 32 concurrent
estimates costs one kernel launch, not 32.

Coalescing is semantically lossless: each request's randomness is
drawn from its own generator in the scalar consumption order, so a
request served through a fused batch returns a bit-identical estimate
to :func:`repro.estimate` with the same seed.

Robustness is part of the contract — a bounded queue answering
``rejected`` (with a retry-after hint) under backpressure, per-tenant
quotas, request deadlines answered ``expired`` before touching a
kernel, and graceful degradation to the sampled tier under overload.
Request-level SLO metrics (latency histogram on the fixed log2 grid,
queue-depth gauge, per-tenant counters) land in the attached
:class:`~repro.obs.MetricsRegistry`.

Beyond one event loop, :class:`~repro.serve.shard.ShardedService`
(:mod:`repro.serve.shard`) hash-routes admitted requests across N
worker processes each running this service, and
:class:`~repro.serve.cache.ResultCache` answers idempotent replays
before any kernel — both preserve the bit-identity contract.

:mod:`repro.serve.loadgen` generates deterministic Poisson/bursty
traffic against the service; ``python -m repro serve`` / ``python -m
repro loadgen`` are the CLI faces.  See docs/SERVING.md.
"""

from .batching import (
    MicroBatchReport,
    degradable,
    execute_degraded,
    execute_micro_batch,
)
from .cache import DEFAULT_CACHE_SIZE, ResultCache
from .loadgen import (
    PATTERNS,
    LoadgenConfig,
    LoadReport,
    build_schedule,
    drive,
    run_load,
    summarize,
)
from .service import EstimationService, ServiceConfig, run_requests
from .shard import FleetStatus, ShardedService, route_shard, run_sharded

__all__ = [
    "EstimationService",
    "ServiceConfig",
    "run_requests",
    "ShardedService",
    "FleetStatus",
    "route_shard",
    "run_sharded",
    "ResultCache",
    "DEFAULT_CACHE_SIZE",
    "MicroBatchReport",
    "execute_micro_batch",
    "execute_degraded",
    "degradable",
    "LoadgenConfig",
    "LoadReport",
    "PATTERNS",
    "build_schedule",
    "drive",
    "run_load",
    "summarize",
]
