"""The asyncio estimation service: coalesce concurrent requests.

:class:`EstimationService` accepts :class:`~repro.api.EstimateRequest`
submissions from many concurrent tasks (tenants, reader fields) and
answers each with an :class:`~repro.api.EstimateResponse`.  Instead of
executing requests one by one, a scheduler task runs a *micro-batching
loop*: it sleeps one coalescing tick, drains the pending queue, and
hands the whole batch to :func:`repro.serve.batching.execute_micro_batch`,
which fuses compatible requests into single batched-kernel calls.
Under the same seed a request answered from a fused batch is
bit-identical to :func:`repro.estimate` — coalescing is a pure
throughput optimisation, never a semantics change.

Robustness semantics (the degradation ladder, top to bottom):

1. **Fused vectorized execution** — the normal path.
2. **Degraded sampled execution** — when the backlog at drain time
   exceeds ``degrade_queue_depth``, requests the sampled tier can
   serve (active-variant PET) are answered from the exact gray-depth
   law instead: ``O(1)`` per round in the population size, marked
   ``status="degraded"``.
3. **Backpressure rejection** — submissions beyond the per-tenant
   quota or the global queue bound are answered immediately with
   ``status="rejected"`` and a ``retry_after`` hint; they are never
   enqueued.
4. **Deadline expiry** — a request that waited in the queue past its
   relative ``deadline`` is answered ``status="expired"`` at drain
   time and never reaches a kernel.

Nothing on this ladder raises into the caller except programming
errors (:class:`~repro.errors.ServiceError` for submitting to a
stopped service); load conditions always produce a response.

SLO metrics (all on the shared obs registry, merge/export-compatible):

==============================  =======================================
``serve.queue.depth``           gauge: pending requests after each event
``serve.requests.submitted``    counter: accepted submissions
``serve.requests.<status>``     counter per response status
``serve.request.latency_seconds``  histogram: submit-to-answer wall
                                time (p50/p99 via the fixed log2 grid)
``serve.tenant.<tenant>.requests``  counter: responses per tenant
``serve.batch.size``            histogram: drained batch sizes
``serve.batch.fused_requests``  counter: requests served from fusions
``serve.batch.scalar_requests`` counter: scalar-fallback requests
``serve.batch.groups``          counter: kernel fusion groups executed
==============================  =======================================
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Sequence

from ..api import (
    EstimateRequest,
    EstimateResponse,
    ResolvedRequest,
    respond,
    resolve_request,
)
from ..errors import ConfigurationError, ReproError, ServiceError
from ..obs.registry import MetricsRegistry, get_registry
from .batching import (
    MicroBatchReport,
    degradable,
    execute_degraded,
    execute_micro_batch,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Operating envelope of one :class:`EstimationService`.

    Attributes
    ----------
    max_queue_depth:
        Global bound on pending requests; submissions past it are
        rejected with backpressure.
    max_batch_size:
        Most requests drained per scheduler tick (one micro-batch).
    tick_seconds:
        Coalescing window: how long the scheduler lets submissions
        accumulate before draining a batch.
    tenant_quota:
        Most pending requests any single tenant may hold; the
        per-tenant check runs *before* the global one, so one noisy
        tenant saturates its own quota, not the shared queue.
    degrade_queue_depth:
        Backlog (after draining a batch) at which degradable requests
        are answered from the sampled tier; ``None`` means half of
        ``max_queue_depth``.
    retry_after_seconds:
        Back-off hint carried by backpressure rejections.
    """

    max_queue_depth: int = 256
    max_batch_size: int = 64
    tick_seconds: float = 0.002
    tenant_quota: int = 64
    degrade_queue_depth: int | None = None
    retry_after_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.tick_seconds < 0:
            raise ConfigurationError(
                f"tick_seconds must be >= 0, got {self.tick_seconds}"
            )
        if self.tenant_quota < 1:
            raise ConfigurationError(
                f"tenant_quota must be >= 1, got {self.tenant_quota}"
            )
        if (
            self.degrade_queue_depth is not None
            and self.degrade_queue_depth < 0
        ):
            raise ConfigurationError(
                f"degrade_queue_depth must be >= 0 when given, got "
                f"{self.degrade_queue_depth}"
            )
        if self.retry_after_seconds <= 0:
            raise ConfigurationError(
                f"retry_after_seconds must be > 0, got "
                f"{self.retry_after_seconds}"
            )

    @property
    def degrade_depth(self) -> int:
        """Effective overload threshold (see ``degrade_queue_depth``)."""
        if self.degrade_queue_depth is not None:
            return self.degrade_queue_depth
        return self.max_queue_depth // 2


@dataclass
class _Pending:
    """One queued request awaiting its scheduler tick."""

    request: EstimateRequest
    future: asyncio.Future
    submitted_at: float

    def expired(self, now: float) -> bool:
        deadline = self.request.deadline
        return deadline is not None and now - self.submitted_at > deadline


class EstimationService:
    """Long-running micro-batching estimation service.

    Usage::

        service = EstimationService()
        async with service:
            response = await service.submit(
                EstimateRequest(population=50_000, seed=7, tenant="dock-3")
            )

    One scheduler task serves every submitter; ``submit`` is safe to
    call from any number of concurrent tasks on the service's event
    loop.  Kernel execution happens in a worker thread
    (``asyncio.to_thread``) so new submissions keep accumulating —
    and coalescing — while a batch computes.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.config = config or ServiceConfig()
        self._registry = (
            registry if registry is not None else get_registry()
        )
        self._queue: deque[_Pending] = deque()
        self._pending_by_tenant: dict[str, int] = {}
        self._population_cache: dict = {}
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._accepting = False
        self._stopping = False

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> "EstimationService":
        """Start the scheduler task; idempotent errors are explicit."""
        if self._task is not None:
            raise ServiceError("service is already started")
        self._accepting = True
        self._stopping = False
        self._task = asyncio.get_running_loop().create_task(
            self._scheduler()
        )
        return self

    async def stop(self) -> None:
        """Stop accepting, drain every queued request, join the task."""
        if self._task is None:
            raise ServiceError("service was never started")
        self._accepting = False
        self._stopping = True
        self._wake.set()
        await self._task
        self._task = None

    async def __aenter__(self) -> "EstimationService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a scheduler tick."""
        return len(self._queue)

    # -- submission ---------------------------------------------------

    async def submit(
        self, request: EstimateRequest
    ) -> EstimateResponse:
        """Submit one request; always answers, never raises on load.

        Raises :class:`~repro.errors.ServiceError` only when the
        service is not running — every load condition (quota, full
        queue, deadline) is an explicit response status.
        """
        if not self._accepting:
            raise ServiceError(
                "service is not accepting requests (not started or "
                "already stopping)"
            )
        now = time.perf_counter()
        tenant = request.tenant
        held = self._pending_by_tenant.get(tenant, 0)
        if held >= self.config.tenant_quota:
            return self._answer(
                respond(
                    request,
                    "rejected",
                    submitted_at=now,
                    retry_after=self.config.retry_after_seconds,
                    detail=(
                        f"tenant {tenant!r} quota exhausted "
                        f"({held}/{self.config.tenant_quota} pending)"
                    ),
                )
            )
        if len(self._queue) >= self.config.max_queue_depth:
            return self._answer(
                respond(
                    request,
                    "rejected",
                    submitted_at=now,
                    retry_after=self.config.retry_after_seconds,
                    detail=(
                        f"queue full "
                        f"({len(self._queue)}/"
                        f"{self.config.max_queue_depth})"
                    ),
                )
            )
        item = _Pending(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            submitted_at=now,
        )
        self._queue.append(item)
        self._pending_by_tenant[tenant] = held + 1
        registry = self._registry
        if registry:
            registry.counter("serve.requests.submitted").inc()
            registry.gauge("serve.queue.depth").set(len(self._queue))
        self._wake.set()
        return await item.future

    # -- scheduler ----------------------------------------------------

    async def _scheduler(self) -> None:
        """The micro-batching loop: tick, drain, fuse, answer."""
        while True:
            if not self._queue:
                if self._stopping:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            if self.config.tick_seconds and not self._stopping:
                # The coalescing window: let concurrent submitters
                # land in the same batch.
                await asyncio.sleep(self.config.tick_seconds)
            batch = [
                self._queue.popleft()
                for _ in range(
                    min(len(self._queue), self.config.max_batch_size)
                )
            ]
            try:
                await self._process(batch)
            except Exception as error:  # the never-crash contract
                for item in batch:
                    if not item.future.done():
                        self._resolve(
                            item,
                            respond(
                                item.request,
                                "error",
                                submitted_at=item.submitted_at,
                                detail=f"scheduler failure: {error}",
                            ),
                        )

    async def _process(self, batch: list[_Pending]) -> None:
        """Answer one drained batch through the fusion executor."""
        registry = self._registry
        if registry:
            registry.histogram("serve.batch.size").observe(len(batch))
            registry.gauge("serve.queue.depth").set(len(self._queue))
        overloaded = len(self._queue) > self.config.degrade_depth
        now = time.perf_counter()
        fused_items: list[_Pending] = []
        fused_plans: list[ResolvedRequest] = []
        degraded_items: list[tuple[_Pending, ResolvedRequest]] = []
        for item in batch:
            if item.expired(now):
                self._resolve(
                    item,
                    respond(
                        item.request,
                        "expired",
                        submitted_at=item.submitted_at,
                        detail=(
                            f"deadline of {item.request.deadline}s "
                            f"passed while queued"
                        ),
                    ),
                )
                continue
            try:
                resolved = resolve_request(
                    item.request,
                    registry=registry if registry else None,
                    population_cache=self._population_cache,
                )
            except ReproError as error:
                self._resolve(
                    item,
                    respond(
                        item.request,
                        "error",
                        submitted_at=item.submitted_at,
                        detail=str(error),
                    ),
                )
                continue
            if overloaded and degradable(resolved):
                degraded_items.append((item, resolved))
            else:
                fused_items.append(item)
                fused_plans.append(resolved)

        if fused_plans:
            report = MicroBatchReport()
            outcomes = await asyncio.to_thread(
                execute_micro_batch, fused_plans, report
            )
            if registry:
                registry.counter("serve.batch.fused_requests").inc(
                    report.fused_requests
                )
                registry.counter("serve.batch.scalar_requests").inc(
                    report.scalar_requests
                )
                registry.counter("serve.batch.groups").inc(
                    report.fused_groups
                )
            for item, outcome in zip(fused_items, outcomes):
                if isinstance(outcome, Exception):
                    self._resolve(
                        item,
                        respond(
                            item.request,
                            "error",
                            submitted_at=item.submitted_at,
                            detail=str(outcome),
                        ),
                    )
                else:
                    self._resolve(
                        item,
                        respond(
                            item.request,
                            "ok",
                            result=outcome,
                            submitted_at=item.submitted_at,
                        ),
                    )

        for item, resolved in degraded_items:
            try:
                outcome = await asyncio.to_thread(
                    execute_degraded, resolved
                )
                response = respond(
                    item.request,
                    "degraded",
                    result=outcome,
                    submitted_at=item.submitted_at,
                    detail="overload: served from the sampled tier",
                )
            except ReproError as error:
                response = respond(
                    item.request,
                    "error",
                    submitted_at=item.submitted_at,
                    detail=str(error),
                )
            self._resolve(item, response)

    # -- bookkeeping --------------------------------------------------

    def _resolve(
        self, item: _Pending, response: EstimateResponse
    ) -> None:
        """Answer one queued request and release its tenant slot."""
        tenant = item.request.tenant
        held = self._pending_by_tenant.get(tenant, 1)
        if held <= 1:
            self._pending_by_tenant.pop(tenant, None)
        else:
            self._pending_by_tenant[tenant] = held - 1
        self._answer(response)
        if not item.future.done():
            item.future.set_result(response)

    def _answer(self, response: EstimateResponse) -> EstimateResponse:
        """Record one response's SLO metrics and pass it through."""
        registry = self._registry
        if registry:
            registry.counter(
                f"serve.requests.{response.status}"
            ).inc()
            registry.counter(
                f"serve.tenant.{response.tenant}.requests"
            ).inc()
            latency = response.latency_seconds
            if latency == latency:  # skip NaN (no submit timestamp)
                registry.histogram(
                    "serve.request.latency_seconds"
                ).observe(latency)
            registry.gauge("serve.queue.depth").set(len(self._queue))
        return response


def run_requests(
    requests: Sequence[EstimateRequest],
    config: ServiceConfig | None = None,
    registry: MetricsRegistry | None = None,
    concurrency: int = 32,
) -> list[EstimateResponse]:
    """Drive ``requests`` through a fresh service, ``concurrency`` at
    a time, from synchronous code.

    The benchmark, the CLI, and the smoke tests all use this entry:
    it owns the event loop (``asyncio.run``), so call it only from
    non-async code.  Responses come back in request order.
    """
    if concurrency < 1:
        raise ConfigurationError(
            f"concurrency must be >= 1, got {concurrency}"
        )

    async def _main() -> list[EstimateResponse]:
        service = EstimationService(config=config, registry=registry)
        gate = asyncio.Semaphore(concurrency)

        async def _one(request: EstimateRequest) -> EstimateResponse:
            async with gate:
                return await service.submit(request)

        async with service:
            return list(
                await asyncio.gather(
                    *(_one(request) for request in requests)
                )
            )

    return asyncio.run(_main())
