"""The asyncio estimation service: coalesce concurrent requests.

:class:`EstimationService` accepts :class:`~repro.api.EstimateRequest`
submissions from many concurrent tasks (tenants, reader fields) and
answers each with an :class:`~repro.api.EstimateResponse`.  Instead of
executing requests one by one, a scheduler task runs a *micro-batching
loop*: it sleeps one coalescing tick, drains the pending queue, and
hands the whole batch to :func:`repro.serve.batching.execute_micro_batch`,
which fuses compatible requests into single batched-kernel calls.
Under the same seed a request answered from a fused batch is
bit-identical to :func:`repro.estimate` — coalescing is a pure
throughput optimisation, never a semantics change.

Robustness semantics (the degradation ladder, top to bottom):

0. **Cache hit** — an idempotent replay (same canonical cache key,
   see :mod:`repro.serve.cache`) is answered inside ``submit`` with
   the byte-identical cached result, before any queueing or kernel.
1. **Fused vectorized execution** — the normal path.
2. **Degraded sampled execution** — when the backlog at drain time
   exceeds ``degrade_queue_depth``, requests the sampled tier can
   serve (active-variant PET via the exact gray-depth law, and any
   protocol exposing an ``estimate_sampled`` statistic law — FNEB,
   LoF, USE/UPE/EZB, ALOHA) are answered from sampled statistics
   instead of hashing the population: cheap per round regardless of
   the population size, marked ``status="degraded"``.
3. **Backpressure rejection** — submissions beyond the per-tenant
   quota or the global queue bound are answered immediately with
   ``status="rejected"`` and a ``retry_after`` hint; they are never
   enqueued.
4. **Deadline expiry** — a request that waited in the queue past its
   relative ``deadline`` is answered ``status="expired"`` at drain
   time and never reaches a kernel.

Nothing on this ladder raises into the caller except programming
errors (:class:`~repro.errors.ServiceError` for submitting to a
stopped service); load conditions always produce a response.

SLO metrics (all on the shared obs registry, merge/export-compatible):

==============================  =======================================
``serve.queue.depth``           gauge: pending requests after each event
``serve.requests.submitted``    counter: accepted submissions
``serve.requests.<status>``     counter per response status
``serve.request.latency_seconds``  histogram: submit-to-answer wall
                                time (p50/p99 via the fixed log2 grid),
                                with per-bucket trace-id exemplars
``serve.tenant.<tenant>.requests``  counter: responses per tenant
``serve.batch.size``            histogram: drained batch sizes
``serve.batch.fused_requests``  counter: requests served from fusions
``serve.batch.scalar_requests`` counter: scalar-fallback requests
``serve.batch.groups``          counter: kernel fusion groups executed
``serve.slo.burn_rate_fast``    gauge: error-budget burn over the fast
                                (60 s) window; ``_slow`` = 1 h window
``serve.slo.good_fast`` / ``serve.slo.bad_fast``  gauges: window totals
``serve.slo.budget_remaining_fast``  gauge: ``max(0, 1 - burn_fast)``
==============================  =======================================

**Distributed tracing.**  When the service runs with a real registry,
every request carries one trace: a ``serve.request`` root span (status,
degradation ``rung``, tenant, protocol) with ``admission``,
``queue.wait``, ``fusion``, ``kernel`` (fusion group size, kernel
backend, chunk bound), and ``respond`` children.  The request may join
an upstream :class:`~repro.obs.tracectx.TraceContext`
(``EstimateRequest.trace_context``) or start a fresh root; the
response echoes the ``trace_id``, the latency histogram attaches it as
a bucket exemplar, and the scrape endpoint's ``/traces/<id>`` route
replays the timeline.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Sequence

from ..api import (
    EstimateRequest,
    EstimateResponse,
    ResolvedRequest,
    request_cache_key,
    respond,
    resolve_request,
)
from ..errors import ConfigurationError, ReproError, ServiceError
from ..obs.registry import MetricsRegistry, get_registry
from ..obs.slo import SloTracker
from ..obs.tracectx import TraceContext, current_trace
from .batching import (
    MicroBatchReport,
    degradable,
    execute_degraded,
    execute_micro_batch,
)
from .cache import DEFAULT_CACHE_SIZE, ResultCache


@dataclass(frozen=True)
class ServiceConfig:
    """Operating envelope of one :class:`EstimationService`.

    Attributes
    ----------
    max_queue_depth:
        Global bound on pending requests; submissions past it are
        rejected with backpressure.
    max_batch_size:
        Most requests drained per scheduler tick (one micro-batch).
    tick_seconds:
        Coalescing window: how long the scheduler lets submissions
        accumulate before draining a batch.
    tenant_quota:
        Most pending requests any single tenant may hold; the
        per-tenant check runs *before* the global one, so one noisy
        tenant saturates its own quota, not the shared queue.
    degrade_queue_depth:
        Backlog (after draining a batch) at which degradable requests
        are answered from the sampled tier; ``None`` means half of
        ``max_queue_depth``.
    retry_after_seconds:
        Back-off hint carried by backpressure rejections.
    trace_requests:
        Whether each request gets a distributed trace (root
        :class:`~repro.obs.tracectx.TraceContext`, per-phase spans,
        latency exemplars).  On by default — the overhead is a few
        percent CPU (guarded by ``bench_guard --tracing``) — but can
        be switched off to serve with metrics only.
    cache:
        Kill switch for the cross-tick idempotent result cache
        (:class:`~repro.serve.cache.ResultCache`).  On by default;
        cache hits are answered inside ``submit`` before any queueing
        or kernel work and are byte-identical to a cold run.
    cache_size:
        LRU bound of the result cache (entries).
    snapshot_interval_seconds:
        When set (> 0) and the service runs as a worker shard, the
        worker streams a heartbeat plus a registry *delta* snapshot to
        the router every this many seconds, so the router's merged
        registry (and the live ``/metrics`` endpoint) tracks worker
        state mid-run.  ``None`` / ``0`` keeps the PR-9 behaviour:
        telemetry merges home only at shutdown.
    heartbeat_misses:
        Heartbeat intervals a worker may miss before the fleet
        watchdog marks it stalled and ``/healthz`` degrades.
    """

    max_queue_depth: int = 256
    max_batch_size: int = 64
    tick_seconds: float = 0.002
    tenant_quota: int = 64
    degrade_queue_depth: int | None = None
    retry_after_seconds: float = 0.05
    trace_requests: bool = True
    cache: bool = True
    cache_size: int = DEFAULT_CACHE_SIZE
    snapshot_interval_seconds: float | None = None
    heartbeat_misses: int = 2

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.tick_seconds < 0:
            raise ConfigurationError(
                f"tick_seconds must be >= 0, got {self.tick_seconds}"
            )
        if self.tenant_quota < 1:
            raise ConfigurationError(
                f"tenant_quota must be >= 1, got {self.tenant_quota}"
            )
        if (
            self.degrade_queue_depth is not None
            and self.degrade_queue_depth < 0
        ):
            raise ConfigurationError(
                f"degrade_queue_depth must be >= 0 when given, got "
                f"{self.degrade_queue_depth}"
            )
        if self.retry_after_seconds <= 0:
            raise ConfigurationError(
                f"retry_after_seconds must be > 0, got "
                f"{self.retry_after_seconds}"
            )
        if self.cache_size < 1:
            raise ConfigurationError(
                f"cache_size must be >= 1, got {self.cache_size}"
            )
        if (
            self.snapshot_interval_seconds is not None
            and self.snapshot_interval_seconds < 0
        ):
            raise ConfigurationError(
                f"snapshot_interval_seconds must be >= 0 when given, "
                f"got {self.snapshot_interval_seconds}"
            )
        if self.heartbeat_misses < 1:
            raise ConfigurationError(
                f"heartbeat_misses must be >= 1, got "
                f"{self.heartbeat_misses}"
            )

    @property
    def degrade_depth(self) -> int:
        """Effective overload threshold (see ``degrade_queue_depth``)."""
        if self.degrade_queue_depth is not None:
            return self.degrade_queue_depth
        return self.max_queue_depth // 2


@dataclass
class _Pending:
    """One queued request awaiting its scheduler tick."""

    request: EstimateRequest
    future: asyncio.Future
    submitted_at: float
    #: Root trace context of this request's ``serve.request`` span
    #: (``None`` when the service runs untraced).
    trace: TraceContext | None = None

    def expired(self, now: float) -> bool:
        deadline = self.request.deadline
        return deadline is not None and now - self.submitted_at > deadline


class EstimationService:
    """Long-running micro-batching estimation service.

    Usage::

        service = EstimationService()
        async with service:
            response = await service.submit(
                EstimateRequest(population=50_000, seed=7, tenant="dock-3")
            )

    One scheduler task serves every submitter; ``submit`` is safe to
    call from any number of concurrent tasks on the service's event
    loop.  Kernel execution happens in a worker thread
    (``asyncio.to_thread``) so new submissions keep accumulating —
    and coalescing — while a batch computes.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        registry: MetricsRegistry | None = None,
        shard_label: str | None = None,
    ):
        self.config = config or ServiceConfig()
        self._registry = (
            registry if registry is not None else get_registry()
        )
        if self._registry and self._registry.slo is None:
            self._registry.attach_diagnostics(slo=SloTracker())
        self._queue: deque[_Pending] = deque()
        self._pending_by_tenant: dict[str, int] = {}
        self._population_cache: dict = {}
        #: Shard identity stamped onto kernel / root request spans when
        #: this service runs as one worker of a sharded scheduler.
        self._shard_label = shard_label
        self._cache = (
            ResultCache(self.config.cache_size, registry=self._registry)
            if self.config.cache
            else None
        )
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._accepting = False
        self._stopping = False

    @property
    def cache(self) -> ResultCache | None:
        """The shard-local result cache (``None`` when disabled)."""
        return self._cache

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> "EstimationService":
        """Start the scheduler task; idempotent errors are explicit."""
        if self._task is not None:
            raise ServiceError("service is already started")
        self._accepting = True
        self._stopping = False
        self._task = asyncio.get_running_loop().create_task(
            self._scheduler()
        )
        return self

    async def stop(self) -> None:
        """Stop accepting, drain every queued request, join the task."""
        if self._task is None:
            raise ServiceError("service was never started")
        self._accepting = False
        self._stopping = True
        self._wake.set()
        await self._task
        self._task = None
        # Per-request publishes are throttled; a final forced publish
        # keeps exported SLO gauges consistent with the full run.
        slo = self._registry.slo if self._registry else None
        if slo is not None:
            slo.publish(self._registry, force=True)

    async def __aenter__(self) -> "EstimationService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a scheduler tick."""
        return len(self._queue)

    @property
    def inflight(self) -> int:
        """Accepted requests not yet answered (queued + executing)."""
        return sum(self._pending_by_tenant.values())

    # -- submission ---------------------------------------------------

    async def submit(
        self, request: EstimateRequest
    ) -> EstimateResponse:
        """Submit one request; always answers, never raises on load.

        Raises :class:`~repro.errors.ServiceError` only when the
        service is not running — every load condition (quota, full
        queue, deadline) is an explicit response status.
        """
        if not self._accepting:
            raise ServiceError(
                "service is not accepting requests (not started or "
                "already stopping)"
            )
        now = time.perf_counter()
        registry = self._registry
        trace: TraceContext | None = None
        if registry and self.config.trace_requests:
            # Join the caller's trace when the request carries one (or
            # one is active on this task); start a fresh root otherwise.
            parent = request.trace_context or current_trace()
            trace = (
                parent.child() if parent is not None
                else TraceContext.root()
            )
        if self._cache is not None:
            key = request_cache_key(request)
            if key is not None:
                cached = self._cache.lookup(key)
                if cached is not None:
                    # Answered before any queueing, quota accounting,
                    # or kernel work — the replay is byte-identical to
                    # the cold run that populated the entry.
                    return self._answer_cache_hit(
                        request, cached, trace, now
                    )
        tenant = request.tenant
        held = self._pending_by_tenant.get(tenant, 0)
        if held >= self.config.tenant_quota:
            return self._reject(
                request,
                trace,
                now,
                reason="tenant_quota",
                detail=(
                    f"tenant {tenant!r} quota exhausted "
                    f"({held}/{self.config.tenant_quota} pending)"
                ),
            )
        if len(self._queue) >= self.config.max_queue_depth:
            return self._reject(
                request,
                trace,
                now,
                reason="queue_full",
                detail=(
                    f"queue full "
                    f"({len(self._queue)}/"
                    f"{self.config.max_queue_depth})"
                ),
            )
        item = _Pending(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            submitted_at=now,
            trace=trace,
        )
        self._queue.append(item)
        self._pending_by_tenant[tenant] = held + 1
        if registry:
            registry.counter("serve.requests.submitted").inc()
            registry.gauge("serve.queue.depth").set(len(self._queue))
            if trace is not None:
                registry.record_span(
                    "admission",
                    path="serve.request.admission",
                    start=now,
                    seconds=time.perf_counter() - now,
                    trace=trace.child(),
                    tenant=tenant,
                    queue_depth=len(self._queue),
                )
        self._wake.set()
        return await item.future

    def _answer_cache_hit(
        self,
        request: EstimateRequest,
        result,
        trace: TraceContext | None,
        submitted_at: float,
    ) -> EstimateResponse:
        """Answer an idempotent replay from the result cache."""
        response = respond(
            request,
            "ok",
            result=result,
            submitted_at=submitted_at,
            trace_id=trace.trace_id if trace is not None else None,
        )
        if trace is not None:
            attributes: dict[str, object] = {
                "status": "ok",
                "rung": "cache_hit",
                "reason": "idempotent replay from the result cache",
                "tenant": request.tenant,
                "protocol": request.protocol,
            }
            if request.request_id is not None:
                attributes["request_id"] = request.request_id
            if self._shard_label is not None:
                attributes["shard"] = self._shard_label
            self._registry.record_span(
                "serve.request",
                start=submitted_at,
                seconds=time.perf_counter() - submitted_at,
                trace=trace,
                **attributes,
            )
        return self._answer(response, deadline=request.deadline)

    def _reject(
        self,
        request: EstimateRequest,
        trace: TraceContext | None,
        submitted_at: float,
        reason: str,
        detail: str,
    ) -> EstimateResponse:
        """Answer a backpressure rejection (never enqueued)."""
        response = respond(
            request,
            "rejected",
            submitted_at=submitted_at,
            retry_after=self.config.retry_after_seconds,
            detail=detail,
            trace_id=trace.trace_id if trace is not None else None,
        )
        if trace is not None:
            self._registry.record_span(
                "serve.request",
                start=submitted_at,
                seconds=time.perf_counter() - submitted_at,
                trace=trace,
                status="rejected",
                rung="backpressure",
                reason=reason,
                tenant=request.tenant,
                protocol=request.protocol,
            )
        return self._answer(response, deadline=request.deadline)

    # -- scheduler ----------------------------------------------------

    async def _scheduler(self) -> None:
        """The micro-batching loop: tick, drain, fuse, answer."""
        while True:
            if not self._queue:
                if self._stopping:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            if self.config.tick_seconds and not self._stopping:
                # The coalescing window: let concurrent submitters
                # land in the same batch.
                await asyncio.sleep(self.config.tick_seconds)
            batch = [
                self._queue.popleft()
                for _ in range(
                    min(len(self._queue), self.config.max_batch_size)
                )
            ]
            try:
                await self._process(batch)
            except Exception as error:  # the never-crash contract
                for item in batch:
                    if not item.future.done():
                        self._resolve(
                            item,
                            self._respond(
                                item,
                                "error",
                                detail=f"scheduler failure: {error}",
                            ),
                            rung="scheduler_error",
                            reason=str(error),
                        )

    async def _process(self, batch: list[_Pending]) -> None:
        """Answer one drained batch through the fusion executor."""
        registry = self._registry
        if registry:
            registry.histogram("serve.batch.size").observe(len(batch))
            registry.gauge("serve.queue.depth").set(len(self._queue))
        overloaded = len(self._queue) > self.config.degrade_depth
        now = time.perf_counter()
        fused_items: list[_Pending] = []
        fused_plans: list[ResolvedRequest] = []
        degraded_items: list[tuple[_Pending, ResolvedRequest]] = []
        for item in batch:
            if item.trace is not None:
                registry.record_span(
                    "queue.wait",
                    path="serve.request.queue.wait",
                    start=item.submitted_at,
                    seconds=now - item.submitted_at,
                    trace=item.trace.child(),
                    tenant=item.request.tenant,
                )
            if item.expired(now):
                self._resolve(
                    item,
                    self._respond(
                        item,
                        "expired",
                        detail=(
                            f"deadline of {item.request.deadline}s "
                            f"passed while queued"
                        ),
                    ),
                    rung="deadline_expired",
                    reason=(
                        f"queued {now - item.submitted_at:.4f}s >"
                        f" deadline {item.request.deadline}s"
                    ),
                )
                continue
            try:
                resolved = resolve_request(
                    item.request,
                    registry=registry if registry else None,
                    population_cache=self._population_cache,
                )
            except ReproError as error:
                self._resolve(
                    item,
                    self._respond(item, "error", detail=str(error)),
                    rung="resolve_error",
                    reason=str(error),
                )
                continue
            if overloaded and degradable(resolved):
                degraded_items.append((item, resolved))
            else:
                fused_items.append(item)
                fused_plans.append(resolved)

        if fused_plans:
            report = MicroBatchReport()
            exec_start = time.perf_counter()
            outcomes = await asyncio.to_thread(
                execute_micro_batch, fused_plans, report
            )
            if registry:
                registry.counter("serve.batch.fused_requests").inc(
                    report.fused_requests
                )
                registry.counter("serve.batch.scalar_requests").inc(
                    report.scalar_requests
                )
                registry.counter("serve.batch.groups").inc(
                    report.fused_groups
                )
            for position, (item, resolved, outcome) in enumerate(
                zip(fused_items, fused_plans, outcomes)
            ):
                self._trace_kernel(item, report, position, exec_start)
                if isinstance(outcome, Exception):
                    self._resolve(
                        item,
                        self._respond(
                            item, "error", detail=str(outcome)
                        ),
                        rung="kernel_error",
                        reason=str(outcome),
                    )
                else:
                    # Only canonical (bit-identical) results enter the
                    # cache — degraded answers never do.
                    if (
                        self._cache is not None
                        and resolved.cache_key is not None
                    ):
                        self._cache.store(resolved.cache_key, outcome)
                    self._resolve(
                        item,
                        self._respond(item, "ok", result=outcome),
                        rung="fused",
                    )

        for item, resolved in degraded_items:
            kernel_start = time.perf_counter()
            try:
                outcome = await asyncio.to_thread(
                    execute_degraded, resolved
                )
                kernel_end = time.perf_counter()
                if item.trace is not None:
                    degraded_attributes: dict[str, object] = {
                        "backend": "sampled",
                        "group_kind": "degraded",
                        "group_size": 1,
                        "protocol": item.request.protocol,
                    }
                    if self._shard_label is not None:
                        degraded_attributes["shard"] = self._shard_label
                    registry.record_span(
                        "kernel",
                        path="serve.request.kernel",
                        start=kernel_start,
                        seconds=kernel_end - kernel_start,
                        trace=item.trace.child(),
                        **degraded_attributes,
                    )
                response = self._respond(
                    item,
                    "degraded",
                    result=outcome,
                    detail="overload: served from the sampled tier",
                )
                self._resolve(
                    item,
                    response,
                    rung="degraded_sampled",
                    reason=(
                        f"backlog {len(self._queue)} >"
                        f" degrade depth {self.config.degrade_depth}"
                    ),
                )
            except ReproError as error:
                self._resolve(
                    item,
                    self._respond(item, "error", detail=str(error)),
                    rung="kernel_error",
                    reason=str(error),
                )

    def _respond(
        self,
        item: _Pending,
        status: str,
        result=None,
        detail: str = "",
    ) -> EstimateResponse:
        """Build a response for a queued item, echoing its trace id."""
        return respond(
            item.request,
            status,
            result=result,
            submitted_at=item.submitted_at,
            detail=detail,
            trace_id=(
                item.trace.trace_id if item.trace is not None else None
            ),
        )

    def _trace_kernel(
        self,
        item: _Pending,
        report: MicroBatchReport,
        position: int,
        exec_start: float,
    ) -> None:
        """Record the fusion + kernel spans for one fused request."""
        if item.trace is None:
            return
        group = report.group_of(position)
        if group is None:
            return
        registry = self._registry
        registry.record_span(
            "fusion",
            path="serve.request.fusion",
            start=exec_start,
            seconds=max(group.start - exec_start, 0.0),
            trace=item.trace.child(),
            group_kind=group.kind,
            group_size=len(group.indices),
        )
        kernel_attributes = {
            "backend": group.backend,
            "group_kind": group.kind,
            "group_size": len(group.indices),
            "protocol": group.protocol,
        }
        if group.chunk_elements is not None:
            kernel_attributes["chunk_elements"] = group.chunk_elements
        if self._shard_label is not None:
            kernel_attributes["shard"] = self._shard_label
        registry.record_span(
            "kernel",
            path="serve.request.kernel",
            start=group.start,
            seconds=group.seconds,
            trace=item.trace.child(),
            **kernel_attributes,
        )

    # -- bookkeeping --------------------------------------------------

    def _resolve(
        self,
        item: _Pending,
        response: EstimateResponse,
        rung: str | None = None,
        reason: str = "",
    ) -> None:
        """Answer one queued request and release its tenant slot.

        ``rung`` names the degradation-ladder rung that produced the
        answer (``fused`` / ``degraded_sampled`` / ``deadline_expired``
        / ...) and ``reason`` why it fired; both land on the request's
        root ``serve.request`` span.
        """
        tenant = item.request.tenant
        held = self._pending_by_tenant.get(tenant, 1)
        if held <= 1:
            self._pending_by_tenant.pop(tenant, None)
        else:
            self._pending_by_tenant[tenant] = held - 1
        respond_start = time.perf_counter()
        self._answer(response, deadline=item.request.deadline)
        if item.trace is not None:
            end = time.perf_counter()
            attributes: dict[str, object] = {
                "status": response.status,
                "rung": rung if rung is not None else response.status,
                "tenant": tenant,
                "protocol": item.request.protocol,
            }
            if reason:
                attributes["reason"] = reason
            if item.request.request_id is not None:
                attributes["request_id"] = item.request.request_id
            if self._shard_label is not None:
                attributes["shard"] = self._shard_label
            self._registry.record_span(
                "respond",
                path="serve.request.respond",
                start=respond_start,
                seconds=end - respond_start,
                trace=item.trace.child(),
                status=response.status,
            )
            self._registry.record_span(
                "serve.request",
                start=item.submitted_at,
                seconds=end - item.submitted_at,
                trace=item.trace,
                **attributes,
            )
        if not item.future.done():
            item.future.set_result(response)

    def _answer(
        self,
        response: EstimateResponse,
        deadline: float | None = None,
    ) -> EstimateResponse:
        """Record one response's SLO metrics and pass it through."""
        registry = self._registry
        if registry:
            registry.counter(
                f"serve.requests.{response.status}"
            ).inc()
            registry.counter(
                f"serve.tenant.{response.tenant}.requests"
            ).inc()
            latency = response.latency_seconds
            if latency == latency:  # skip NaN (no submit timestamp)
                registry.histogram(
                    "serve.request.latency_seconds"
                ).observe(latency, trace_id=response.trace_id)
            registry.gauge("serve.queue.depth").set(len(self._queue))
            slo = registry.slo
            if slo is not None:
                good = response.status == "ok" and not (
                    deadline is not None
                    and latency == latency
                    and latency > deadline
                )
                slo.record(good)
                slo.publish(registry)
        return response


def run_requests(
    requests: Sequence[EstimateRequest],
    config: ServiceConfig | None = None,
    registry: MetricsRegistry | None = None,
    concurrency: int = 32,
) -> list[EstimateResponse]:
    """Drive ``requests`` through a fresh service, ``concurrency`` at
    a time, from synchronous code.

    The benchmark, the CLI, and the smoke tests all use this entry:
    it owns the event loop (``asyncio.run``), so call it only from
    non-async code.  Responses come back in request order.
    """
    if concurrency < 1:
        raise ConfigurationError(
            f"concurrency must be >= 1, got {concurrency}"
        )

    async def _main() -> list[EstimateResponse]:
        service = EstimationService(config=config, registry=registry)
        gate = asyncio.Semaphore(concurrency)

        async def _one(request: EstimateRequest) -> EstimateResponse:
            async with gate:
                return await service.submit(request)

        async with service:
            return list(
                await asyncio.gather(
                    *(_one(request) for request in requests)
                )
            )

    return asyncio.run(_main())
