"""Multi-process sharded serve scheduler: route, fan out, merge home.

One :class:`~repro.serve.service.EstimationService` event loop tops out
well below what the batched kernels can deliver — the GIL serializes
kernel threads and the scheduler shares its core with them.  This
module scales the same service *horizontally*:
:class:`ShardedService` is a front-end router that admission-checks
every submission (tenant quota and global backpressure, exactly as the
single-process service would) and hash-routes admitted requests by
**protocol-config group** to ``N`` worker shard processes, each running
an unmodified :class:`~repro.serve.service.EstimationService` tick
loop.

Design invariants:

* **Group-affine deterministic routing.**  :func:`route_shard` is a
  pure function of the request's protocol, canonical config, and
  population fingerprint — the same identity the micro-batcher fuses
  on — so requests that could fuse land on the same shard (coalescing
  survives sharding) and repeat requests land on the shard whose
  result cache holds them.  The hash is content-derived (CRC-32 of
  the canonical tuple), so the assignment is reproducible across
  processes, runs, and machines.
* **Router-strict admission.**  The router enforces the tenant quota
  and the global queue bound over *total in-flight* requests before
  anything crosses a process boundary.  Because the router is at
  least as strict as any worker (worker backlog is a subset of the
  router's in-flight set), workers never reject — so the set of
  rejected requests for a given submission order is identical for 1,
  2, or 4 shards.
* **Bit-identity.**  A request answered by a shard passes through the
  same resolve → fuse → kernel pipeline as the single-process
  service; under the same seed the response is byte-identical
  regardless of shard count or cache state (``bench_guard --serve``
  asserts the full {1,2,4} × {cache on,off} matrix).
* **Zero-copy shared populations.**  Requests naming a synthesized
  population (``population_seed``) share one
  :class:`~repro.sim.shm.SharedArray` of tag IDs per ``(size, seed)``
  field: the router synthesizes once, ships the picklable spec with
  the first request routed to each shard, and the worker attaches and
  wraps it via :meth:`~repro.tags.population.TagPopulation.from_sorted_ids`
  without copying or re-deriving IDs.
* **Telemetry merges home — live, not just at shutdown.**  Each
  worker runs its own :class:`~repro.obs.registry.MetricsRegistry`.
  With ``ServiceConfig.snapshot_interval_seconds`` set, every worker
  streams a heartbeat plus a registry **delta**
  (:class:`~repro.obs.registry.DeltaSnapshotter`: counter increments,
  histogram stat increments, changed gauges, new spans/events — a
  quiet interval ships bytes, not history) over the existing pipe
  protocol, and the router merges each delta into its registry the
  moment it arrives.  The live ``/metrics`` endpoint therefore serves
  *merged mid-run state* — worker counters, fixed-grid histograms,
  and fleet SLO burn rates re-derived from the additive window totals
  via :func:`~repro.obs.slo.merge_slo_gauges` — instead of the PR-9
  stop-time-only view.  The final shutdown message is itself a delta,
  so the stop-time merge is idempotent against everything already
  applied: nothing is ever double-counted.  Without an interval, one
  full snapshot per shard merges at ``stop()`` exactly as before.
  Traces cross the hop either way: the router opens a ``serve.route``
  span and ships its context inside the request, so the worker's
  ``serve.request`` span (and the ``kernel`` spans beneath it, each
  tagged ``shard``) nest under it in one ``/traces/<id>`` waterfall.
* **Shard health watchdog.**  :class:`FleetStatus` rides the
  heartbeat stream: per-shard liveness/lag gauges
  (``serve.shard.<i>.heartbeat_age_seconds`` / ``.queue_depth`` /
  ``.inflight``), an EWMA stall detector
  (:class:`~repro.obs.monitor.HeartbeatMonitor` — ``fleet.stall``
  events + ``fleet.stall.alerts``), and a ``/healthz`` verdict that
  degrades to ``"degraded"`` / ``"unhealthy"`` with a per-shard
  breakdown when a worker misses ``heartbeat_misses`` heartbeats or
  its process dies.  The status object attaches to the router
  registry (``registry.fleet``) so the scrape endpoint picks it up
  without extra wiring.

Router-side metric names:

==========================================  ==========================
``serve.router.requests``                   counter: submissions seen
``serve.router.rejected``                   counter: backpressure
``serve.router.inflight``                   gauge: in-flight
``serve.shard.<i>.routed``                  counter: routed to shard
``serve.shard.<i>.requests``                gauge: answered by shard
``serve.shard.<i>.cache_hits``              gauge: shard cache hits
``serve.shard.<i>.cache_misses``            gauge: shard cache misses
``serve.shard.<i>.heartbeat_age_seconds``   gauge: watchdog lag
``serve.shard.<i>.queue_depth``             gauge: worker backlog
``serve.shard.<i>.inflight``                gauge: worker in-flight
``serve.shard.<i>.p99_seconds``             gauge: shard p99 latency
``serve.shard.<i>.burn_rate_fast``          gauge: shard burn rate
``fleet.stall.alerts``                      counter: watchdog alerts
==========================================  ==========================

Router SLO note: rejections the router answers itself appear in the
merged ``serve.requests.rejected`` counter, while the ``serve.slo.*``
burn-rate gauges aggregate the shard trackers (worker-answered
traffic).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import multiprocessing
import threading
import time
import traceback
import zlib
from dataclasses import dataclass
from queue import Empty
from typing import Sequence

import numpy as np

from ..api import (
    EstimateRequest,
    EstimateResponse,
    RESPONSE_STATUSES,
    respond,
)
from ..errors import ConfigurationError, ServiceError
from ..obs.metrics import Histogram
from ..obs.monitor import HeartbeatMonitor
from ..obs.registry import (
    NULL_REGISTRY,
    DeltaSnapshotter,
    MetricsRegistry,
    get_registry,
)
from ..obs.slo import merge_slo_gauges, publish_shard_slo
from ..obs.tracectx import TraceContext, current_trace
from ..sim.shm import SharedArray, SharedArraySpec
from ..tags.population import TagPopulation
from .service import EstimationService, ServiceConfig

#: Seconds the collector waits per poll before re-checking liveness.
_COLLECT_POLL_SECONDS = 0.5


def _group_key(request: EstimateRequest) -> tuple:
    """The routing identity: fusion group + population fingerprint.

    Matches the micro-batcher's fusion key (protocol + canonical
    config) extended with the population fingerprint, so fusible
    requests co-locate and cache keys stay shard-affine.
    """
    if isinstance(request.population, (int, np.integer)):
        population: tuple = (
            "n",
            int(request.population),
            None
            if request.population_seed is None
            else int(request.population_seed),
        )
    else:
        # Explicit populations / ID iterables have object identity
        # only; route them all to one bucket rather than hashing
        # unbounded ID lists on the hot path.
        population = ("explicit",)
    return (
        request.protocol,
        tuple(
            sorted(
                (key, repr(value))
                for key, value in request.config.items()
            )
        ),
        population,
    )


def route_shard(request: EstimateRequest, shards: int) -> int:
    """Deterministic shard index for ``request`` (pure function).

    Stable across processes, runs, and machines: the CRC-32 of the
    canonical group key, reduced mod ``shards``.
    """
    if shards <= 1:
        return 0
    digest = zlib.crc32(repr(_group_key(request)).encode("utf-8"))
    return digest % shards


def _mp_context():
    """Fork when available (cheap, shares imports), else spawn.

    Resolving the *global* default start method here (a no-op pin to
    the platform default) matters for shared memory: with it unset,
    :meth:`SharedArray.attach`'s cpython#82300 guard cannot tell fork
    from spawn and mis-books the attach with the resource tracker.
    """
    multiprocessing.get_start_method(allow_none=False)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


# -- the worker side --------------------------------------------------


def _shard_worker(
    index: int,
    config: ServiceConfig,
    requests_queue,
    responses_queue,
    collect_telemetry: bool,
) -> None:
    """One shard process: an EstimationService fed from a queue.

    Message protocol (all picklable):

    * in: ``(ticket, request, ingress, population_payload)`` or the
      ``None`` stop sentinel;
    * out: ``("response", index, ticket, response)`` per request;
      with ``snapshot_interval_seconds`` set, periodic
      ``("telemetry", index, payload)`` heartbeats whose payload
      carries a registry *delta* plus live queue depth/in-flight, a
      final such delta at shutdown, then ``("done", index)``; without
      an interval, one ``("snapshot", index, registry_snapshot)``
      (telemetry runs only) before ``("done", index)``; or
      ``("fatal", index, traceback)`` if the shard dies.
    """
    try:
        registry = (
            MetricsRegistry() if collect_telemetry else NULL_REGISTRY
        )
        service = EstimationService(
            config=config,
            registry=registry,
            shard_label=f"shard-{index}",
        )
        interval = (
            config.snapshot_interval_seconds
            if collect_telemetry
            else None
        )
        snapshotter = (
            DeltaSnapshotter(registry, worker_id=f"shard-{index}")
            if interval
            else None
        )
        # SharedArray handles must outlive every request using them.
        attached: dict[tuple, SharedArray] = {}

        def _telemetry_message(final: bool = False) -> tuple:
            # Force-publish the SLO window totals first so every delta
            # carries fresh additive good/bad counts for the router's
            # fleet-wide burn-rate re-derivation.
            if registry.slo is not None:
                registry.slo.publish(registry, force=True)
            return (
                "telemetry",
                index,
                {
                    "ts": time.perf_counter(),
                    "queue_depth": service.queue_depth,
                    "inflight": service.inflight,
                    "delta": snapshotter.delta(),
                    "final": final,
                },
            )

        async def _main() -> None:
            loop = asyncio.get_running_loop()
            tasks: set[asyncio.Task] = set()
            heartbeat_task: asyncio.Task | None = None

            async def _serve_one(ticket, request, ingress) -> None:
                try:
                    if request.deadline is not None:
                        # perf_counter is CLOCK_MONOTONIC — comparable
                        # across processes on one host — so the time
                        # spent in transit keeps counting against the
                        # caller's relative deadline.
                        elapsed = time.perf_counter() - ingress
                        request = dataclasses.replace(
                            request,
                            deadline=max(
                                request.deadline - elapsed, 0.0
                            ),
                        )
                    response = await service.submit(request)
                except Exception as error:
                    response = respond(
                        request,
                        "error",
                        submitted_at=ingress,
                        detail=f"shard-{index} failure: {error}",
                    )
                responses_queue.put(
                    ("response", index, ticket, response)
                )

            async def _heartbeat() -> None:
                # Heartbeats always flow — an idle interval ships a
                # (cheap) empty delta so the watchdog sees liveness
                # even when no metric moved.
                while True:
                    await asyncio.sleep(interval)
                    responses_queue.put(_telemetry_message())

            async with service:
                if snapshotter is not None:
                    heartbeat_task = loop.create_task(_heartbeat())
                try:
                    while True:
                        message = await loop.run_in_executor(
                            None, requests_queue.get
                        )
                        if message is None:
                            break
                        ticket, request, ingress, payload = message
                        if payload is not None:
                            key, spec = payload
                            if key not in attached:
                                shared = SharedArray.attach(
                                    spec, registry=registry
                                )
                                attached[key] = shared
                                # Pre-seed the service's population
                                # cache: resolve_request keys
                                # synthesized populations by
                                # (size, population_seed), so the
                                # shm-backed view substitutes for
                                # re-synthesis, bit-identically.
                                service._population_cache[key] = (
                                    TagPopulation.from_sorted_ids(
                                        shared.array
                                    )
                                )
                        task = loop.create_task(
                            _serve_one(ticket, request, ingress)
                        )
                        tasks.add(task)
                        task.add_done_callback(tasks.discard)
                    if tasks:
                        await asyncio.gather(*tasks)
                finally:
                    if heartbeat_task is not None:
                        heartbeat_task.cancel()
                        try:
                            await heartbeat_task
                        except asyncio.CancelledError:
                            pass

        asyncio.run(_main())
        for shared in attached.values():
            shared.close()
        if registry:
            if snapshotter is not None:
                # The shutdown flush is a delta too, so the router's
                # stop-time merge is idempotent against everything the
                # heartbeats already shipped.
                responses_queue.put(_telemetry_message(final=True))
            else:
                responses_queue.put(
                    ("snapshot", index, registry.snapshot(
                        worker_id=f"shard-{index}"
                    ))
                )
        responses_queue.put(("done", index))
    except BaseException:
        responses_queue.put(
            ("fatal", index, traceback.format_exc())
        )


# -- the router side --------------------------------------------------


@dataclass
class _RouterPending:
    """One in-flight request awaiting its shard's response."""

    request: EstimateRequest
    future: concurrent.futures.Future
    ingress: float
    shard: int
    trace: TraceContext | None = None


#: Per-request statuses summed into ``serve.shard.<i>.requests``.
_LATENCY_HISTOGRAM = "serve.request.latency_seconds"


class FleetStatus:
    """Live fleet state folded from the worker heartbeat stream.

    The router feeds it two things per heartbeat:
    :meth:`record_heartbeat` (arrival time, queue depth, in-flight)
    and :meth:`record_delta` (the registry delta that rode along).
    From those it maintains, per shard, cumulative counters, the
    latest gauge values (including the additive SLO window totals),
    and a folded latency histogram — enough to re-derive every
    ``serve.shard.<i>.*`` gauge and the fleet-wide ``serve.slo.*``
    burn rates *mid-run* via :meth:`refresh`, and to answer
    ``/healthz`` with a per-shard verdict via :meth:`health`.

    Stall detection delegates to
    :class:`~repro.obs.monitor.HeartbeatMonitor`; process death is
    checked through the ``alive`` callable the router provides.  All
    methods take one internal lock: recorders run on the collector
    thread while :meth:`refresh`/:meth:`health` run on HTTP scrape
    threads.
    """

    def __init__(
        self,
        shards: int,
        interval: float,
        misses: int = 2,
        registry: MetricsRegistry | None = None,
        alive=None,
    ):
        if shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {shards}"
            )
        self.shards = shards
        self.interval = interval
        self._alive = alive
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self._stopped: float | None = None
        self._last_beat: dict[int, float] = {}
        self._queue_depth: dict[int, int] = {}
        self._inflight: dict[int, int] = {}
        self._counters: dict[int, dict[str, float]] = {}
        self._gauges: dict[int, dict[str, float]] = {}
        self._latency: dict[int, Histogram] = {}
        self.monitor = HeartbeatMonitor(
            interval, misses=misses, registry=registry
        )

    # -- feeding (collector thread) -----------------------------------

    def record_heartbeat(
        self, shard: int, ts: float, queue_depth: int, inflight: int
    ) -> None:
        """Fold one heartbeat's liveness signals."""
        with self._lock:
            previous = self._last_beat.get(shard)
            self._last_beat[shard] = ts
            self._queue_depth[shard] = queue_depth
            self._inflight[shard] = inflight
        if previous is not None:
            self.monitor.beat(shard, ts - previous)

    def record_delta(self, shard: int, delta) -> None:
        """Fold one registry delta into the shard's running totals."""
        with self._lock:
            counters = self._counters.setdefault(shard, {})
            for name, increment in delta.counters.items():
                counters[name] = counters.get(name, 0.0) + increment
            self._gauges.setdefault(shard, {}).update(delta.gauges)
            stats = delta.histograms.get(_LATENCY_HISTOGRAM)
            if stats is not None:
                histogram = self._latency.get(shard)
                if histogram is None:
                    histogram = Histogram(_LATENCY_HISTOGRAM)
                    self._latency[shard] = histogram
                histogram.count += stats["count"]
                histogram.total += stats["total"]
                histogram.sum_squares += stats["sum_squares"]
                histogram.min = min(histogram.min, stats["min"])
                histogram.max = max(histogram.max, stats["max"])
                for position, added in enumerate(stats["buckets"]):
                    histogram.buckets[position] += added

    def mark_stopped(self) -> None:
        """Freeze the clock: ages stop growing, stalls stop firing."""
        with self._lock:
            self._stopped = time.perf_counter()

    # -- publishing (scrape threads) ----------------------------------

    def _age(self, shard: int, now: float) -> float:
        anchor = self._last_beat.get(shard, self._started)
        return max(0.0, now - anchor)

    def _now(self) -> float:
        return (
            self._stopped
            if self._stopped is not None
            else time.perf_counter()
        )

    def refresh(self, registry) -> None:
        """Re-publish every fleet gauge from current folded state.

        Called by the collector after each applied delta and by the
        ``/metrics`` handler right before rendering, so scrapes always
        see heartbeat ages measured *now*, not at the last arrival.
        """
        with self._lock:
            now = self._now()
            slo_snapshots = []
            for shard in range(self.shards):
                prefix = f"serve.shard.{shard}"
                registry.gauge(
                    f"{prefix}.heartbeat_age_seconds"
                ).set(self._age(shard, now))
                registry.gauge(f"{prefix}.queue_depth").set(
                    self._queue_depth.get(shard, 0)
                )
                registry.gauge(f"{prefix}.inflight").set(
                    self._inflight.get(shard, 0)
                )
                counters = self._counters.get(shard, {})
                answered = sum(
                    counters.get(f"serve.requests.{status}", 0.0)
                    for status in RESPONSE_STATUSES
                )
                registry.gauge(f"{prefix}.requests").set(answered)
                registry.gauge(f"{prefix}.cache_hits").set(
                    counters.get("serve.cache.hits", 0.0)
                )
                registry.gauge(f"{prefix}.cache_misses").set(
                    counters.get("serve.cache.misses", 0.0)
                )
                histogram = self._latency.get(shard)
                if histogram is not None and histogram.count:
                    registry.gauge(f"{prefix}.p99_seconds").set(
                        histogram.quantile(0.99)
                    )
                gauges = self._gauges.get(shard, {})
                publish_shard_slo(registry, shard, gauges)
                if "serve.slo.good_fast" in gauges or (
                    "serve.slo.bad_fast" in gauges
                ):
                    slo_snapshots.append({"gauges": gauges})
            if slo_snapshots:
                merge_slo_gauges(registry, slo_snapshots)

    def health(self) -> dict:
        """The ``/healthz`` fleet verdict: overall + per-shard.

        Per shard: ``"dead"`` when its process is gone, ``"stalled"``
        when its heartbeat age exceeds the watchdog threshold,
        ``"ok"`` otherwise.  Overall: every shard ok → ``"ok"``, none
        ok → ``"unhealthy"``, anything between → ``"degraded"``.
        After :meth:`mark_stopped` the run is complete and everything
        reports ok with frozen ages.
        """
        with self._lock:
            now = self._now()
            stopped = self._stopped is not None
            shards: dict[str, dict] = {}
            healthy = 0
            for shard in range(self.shards):
                age = self._age(shard, now)
                status = "ok"
                if not stopped:
                    alive = (
                        self._alive(shard)
                        if self._alive is not None
                        else True
                    )
                    if not alive:
                        status = "dead"
                    elif self.monitor.check(shard, age):
                        status = "stalled"
                if status == "ok":
                    healthy += 1
                shards[str(shard)] = {
                    "status": status,
                    "heartbeat_age_seconds": age,
                    "queue_depth": self._queue_depth.get(shard, 0),
                    "inflight": self._inflight.get(shard, 0),
                }
            if healthy == self.shards:
                overall = "ok"
            elif healthy == 0:
                overall = "unhealthy"
            else:
                overall = "degraded"
            return {"status": overall, "shards": shards}


class ShardedService:
    """Front-end router over ``shards`` worker service processes.

    Usage (synchronous — the router is thread-based, the event loops
    live in the workers)::

        with ShardedService(shards=4) as service:
            future = service.submit(EstimateRequest(...))
            response = future.result()

    ``submit`` returns a :class:`concurrent.futures.Future` resolved
    by the collector thread when the owning shard answers.  Router
    admission rejections resolve immediately.
    """

    def __init__(
        self,
        shards: int = 2,
        config: ServiceConfig | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {shards}"
            )
        self.shards = shards
        self.config = config or ServiceConfig()
        self._registry = (
            registry if registry is not None else get_registry()
        )
        self._context = _mp_context()
        self._request_queues: list = []
        # One response queue per shard (single producer each): a
        # SIGKILLed worker can wedge at most its own pipe's write
        # lock, never a sibling's — which is what lets the watchdog
        # observe a killed shard while the rest keep answering.
        self._response_queues: list = []
        self._processes: list = []
        self._collector: threading.Thread | None = None
        self._lock = threading.Lock()
        self._pending: dict[int, _RouterPending] = {}
        self._inflight = 0
        self._inflight_by_tenant: dict[str, int] = {}
        self._next_ticket = 0
        self._accepting = False
        self._snapshots: list = []
        self._fatal: list[str] = []
        self._shared_populations: dict[tuple, SharedArray] = {}
        self._published: set[tuple] = set()
        #: Live fleet state; set by :meth:`start` when snapshot
        #: streaming is on (telemetry collected and
        #: ``snapshot_interval_seconds`` configured).
        self.fleet: FleetStatus | None = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "ShardedService":
        """Spawn the worker processes and the collector thread."""
        if self._processes:
            raise ServiceError("sharded service is already started")
        collect = bool(self._registry)
        # Start the shared-memory resource tracker *before* forking:
        # forked workers must inherit the live tracker so attach
        # registrations deduplicate against the router's create
        # instead of spawning per-worker trackers that warn (and try
        # to clean) at exit.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        if collect and self.config.snapshot_interval_seconds:
            self.fleet = FleetStatus(
                shards=self.shards,
                interval=self.config.snapshot_interval_seconds,
                misses=self.config.heartbeat_misses,
                registry=self._registry,
                alive=self._shard_alive,
            )
            # /metrics and /healthz find the fleet through the
            # registry — no extra server wiring needed.
            self._registry.attach_diagnostics(fleet=self.fleet)
        for index in range(self.shards):
            requests_queue = self._context.Queue()
            self._request_queues.append(requests_queue)
            responses_queue = self._context.Queue()
            self._response_queues.append(responses_queue)
            process = self._context.Process(
                target=_shard_worker,
                args=(
                    index,
                    self.config,
                    requests_queue,
                    responses_queue,
                    collect,
                ),
                daemon=True,
                name=f"repro-serve-shard-{index}",
            )
            process.start()
            self._processes.append(process)
        self._collector = threading.Thread(
            target=self._collect, name="repro-serve-router", daemon=True
        )
        self._collector.start()
        self._accepting = True
        return self

    def stop(self) -> None:
        """Drain every shard, merge telemetry home, release memory."""
        if not self._processes:
            raise ServiceError("sharded service was never started")
        self._accepting = False
        for requests_queue in self._request_queues:
            requests_queue.put(None)
        if self._collector is not None:
            self._collector.join()
            self._collector = None
        for process in self._processes:
            process.join(timeout=10.0)
        self._processes.clear()
        self._request_queues.clear()
        self._response_queues.clear()
        registry = self._registry
        if registry:
            for snapshot in self._snapshots:
                registry.merge(snapshot)
                index = self._snapshot_index(snapshot)
                answered = sum(
                    snapshot.counters.get(
                        f"serve.requests.{status}", 0.0
                    )
                    for status in RESPONSE_STATUSES
                )
                registry.gauge(
                    f"serve.shard.{index}.requests"
                ).set(answered)
                registry.gauge(
                    f"serve.shard.{index}.cache_hits"
                ).set(
                    snapshot.counters.get("serve.cache.hits", 0.0)
                )
            if self._snapshots:
                merge_slo_gauges(registry, self._snapshots)
        if self.fleet is not None:
            # Streamed deltas (including each worker's final flush)
            # were applied as they arrived — there is nothing left to
            # re-merge, which is what keeps shutdown idempotent.
            self.fleet.mark_stopped()
            if registry:
                self.fleet.refresh(registry)
        for shared in self._shared_populations.values():
            shared.close()
            shared.unlink(registry=registry if registry else None)
        self._shared_populations.clear()
        self._published.clear()
        # The never-lose-a-caller contract: anything still pending
        # after every shard drained (a fatal shard) gets an error.
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for pending in leftovers:
            if not pending.future.done():
                pending.future.set_result(
                    respond(
                        pending.request,
                        "error",
                        submitted_at=pending.ingress,
                        detail=(
                            "shard terminated before answering"
                            + (
                                f": {self._fatal[0]}"
                                if self._fatal
                                else ""
                            )
                        ),
                    )
                )

    def __enter__(self) -> "ShardedService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @staticmethod
    def _snapshot_index(snapshot) -> int:
        worker = snapshot.worker_id or "shard-0"
        try:
            return int(str(worker).rsplit("-", 1)[-1])
        except ValueError:
            return 0

    def _shard_alive(self, index: int) -> bool:
        """Process liveness probe the watchdog uses (thread-safe)."""
        try:
            process = self._processes[index]
        except IndexError:
            return False
        return process.is_alive()

    def fleet_health(self) -> dict:
        """The watchdog verdict (``{"status": ..., "shards": {...}}``).

        Empty-fleet shape (``{"status": "ok", "shards": {}}``) when
        streaming is off — the ``/healthz`` schema stays stable either
        way.
        """
        if self.fleet is None:
            return {"status": "ok", "shards": {}}
        return self.fleet.health()

    # -- submission ---------------------------------------------------

    def submit(
        self, request: EstimateRequest
    ) -> "concurrent.futures.Future[EstimateResponse]":
        """Route one request; the future resolves with its response.

        Mirrors :meth:`EstimationService.submit` semantics: load
        conditions (quota, backpressure) resolve the future with a
        ``rejected`` response immediately; only submitting to a
        stopped router raises.
        """
        if not self._accepting:
            raise ServiceError(
                "sharded service is not accepting requests (not "
                "started or already stopping)"
            )
        ingress = time.perf_counter()
        registry = self._registry
        trace: TraceContext | None = None
        if registry and self.config.trace_requests:
            parent = request.trace_context or current_trace()
            trace = (
                parent.child()
                if parent is not None
                else TraceContext.root()
            )
        shard = route_shard(request, self.shards)
        tenant = request.tenant
        future: concurrent.futures.Future = concurrent.futures.Future()
        with self._lock:
            held = self._inflight_by_tenant.get(tenant, 0)
            if held >= self.config.tenant_quota:
                return self._reject(
                    request,
                    future,
                    trace,
                    ingress,
                    shard,
                    reason="tenant_quota",
                    detail=(
                        f"tenant {tenant!r} quota exhausted "
                        f"({held}/{self.config.tenant_quota} pending)"
                    ),
                )
            if self._inflight >= self.config.max_queue_depth:
                return self._reject(
                    request,
                    future,
                    trace,
                    ingress,
                    shard,
                    reason="queue_full",
                    detail=(
                        f"queue full ({self._inflight}/"
                        f"{self.config.max_queue_depth})"
                    ),
                )
            ticket = self._next_ticket
            self._next_ticket += 1
            self._inflight += 1
            self._inflight_by_tenant[tenant] = held + 1
            self._pending[ticket] = _RouterPending(
                request=request,
                future=future,
                ingress=ingress,
                shard=shard,
                trace=trace,
            )
            payload = self._population_payload(request, shard)
        if registry:
            registry.counter("serve.router.requests").inc()
            registry.counter(f"serve.shard.{shard}.routed").inc()
            registry.gauge("serve.router.inflight").set(
                self._inflight
            )
        shipped = request
        if trace is not None:
            # The worker joins this context: its serve.request span
            # becomes a child of the router's serve.route span, so
            # /traces/<id> shows one waterfall across the hop.
            shipped = dataclasses.replace(
                request, trace_context=trace
            )
        self._request_queues[shard].put(
            (ticket, shipped, ingress, payload)
        )
        return future

    def _population_payload(self, request: EstimateRequest, shard: int):
        """Shared-population handle for ``request``'s first hop, if any.

        Called under the router lock.  Synthesizes the population once
        per ``(size, population_seed)`` field, copies it into shared
        memory, and ships the spec with the first request routed to
        each shard; later requests resolve from the worker's cache.
        """
        if (
            request.population_seed is None
            or not isinstance(request.population, (int, np.integer))
            or int(request.population) <= 0
        ):
            return None
        key = (int(request.population), int(request.population_seed))
        shared = self._shared_populations.get(key)
        if shared is None:
            population = TagPopulation.random(
                key[0], np.random.default_rng(key[1])
            )
            shared = SharedArray.create(
                population.tag_ids,
                registry=self._registry if self._registry else None,
            )
            self._shared_populations[key] = shared
        if (shard, key) in self._published:
            return None
        self._published.add((shard, key))
        return (key, shared.spec)

    def _reject(
        self,
        request: EstimateRequest,
        future: concurrent.futures.Future,
        trace: TraceContext | None,
        ingress: float,
        shard: int,
        reason: str,
        detail: str,
    ) -> concurrent.futures.Future:
        """Answer a router-level backpressure rejection (no hop)."""
        response = respond(
            request,
            "rejected",
            submitted_at=ingress,
            retry_after=self.config.retry_after_seconds,
            detail=detail,
            trace_id=trace.trace_id if trace is not None else None,
        )
        registry = self._registry
        if registry:
            registry.counter("serve.router.requests").inc()
            registry.counter("serve.router.rejected").inc()
            registry.counter("serve.requests.rejected").inc()
            registry.counter(
                f"serve.tenant.{request.tenant}.requests"
            ).inc()
            if trace is not None:
                registry.record_span(
                    "serve.route",
                    start=ingress,
                    seconds=time.perf_counter() - ingress,
                    trace=trace,
                    status="rejected",
                    rung="backpressure",
                    reason=reason,
                    shard=f"shard-{shard}",
                    tenant=request.tenant,
                    protocol=request.protocol,
                )
        future.set_result(response)
        return future

    # -- the collector thread -----------------------------------------

    def _collect(self) -> None:
        """Resolve futures as shards answer; fold telemetry as it lands.

        Round-robins over the per-shard response queues.  A shard is
        finished when it sends ``done``/``fatal`` — or when its
        process is found dead with an empty queue (SIGKILL leaves no
        marker), in which case its pending callers fail over
        immediately instead of waiting for ``stop()``.
        """
        poll = _COLLECT_POLL_SECONDS / max(self.shards, 1)
        finished: set[int] = set()
        while len(finished) < self.shards:
            for index, queue in enumerate(self._response_queues):
                if index in finished:
                    continue
                try:
                    message = queue.get(timeout=poll)
                except Empty:
                    if not self._processes[index].is_alive():
                        finished.add(index)
                        self._fail_shard(
                            index,
                            "shard process died unexpectedly",
                        )
                    continue
                # Drain whatever else is already queued before moving
                # to the next shard, so one chatty shard never waits
                # behind a quiet sibling's poll timeout.
                while True:
                    self._dispatch(message, finished)
                    try:
                        message = queue.get_nowait()
                    except Empty:
                        break

    def _dispatch(self, message, finished: set[int]) -> None:
        """Apply one worker message on the collector thread."""
        kind = message[0]
        if kind == "response":
            _, _, ticket, response = message
            self._finish(ticket, response)
        elif kind == "telemetry":
            self._apply_telemetry(message[1], message[2])
        elif kind == "snapshot":
            self._snapshots.append(message[2])
        elif kind == "done":
            finished.add(message[1])
        elif kind == "fatal":
            _, index, text = message
            self._fatal.append(text)
            finished.add(index)
            self._fail_shard(index, text)

    def _apply_telemetry(self, index: int, payload: dict) -> None:
        """Fold one worker heartbeat: merge the delta, refresh gauges.

        Runs on the collector thread.  The registry merge is safe
        against concurrent scrapes for the same reason the scrape
        handlers read without locks: counters/histograms mutate
        in-place under the GIL and the trace log is append-only.
        """
        fleet = self.fleet
        registry = self._registry
        if fleet is not None:
            fleet.record_heartbeat(
                index,
                payload["ts"],
                payload["queue_depth"],
                payload["inflight"],
            )
        delta = payload.get("delta")
        if delta is not None and registry:
            registry.merge(delta)
            if fleet is not None:
                fleet.record_delta(index, delta)
        if fleet is not None and registry:
            fleet.refresh(registry)

    def _finish(self, ticket: int, response: EstimateResponse) -> None:
        """Account one answered request and resolve its future."""
        with self._lock:
            pending = self._pending.pop(ticket, None)
            if pending is None:
                return
            self._inflight -= 1
            tenant = pending.request.tenant
            held = self._inflight_by_tenant.get(tenant, 1)
            if held <= 1:
                self._inflight_by_tenant.pop(tenant, None)
            else:
                self._inflight_by_tenant[tenant] = held - 1
        end = time.perf_counter()
        # The worker measured its own submit-to-answer time; the
        # caller cares about end-to-end including both hops.
        response = dataclasses.replace(
            response, latency_seconds=end - pending.ingress
        )
        registry = self._registry
        if registry:
            registry.gauge("serve.router.inflight").set(
                self._inflight
            )
            if pending.trace is not None:
                registry.record_span(
                    "serve.route",
                    start=pending.ingress,
                    seconds=end - pending.ingress,
                    trace=pending.trace,
                    status=response.status,
                    shard=f"shard-{pending.shard}",
                    tenant=pending.request.tenant,
                    protocol=pending.request.protocol,
                )
        pending.future.set_result(response)

    def _fail_shard(self, index: int, text: str) -> None:
        """Answer every request pending on a fatally dead shard."""
        with self._lock:
            tickets = [
                ticket
                for ticket, pending in self._pending.items()
                if pending.shard == index
            ]
            failed = [self._pending.pop(ticket) for ticket in tickets]
            for pending in failed:
                self._inflight -= 1
                tenant = pending.request.tenant
                held = self._inflight_by_tenant.get(tenant, 1)
                if held <= 1:
                    self._inflight_by_tenant.pop(tenant, None)
                else:
                    self._inflight_by_tenant[tenant] = held - 1
        for pending in failed:
            if not pending.future.done():
                pending.future.set_result(
                    respond(
                        pending.request,
                        "error",
                        submitted_at=pending.ingress,
                        detail=f"shard-{index} died: {text.strip().splitlines()[-1] if text else 'unknown'}",
                    )
                )


def run_sharded(
    requests: Sequence[EstimateRequest],
    shards: int = 2,
    config: ServiceConfig | None = None,
    registry: MetricsRegistry | None = None,
    concurrency: int = 64,
) -> list[EstimateResponse]:
    """Drive ``requests`` through a fresh sharded service, in order.

    The sharded sibling of
    :func:`~repro.serve.service.run_requests`: at most ``concurrency``
    requests are in flight at once, submissions happen in sequence
    order (which makes quota/backpressure outcomes deterministic), and
    responses come back in request order.
    """
    if concurrency < 1:
        raise ConfigurationError(
            f"concurrency must be >= 1, got {concurrency}"
        )
    gate = threading.Semaphore(concurrency)
    futures: list[concurrent.futures.Future] = []
    with ShardedService(
        shards=shards, config=config, registry=registry
    ) as service:
        for request in requests:
            gate.acquire()
            future = service.submit(request)
            future.add_done_callback(lambda _f: gate.release())
            futures.append(future)
        responses = [future.result() for future in futures]
    return responses
