"""Cross-tick idempotent result cache for the estimation service.

Identical idempotent requests — same protocol config, same population
fingerprint, same seed, same accuracy contract — are the common case
when many readers re-query the same field.  Without a cache every
repeat re-runs a full kernel on some later tick; with one, a repeat is
answered inside ``submit`` before it ever reaches the queue.

The cache is a bounded LRU keyed on the canonical tuple
:func:`repro.api.request_cache_key` derives (and
:func:`~repro.api.resolve_request` stamps onto every
:class:`~repro.api.ResolvedRequest` as ``cache_key``).  Because the
key captures *every* input the estimate depends on, a hit is
byte-identical to the cold run it replays — the service stores only
``ok`` results from the fused/scalar path, never ``degraded`` ones
(the sampled tier's randomness consumption differs run to run).

The cache is **shard-local by design**: each
:class:`~repro.serve.service.EstimationService` — one per worker shard
in the sharded topology — owns its own instance, touched only from
that service's event loop.  No cross-process locking ever enters the
hot path; the router's group-affine hash routing makes repeats land on
the shard that cached them.

Counters on the service registry (merge/export-compatible):

========================  =============================================
``serve.cache.hits``      requests answered from the cache
``serve.cache.misses``    cacheable requests that had to run a kernel
``serve.cache.evictions`` entries dropped by the LRU bound
``serve.cache.size``      gauge: live entries after each insert/evict
========================  =============================================

Disable per service with ``ServiceConfig(cache=False)`` (the kill
switch); bound it with ``ServiceConfig(cache_size=...)``.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigurationError
from ..obs.registry import MetricsRegistry
from ..protocols.base import ProtocolResult

#: Default LRU bound: entries are one small ProtocolResult each (a few
#: hundred bytes of per-round statistics), so the default costs ~1 MB.
DEFAULT_CACHE_SIZE = 1024


class ResultCache:
    """Bounded LRU of ``cache_key -> ProtocolResult`` (single-owner).

    Not thread-safe on purpose: one instance belongs to one service's
    event loop (shard-local), which is what keeps lookups lock-free.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_SIZE,
        registry: MetricsRegistry | None = None,
    ):
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._registry = registry
        self._entries: OrderedDict[tuple, ProtocolResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> ProtocolResult | None:
        """The cached result for ``key``, counting the hit or miss."""
        result = self._entries.get(key)
        registry = self._registry
        if result is None:
            self.misses += 1
            if registry:
                registry.counter("serve.cache.misses").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if registry:
            registry.counter("serve.cache.hits").inc()
        return result

    def store(self, key: tuple, result: ProtocolResult) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry at cap."""
        registry = self._registry
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            if registry:
                registry.counter("serve.cache.evictions").inc()
        if registry:
            registry.gauge("serve.cache.size").set(len(self._entries))
