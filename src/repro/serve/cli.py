"""CLI entries for the estimation service: ``serve`` and ``loadgen``.

``python -m repro serve`` runs the micro-batching service as a
JSON-lines server on stdin/stdout: every input line is one request
object, every output line one response.  Concurrent lines coalesce
into shared kernel calls exactly as library submissions do::

    $ echo '{"population": 50000, "seed": 7, "rounds": 128}' \\
        | python -m repro serve
    {"status": "ok", "tenant": "default", ... "result": {...}}

Request lines accept the :class:`~repro.api.EstimateRequest` fields
(``population`` is required; ``protocol``, ``seed``,
``population_seed``, ``rounds``, ``accuracy`` as ``[epsilon, delta]``,
``tenant``, ``deadline``, ``request_id``, plus a ``config`` object of
protocol keywords).  EOF shuts the service down gracefully — every
accepted request is answered first.

``python -m repro loadgen`` generates a Poisson or bursty workload
(see :mod:`repro.serve.loadgen`), drives it through an in-process
service, and prints the SLO report; the exit code is non-zero when
any response is ``error``-class, which is what the CI smoke step
asserts.  ``--dry-run`` prints the schedule instead of running it.

Both commands take ``--prom-out PATH`` to write the final metrics in
OpenMetrics text format (queue gauges, latency histogram, per-tenant
counters — the catalogue in ``docs/SERVING.md``), ``--metrics-port``
to expose a live scrape endpoint (``/metrics`` with exemplars,
``/healthz``, ``/traces/<id>``; ``--metrics-hold`` keeps it up after
the workload drains), and ``--trace-out PATH`` to append every
finished span as a JSON line for ``python -m repro traceview``.
Request lines may carry a ``trace_context`` object
(``{"trace_id": ..., "span_id": ...}``) to join a caller's
distributed trace.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

from ..api import EstimateRequest
from ..config import AccuracyRequirement
from ..errors import ReproError
from ..obs import (
    ConsoleSummaryExporter,
    MetricsRegistry,
    TraceContext,
    write_span_trace,
)
from .loadgen import (
    PATTERNS,
    LoadgenConfig,
    build_schedule,
    run_load,
)
from .service import EstimationService, ServiceConfig


def request_from_record(record: dict) -> EstimateRequest:
    """Build an :class:`~repro.api.EstimateRequest` from a JSON object."""
    if not isinstance(record, dict):
        raise ReproError(
            f"request line must be a JSON object, got {type(record).__name__}"
        )
    if "population" not in record:
        raise ReproError("request object needs a 'population' field")
    accuracy = record.get("accuracy")
    if accuracy is not None:
        epsilon, delta = accuracy
        accuracy = AccuracyRequirement(float(epsilon), float(delta))
    known = {
        "population",
        "protocol",
        "config",
        "seed",
        "population_seed",
        "rounds",
        "accuracy",
        "tenant",
        "deadline",
        "request_id",
        "trace_context",
    }
    unknown = sorted(set(record) - known)
    if unknown:
        raise ReproError(f"unknown request fields: {unknown}")
    trace_context = record.get("trace_context")
    if trace_context is not None:
        if not isinstance(trace_context, dict):
            raise ReproError("'trace_context' must be a JSON object")
        trace_context = TraceContext.from_dict(trace_context)
    return EstimateRequest(
        population=record["population"],
        protocol=record.get("protocol", "pet"),
        config=record.get("config", {}),
        seed=record.get("seed"),
        population_seed=record.get("population_seed"),
        rounds=record.get("rounds"),
        accuracy=accuracy,
        tenant=record.get("tenant", "default"),
        deadline=record.get("deadline"),
        request_id=record.get("request_id"),
        trace_context=trace_context,
    )


def _service_config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        max_queue_depth=args.max_queue_depth,
        max_batch_size=args.max_batch_size,
        tick_seconds=args.tick,
        tenant_quota=args.tenant_quota,
        retry_after_seconds=args.retry_after,
        cache=args.cache,
        cache_size=args.cache_size,
        snapshot_interval_seconds=(
            args.snapshot_interval if args.snapshot_interval else None
        ),
        heartbeat_misses=args.heartbeat_misses,
    )


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=ServiceConfig.max_queue_depth,
        help="pending-request bound before backpressure rejections",
    )
    parser.add_argument(
        "--max-batch-size",
        type=int,
        default=ServiceConfig.max_batch_size,
        help="most requests coalesced into one scheduler tick",
    )
    parser.add_argument(
        "--tick",
        type=float,
        default=ServiceConfig.tick_seconds,
        help="coalescing window in seconds",
    )
    parser.add_argument(
        "--tenant-quota",
        type=int,
        default=ServiceConfig.tenant_quota,
        help="most pending requests any one tenant may hold",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=ServiceConfig.retry_after_seconds,
        help="back-off hint (seconds) on backpressure rejections",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "worker shard processes behind the hash router; 1 runs"
            " the single-process service in-process"
        ),
    )
    parser.add_argument(
        "--snapshot-interval",
        type=float,
        metavar="SECONDS",
        default=1.0,
        help=(
            "seconds between worker telemetry snapshots in sharded"
            " runs (delta-streamed heartbeats keep /metrics and"
            " /healthz live mid-run; 0 disables streaming and merges"
            " telemetry only at shutdown)"
        ),
    )
    parser.add_argument(
        "--heartbeat-misses",
        type=int,
        metavar="N",
        default=ServiceConfig.heartbeat_misses,
        help=(
            "consecutive missed heartbeats before the watchdog marks"
            " a shard stalled on /healthz"
        ),
    )
    parser.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="disable the cross-tick idempotent result cache",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=ServiceConfig.cache_size,
        help="LRU bound (entries) of the per-shard result cache",
    )
    parser.add_argument(
        "--prom-out",
        metavar="PATH",
        default=None,
        help="write final metrics in OpenMetrics text format to PATH",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        metavar="PORT",
        default=None,
        help=(
            "serve /metrics (OpenMetrics with exemplars), /healthz, and"
            " /traces/<id> on this port while running (0 = ephemeral)"
        ),
    )
    parser.add_argument(
        "--metrics-hold",
        type=float,
        metavar="SECONDS",
        default=0.0,
        help=(
            "keep the metrics endpoint up this many seconds after the"
            " workload finishes (lets scrapers catch the final state)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "append every finished span as a JSON line to PATH"
            " (render with 'python -m repro traceview --trace-file')"
        ),
    )


def _serve_stdin_sharded(service, lines) -> tuple[int, int]:
    """Sharded sibling of :func:`_serve_stdin` (thread-based router).

    Responses print from the collector's done-callbacks under a write
    lock, so lines stay whole; ordering follows completion, with
    ``request_id`` as the correlation handle, as in the async path.
    """
    import concurrent.futures
    import threading

    write_lock = threading.Lock()
    futures = []
    parse_failures = 0

    def _emit(future) -> None:
        response = future.result()
        with write_lock:
            print(json.dumps(response.to_dict()), flush=True)

    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            request = request_from_record(json.loads(line))
        except (ValueError, ReproError) as error:
            parse_failures += 1
            with write_lock:
                print(
                    json.dumps(
                        {"status": "error", "detail": str(error)}
                    ),
                    flush=True,
                )
            continue
        future = service.submit(request)
        future.add_done_callback(_emit)
        futures.append(future)
    if futures:
        concurrent.futures.wait(futures)
    return len(futures), parse_failures


async def _serve_stdin(
    service: EstimationService, lines
) -> tuple[int, int]:
    """Submit every stdin line concurrently; write answers as lines.

    Returns ``(answered, parse_failures)``.  Output lines may
    interleave out of input order — ``request_id`` is the correlation
    handle, exactly as on a network transport.
    """
    loop = asyncio.get_running_loop()
    tasks = []
    parse_failures = 0

    async def _one(request: EstimateRequest) -> None:
        response = await service.submit(request)
        print(json.dumps(response.to_dict()), flush=True)

    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            request = request_from_record(json.loads(line))
        except (ValueError, ReproError) as error:
            parse_failures += 1
            print(
                json.dumps(
                    {"status": "error", "detail": str(error)}
                ),
                flush=True,
            )
            continue
        tasks.append(loop.create_task(_one(request)))
        # Yield so the scheduler can interleave with line ingestion.
        await asyncio.sleep(0)
    if tasks:
        await asyncio.gather(*tasks)
    return len(tasks), parse_failures


def _write_prom(path: str | None, registry: MetricsRegistry) -> None:
    if path is None:
        return
    from ..obs import PrometheusExporter

    PrometheusExporter(path).export(registry)
    print(f"OpenMetrics written to {path}", file=sys.stderr)


def _start_metrics_server(args: argparse.Namespace, registry):
    """Start the live scrape endpoint when ``--metrics-port`` is set."""
    if args.metrics_port is None:
        return None
    from ..obs import MetricsServer

    server = MetricsServer(registry, port=args.metrics_port).start()
    print(f"metrics endpoint listening on {server.url}", file=sys.stderr)
    return server


def _finish_telemetry(
    args: argparse.Namespace, registry: MetricsRegistry, server
) -> None:
    """Final exports: prom file, span trace file, endpoint hold+stop."""
    _write_prom(args.prom_out, registry)
    if args.trace_out is not None:
        written = write_span_trace(args.trace_out, registry)
        print(
            f"{written} spans appended to {args.trace_out}",
            file=sys.stderr,
        )
    if server is not None:
        if args.metrics_hold > 0:
            print(
                f"holding metrics endpoint for {args.metrics_hold:.1f}s",
                file=sys.stderr,
            )
            time.sleep(args.metrics_hold)
        server.stop()


def serve_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="pet-repro serve",
        description=(
            "Run the micro-batching estimation service as a "
            "JSON-lines server on stdin/stdout."
        ),
    )
    _add_service_arguments(parser)
    parser.add_argument(
        "--summary",
        action="store_true",
        help="print the metrics summary to stderr on shutdown",
    )
    args = parser.parse_args(argv)
    registry = MetricsRegistry()
    service_config = _service_config(args)

    async def _main() -> tuple[int, int]:
        service = EstimationService(
            config=service_config, registry=registry
        )
        async with service:
            return await _serve_stdin(service, sys.stdin)

    server = _start_metrics_server(args, registry)
    try:
        if args.shards > 1:
            from .shard import ShardedService

            with ShardedService(
                shards=args.shards,
                config=service_config,
                registry=registry,
            ) as sharded:
                answered, parse_failures = _serve_stdin_sharded(
                    sharded, sys.stdin
                )
        else:
            answered, parse_failures = asyncio.run(_main())
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        if server is not None:
            server.stop()
        return 1
    print(
        f"served {answered} requests "
        f"({parse_failures} malformed lines)",
        file=sys.stderr,
    )
    _finish_telemetry(args, registry, server)
    if args.summary:
        print(ConsoleSummaryExporter().render(registry), file=sys.stderr)
    return 0


def loadgen_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="pet-repro loadgen",
        description=(
            "Generate service traffic (Poisson or bursty arrivals) "
            "and drive it through an in-process estimation service."
        ),
    )
    parser.add_argument(
        "--requests", type=int, default=200, help="total requests"
    )
    parser.add_argument(
        "--pattern",
        choices=PATTERNS,
        default="poisson",
        help="arrival process",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=500.0,
        help="mean arrivals/second (poisson)",
    )
    parser.add_argument(
        "--burst-size",
        type=int,
        default=16,
        help="requests per burst (bursty)",
    )
    parser.add_argument(
        "--burst-interval",
        type=float,
        default=0.02,
        help="seconds between bursts (bursty)",
    )
    parser.add_argument(
        "--tenants", type=int, default=4, help="reader fields"
    )
    parser.add_argument(
        "--population",
        type=int,
        default=2_000,
        help="true cardinality per reader field",
    )
    parser.add_argument(
        "--rounds", type=int, default=64, help="rounds per request"
    )
    parser.add_argument(
        "--protocol", default="pet", help="protocol registry name"
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="relative deadline (seconds) stamped on every request",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="schedule seed"
    )
    parser.add_argument(
        "--unique-seeds",
        type=int,
        default=None,
        help=(
            "cycle the stream through this many distinct request"
            " identities (repeats become result-cache hits)"
        ),
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="compress (<1) or stretch (>1) the arrival schedule",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of text",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the generated schedule without running a service",
    )
    _add_service_arguments(parser)
    args = parser.parse_args(argv)
    config = LoadgenConfig(
        requests=args.requests,
        pattern=args.pattern,
        rate=args.rate,
        burst_size=args.burst_size,
        burst_interval=args.burst_interval,
        tenants=args.tenants,
        population=args.population,
        rounds=args.rounds,
        protocol=args.protocol,
        deadline=args.deadline,
        seed=args.seed,
        unique_seeds=args.unique_seeds,
    )
    if args.dry_run:
        for arrival, request in build_schedule(config):
            print(
                json.dumps(
                    {
                        "arrival": round(arrival, 6),
                        "request_id": request.request_id,
                        "tenant": request.tenant,
                        "population": request.population,
                        "seed": request.seed,
                        "population_seed": request.population_seed,
                    }
                )
            )
        return 0
    registry = MetricsRegistry()
    server = _start_metrics_server(args, registry)
    try:
        report = run_load(
            config,
            service_config=_service_config(args),
            registry=registry,
            time_scale=args.time_scale,
            shards=args.shards,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        if server is not None:
            server.stop()
        return 1
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    _finish_telemetry(args, registry, server)
    return 1 if report.failures else 0


def main(argv: list[str]) -> int:
    """Dispatch ``serve``/``loadgen`` (called from :mod:`repro.cli`)."""
    command, rest = argv[0], argv[1:]
    if command == "serve":
        return serve_main(rest)
    if command == "loadgen":
        return loadgen_main(rest)
    raise ReproError(f"unknown serve command {command!r}")
