"""Closed-form analysis of PET and the baseline estimators.

* :mod:`~repro.analysis.mellin` — the exact gray-depth/height PMF and its
  Mellin-asymptotic moments (Sec. 4.2, Eqs. 5-11).
* :mod:`~repro.analysis.theory` — the predicted sampling distribution of
  the PET estimate (the Fig. 6a theoretical overlay) and per-statistic
  moments for the baselines (FNEB first-nonempty index, LoF first-empty
  bucket).
* :mod:`~repro.analysis.stats` — experiment-side summary statistics.
"""

from .mellin import (
    gray_depth_cdf,
    gray_depth_pmf,
    gray_depth_moments,
    gray_height_pmf,
    periodic_fluctuation,
)
from .mle import mle_estimate, mle_estimate_censored
from .saturation import (
    corrected_estimate,
    effective_range,
    estimator_bias,
    saturation_level,
)
from .stats import SeriesSummary, summarize
from .variance import (
    EstimateMoments,
    bias_corrected_estimate,
    estimate_moments,
    rounds_for_normalized_rms,
)
from .theory import (
    estimate_distribution,
    fneb_round_moments,
    lof_round_moments,
    within_interval_probability,
)

__all__ = [
    "gray_depth_pmf",
    "gray_depth_cdf",
    "gray_height_pmf",
    "gray_depth_moments",
    "periodic_fluctuation",
    "estimate_distribution",
    "within_interval_probability",
    "fneb_round_moments",
    "lof_round_moments",
    "SeriesSummary",
    "summarize",
    "saturation_level",
    "estimator_bias",
    "corrected_estimate",
    "effective_range",
    "mle_estimate",
    "mle_estimate_censored",
    "EstimateMoments",
    "estimate_moments",
    "bias_corrected_estimate",
    "rounds_for_normalized_rms",
]
