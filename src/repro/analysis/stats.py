"""Summary statistics for experiment result series.

Every figure in the paper's evaluation reports one of three quantities
over repeated runs: the accuracy ``n_hat / n`` (Eq. 22), the standard
deviation ``sqrt(E[(n_hat - n)^2])`` (Eq. 23, an RMS error around the
*true* value, not the sample mean), and its normalized form.  This
module computes them once, consistently, for all experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class SeriesSummary:
    """Summary of repeated estimates of a known true cardinality.

    Attributes
    ----------
    true_n:
        Ground-truth cardinality.
    runs:
        Number of independent estimates summarized.
    mean_estimate:
        Sample mean of ``n_hat``.
    accuracy:
        The paper's Eq. 22 metric, ``mean(n_hat) / n``.
    std:
        The paper's Eq. 23 metric, ``sqrt(mean((n_hat - n)^2))``.
    normalized_std:
        ``std / n`` (Fig. 4c's y-axis).
    within_fraction:
        Fraction of runs inside ``[(1-eps)n, (1+eps)n]`` for the epsilon
        recorded in ``epsilon`` (``nan`` when no epsilon was supplied).
    epsilon:
        The interval half-width used for ``within_fraction``.
    """

    true_n: int
    runs: int
    mean_estimate: float
    accuracy: float
    std: float
    normalized_std: float
    within_fraction: float
    epsilon: float

    def row(self) -> dict[str, float]:
        """Flat dict rendering, for report tables."""
        return {
            "n": self.true_n,
            "runs": self.runs,
            "mean_estimate": self.mean_estimate,
            "accuracy": self.accuracy,
            "std": self.std,
            "normalized_std": self.normalized_std,
            "within_fraction": self.within_fraction,
        }


def summarize(
    estimates: Sequence[float] | np.ndarray,
    true_n: int,
    epsilon: float = float("nan"),
) -> SeriesSummary:
    """Summarize repeated estimates against the true cardinality.

    Parameters
    ----------
    estimates:
        The ``n_hat`` values from independent runs.
    true_n:
        Ground truth ``n``.
    epsilon:
        Optional interval half-width for the within-interval fraction.
    """
    values = np.asarray(estimates, dtype=np.float64)
    if values.size == 0:
        raise AnalysisError("cannot summarize an empty series")
    if true_n < 1:
        raise AnalysisError(f"true_n must be >= 1, got {true_n}")
    mean_estimate = float(values.mean())
    std = float(np.sqrt(np.mean((values - true_n) ** 2)))
    if math.isnan(epsilon):
        within = float("nan")
    else:
        low, high = (1.0 - epsilon) * true_n, (1.0 + epsilon) * true_n
        within = float(((values >= low) & (values <= high)).mean())
    return SeriesSummary(
        true_n=true_n,
        runs=int(values.size),
        mean_estimate=mean_estimate,
        accuracy=mean_estimate / true_n,
        std=std,
        normalized_std=std / true_n,
        within_fraction=within,
        epsilon=epsilon,
    )
