"""Exact finite-m moments of the PET estimate.

The paper's accuracy argument linearises the estimator around the mean
depth (the CLT step of Eqs. 15-20).  For small round counts the
estimator ``n_hat = phi^-1 2^(d_bar)`` is noticeably log-normal rather
than normal, which is visible in the Fig. 4 panels at m = 8-16.  This
module computes the estimate's moments *exactly* from the per-round
depth law:

    E[n_hat]   = phi^-m_prod ... = phi^-1 * (E[2^(d/m)])^m
    E[n_hat^2] = phi^-2 * (E[2^(2d/m)])^m

because the rounds are i.i.d. and ``2^(d_bar) = prod_i 2^(d_i/m)``.
From these, the exact relative bias and the exact normalized RMS error
(Fig. 4b/4c's y-axes), with no linearisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.accuracy import PHI
from ..errors import AnalysisError
from .mellin import gray_depth_pmf


@dataclass(frozen=True)
class EstimateMoments:
    """Exact moments of the m-round PET estimate at (n, H).

    Attributes
    ----------
    mean:
        ``E[n_hat]``.
    relative_bias:
        ``E[n_hat]/n - 1`` (positive: the log-normal convexity bias,
        shrinking like ``1/m``).
    rms_error:
        ``sqrt(E[(n_hat - n)^2])`` — exactly the paper's Eq. 23.
    normalized_rms:
        ``rms_error / n`` (Fig. 4c's y-axis).
    """

    mean: float
    relative_bias: float
    rms_error: float
    normalized_rms: float


def _mgf_of_depth(pmf: np.ndarray, scale: float) -> float:
    """``E[2^(scale * d)]`` over the exact depth PMF."""
    depths = np.arange(len(pmf), dtype=np.float64)
    return float((pmf * 2.0 ** (scale * depths)).sum())


def estimate_moments(
    n: int, height: int, rounds: int
) -> EstimateMoments:
    """Exact moments of the PET estimate for ``rounds`` i.i.d. rounds.

    Cost is ``O(H)`` — independent of both n and m — so sweeping the
    Fig. 4 grid analytically is instant.
    """
    if n < 1:
        raise AnalysisError(f"n must be >= 1, got {n}")
    if rounds < 1:
        raise AnalysisError(f"rounds must be >= 1, got {rounds}")
    pmf = gray_depth_pmf(n, height)
    g1 = _mgf_of_depth(pmf, 1.0 / rounds)
    g2 = _mgf_of_depth(pmf, 2.0 / rounds)
    mean = g1**rounds / PHI
    second = g2**rounds / PHI**2
    rms = math.sqrt(max(second - 2.0 * n * mean + n * n, 0.0))
    return EstimateMoments(
        mean=mean,
        relative_bias=mean / n - 1.0,
        rms_error=rms,
        normalized_rms=rms / n,
    )


def bias_corrected_estimate(
    mean_depth: float, n_guess: float, height: int, rounds: int
) -> float:
    """Estimate with the finite-m convexity bias divided out.

    The multiplicative bias ``E[n_hat]/n`` depends only weakly on n; we
    evaluate it at ``n_guess`` (e.g. the plain estimate itself) and
    divide.  One fixed-point pass suffices in practice (tests check).
    """
    if rounds < 1:
        raise AnalysisError(f"rounds must be >= 1, got {rounds}")
    plain = 2.0**mean_depth / PHI
    guess = max(1, int(round(n_guess)))
    bias = estimate_moments(guess, height, rounds).relative_bias
    return plain / (1.0 + bias)


def rounds_for_normalized_rms(
    n: int, height: int, target: float, max_rounds: int = 1 << 20
) -> int:
    """Smallest m whose exact normalized RMS error meets ``target``.

    An exact-law alternative to the paper's Eq. 20 plan; used by the
    planner-comparison test to show Eq. 20 is mildly conservative.
    """
    if not 0.0 < target < 10.0:
        raise AnalysisError(f"target must lie in (0, 10), got {target!r}")
    low, high = 1, 1
    while (
        estimate_moments(n, height, high).normalized_rms > target
        and high < max_rounds
    ):
        high *= 2
    if high >= max_rounds:
        raise AnalysisError(
            f"target {target} not reachable within {max_rounds} rounds"
        )
    while high - low > 1:
        mid = (low + high) // 2
        if estimate_moments(n, height, mid).normalized_rms > target:
            low = mid
        else:
            high = mid
    return high
