"""Maximum-likelihood PET estimation — an alternative to Eq. 14.

The paper estimates by inverting the *mean* gray depth (a method-of-
moments estimator).  The observations are i.i.d. draws from a known
one-parameter family (the exact depth law of
:mod:`repro.analysis.mellin`), so the textbook alternative is maximum
likelihood over ``n``:

    n_hat_mle = argmax_n  sum_i log P_n(d_i).

The log-likelihood is strictly unimodal in ``log n`` over the relevant
range (the depth law is stochastically increasing in ``n``), so a
golden-section search on ``log2 n`` converges fast.  The MLE squeezes a
few percent of RMS out of the moment estimator at equal rounds — and,
more importantly for practice, it handles *censored* observations (the
linear scan truncated at H) gracefully.

This module is an extension; the protocol comparisons in the paper's
tables all use the paper's own estimator.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import AnalysisError, EstimationError
from .mellin import gray_depth_pmf

#: Golden ratio step for the section search.
_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


def depth_log_likelihood(
    depths: np.ndarray, n: int, height: int
) -> float:
    """``sum_i log P_n(d_i)`` under the exact depth law."""
    if n < 1:
        raise AnalysisError(f"n must be >= 1, got {n}")
    pmf = gray_depth_pmf(n, height)
    counts = np.bincount(
        depths.astype(np.int64), minlength=height + 1
    )
    with np.errstate(divide="ignore"):
        log_pmf = np.log(np.maximum(pmf, 1e-300))
    return float((counts * log_pmf).sum())


def mle_estimate(
    depths: Sequence[int] | np.ndarray,
    height: int,
    n_min: int = 1,
    n_max: int | None = None,
    tolerance: float = 1e-4,
) -> float:
    """Maximum-likelihood cardinality from observed gray depths.

    Parameters
    ----------
    depths:
        Observed gray depths (one per round).
    height:
        Tree height ``H``.
    n_min, n_max:
        Search bracket; ``n_max`` defaults to ``2^(H+4)``.
    tolerance:
        Convergence tolerance on ``log2 n``.
    """
    observations = np.asarray(depths, dtype=np.int64)
    if observations.size == 0:
        raise EstimationError("cannot estimate from zero rounds")
    if observations.min() < 0 or observations.max() > height:
        raise EstimationError(
            f"depths must lie in [0, {height}]"
        )
    if n_max is None:
        n_max = 1 << min(height + 4, 62)
    if not 1 <= n_min < n_max:
        raise AnalysisError("need 1 <= n_min < n_max")

    def objective(log_n: float) -> float:
        return depth_log_likelihood(
            observations, max(1, int(round(2.0**log_n))), height
        )

    low, high = math.log2(n_min), math.log2(n_max)
    # Golden-section search for the maximum of a unimodal function.
    inner_low = high - _INV_PHI * (high - low)
    inner_high = low + _INV_PHI * (high - low)
    value_low = objective(inner_low)
    value_high = objective(inner_high)
    while high - low > tolerance:
        if value_low < value_high:
            low = inner_low
            inner_low = inner_high
            value_low = value_high
            inner_high = low + _INV_PHI * (high - low)
            value_high = objective(inner_high)
        else:
            high = inner_high
            inner_high = inner_low
            value_high = value_low
            inner_low = high - _INV_PHI * (high - low)
            value_low = objective(inner_low)
    return float(2.0 ** ((low + high) / 2.0))


def mle_estimate_censored(
    depths: Sequence[int] | np.ndarray,
    height: int,
    censor_at: int,
    **kwargs: object,
) -> float:
    """MLE when the search was truncated at prefix length ``censor_at``.

    A linear scan stopped early (e.g. a fixed slot budget per round)
    observes ``min(d, censor_at)``; observations equal to the censor
    point contribute the *tail* probability ``P(d >= censor_at)``
    instead of the point mass.  The moment estimator cannot use such
    rounds at all; the MLE folds them in.
    """
    observations = np.asarray(depths, dtype=np.int64)
    if observations.size == 0:
        raise EstimationError("cannot estimate from zero rounds")
    if not 1 <= censor_at <= height:
        raise AnalysisError(
            f"censor_at must lie in [1, {height}], got {censor_at}"
        )
    if observations.max() > censor_at:
        raise EstimationError(
            "observations exceed the declared censoring point"
        )
    exact = observations[observations < censor_at]
    censored_count = int((observations == censor_at).sum())

    n_max = kwargs.pop("n_max", None) or (1 << min(height + 4, 62))
    n_min = kwargs.pop("n_min", 1)
    tolerance = kwargs.pop("tolerance", 1e-4)

    def objective(log_n: float) -> float:
        n = max(1, int(round(2.0**log_n)))
        pmf = gray_depth_pmf(n, height)
        total = 0.0
        if exact.size:
            counts = np.bincount(exact, minlength=height + 1)
            with np.errstate(divide="ignore"):
                total += float(
                    (counts * np.log(np.maximum(pmf, 1e-300))).sum()
                )
        if censored_count:
            tail = float(pmf[censor_at:].sum())
            total += censored_count * math.log(max(tail, 1e-300))
        return total

    low, high = math.log2(n_min), math.log2(n_max)
    inner_low = high - _INV_PHI * (high - low)
    inner_high = low + _INV_PHI * (high - low)
    value_low, value_high = objective(inner_low), objective(inner_high)
    while high - low > tolerance:
        if value_low < value_high:
            low, inner_low, value_low = inner_low, inner_high, value_high
            inner_high = low + _INV_PHI * (high - low)
            value_high = objective(inner_high)
        else:
            high, inner_high, value_high = (
                inner_high,
                inner_low,
                value_low,
            )
            inner_low = high - _INV_PHI * (high - low)
            value_low = objective(inner_low)
    return float(2.0 ** ((low + high) / 2.0))
