"""Saturation-aware estimation: the ``2^H`` boundary (Eq. 1 regime).

Sec. 4.2 notes that when ``p -> 0`` (every leaf black) the hashing
process becomes a coupon-collector problem and PET can only report
``n ~ 2^H``; the paper side-steps the regime by choosing ``H`` large.
This module handles the boundary honestly:

* :func:`saturation_level` — how saturated a tree is for given (n, H);
* :func:`corrected_estimate` — a first-order bias correction that
  inverts the *exact* expected depth instead of the asymptotic
  ``log2(phi n)``, recovering accuracy in the mildly-saturated band
  (``2^H / n`` between ~4 and ~100) where the plain estimator already
  reads visibly low (see the height-sensitivity ablation);
* :func:`effective_range` — the largest ``n`` a given ``H`` estimates
  within a target bias.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import AnalysisError
from .mellin import gray_depth_moments


def saturation_level(n: int, height: int) -> float:
    """Expected fraction of *black* leaves, ``1 - (1 - 2^-H)^n``."""
    if n < 0:
        raise AnalysisError(f"n must be >= 0, got {n}")
    if not 1 <= height <= 64:
        raise AnalysisError(f"height must lie in [1, 64], got {height}")
    return 1.0 - (1.0 - 2.0**-height) ** n


def expected_depth_exact(n: int, height: int) -> float:
    """Exact ``E[d]`` including saturation effects."""
    return gray_depth_moments(n, height).mean_depth


def corrected_estimate(
    mean_depth: float, height: int, max_n: int | None = None
) -> float:
    """Invert the exact depth law at an observed mean depth.

    Monotone bisection on ``n -> E_exact[d](n)``.  Falls back to the
    asymptotic estimator when the observation is clearly in the
    unsaturated regime (where the two coincide).

    Parameters
    ----------
    mean_depth:
        Observed mean gray depth over the estimation rounds.
    height:
        Tree height ``H``.
    max_n:
        Upper bracket for the inversion; defaults to ``2^(H+6)``.
    """
    if not 0.0 <= mean_depth <= height:
        raise AnalysisError(
            f"mean depth {mean_depth!r} outside [0, {height}]"
        )
    if max_n is None:
        max_n = 1 << min(height + 6, 62)
    low, high = 1, max_n
    if expected_depth_exact(high, height) <= mean_depth:
        # Observation at least as deep as the law allows at the
        # bracket: the tree is fully saturated; report the bracket.
        return float(high)
    for _ in range(80):
        mid = (low + high) // 2
        if mid == low:
            break
        if expected_depth_exact(mid, height) < mean_depth:
            low = mid
        else:
            high = mid
    # Linear interpolation between the bracketing integers.
    d_low = expected_depth_exact(low, height)
    d_high = expected_depth_exact(high, height)
    if d_high == d_low:
        return float(low)
    fraction = (mean_depth - d_low) / (d_high - d_low)
    return float(low + fraction * (high - low))


def estimator_bias(n: int, height: int) -> float:
    """Relative bias of the plain estimator at (n, H).

    ``phi^-1 2^(E[d]) / n - 1``: zero in the unsaturated regime,
    increasingly negative as ``2^H`` approaches ``n``.
    """
    from ..core.accuracy import PHI

    if n < 1:
        raise AnalysisError(f"n must be >= 1, got {n}")
    mean_depth = expected_depth_exact(n, height)
    return (2.0**mean_depth / PHI) / n - 1.0


def effective_range(height: int, bias_tolerance: float = 0.05) -> int:
    """Largest ``n`` estimated within ``bias_tolerance`` at height H.

    Binary search on :func:`estimator_bias`; the result backs the
    "H = 32 accommodates 40 million tags" style sizing claims.
    """
    if not 0.0 < bias_tolerance < 1.0:
        raise AnalysisError(
            f"bias_tolerance must lie in (0, 1), got {bias_tolerance!r}"
        )
    # Anchor the search above the tiny-n regime (n < ~100), where the
    # asymptotic constant phi has not converged yet and the plain
    # estimator carries a small positive bias unrelated to saturation.
    low = 128
    high = 1 << min(height + 4, 62)
    if height < 10 or abs(estimator_bias(low, height)) > bias_tolerance:
        raise AnalysisError(
            f"height {height} is too small for a meaningful effective "
            f"range at tolerance {bias_tolerance}"
        )
    if abs(estimator_bias(high, height)) <= bias_tolerance:
        return high
    while high - low > 1:
        mid = (low + high) // 2
        if abs(estimator_bias(mid, height)) <= bias_tolerance:
            low = mid
        else:
            high = mid
    return low
