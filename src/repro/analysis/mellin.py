"""Exact and asymptotic distribution of the gray-node position.

The gray node on a random estimating path sits at depth ``d`` (prefix
length) with CDF

    P(d <= k) = P(no tag matches the (k+1)-bit prefix)
              = (1 - 2^-(k+1))^n        for 0 <= k < H,
    P(d <= H) = 1,

because each of the ``n`` independent uniform codes matches a fixed
``j``-bit prefix with probability ``2^-j``.  Writing ``p = (1-2^-H)^n``
for the white-leaf fraction and ``h = H - d`` for the node height
recovers the paper's Eq. 5, ``P(h) = p^(2^(h-1)) (1 - p^(2^(h-1)))``.

The asymptotic moments (paper Eqs. 8-11) come from Mellin-transform
analysis of the harmonic sum ``E(h) = sum_k e^(-n 2^-k-1)``; this module
evaluates both the exact finite sums and the asymptotic forms, including
the tiny periodic fluctuation term ``P(log2 n)`` the paper bounds by
``1e-5``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..core.accuracy import EULER_GAMMA, PHI, SIGMA_H


def _check_inputs(n: int, height: int) -> None:
    if n < 0:
        raise AnalysisError(f"n must be >= 0, got {n}")
    if not 1 <= height <= 64:
        raise AnalysisError(f"height must lie in [1, 64], got {height}")


def gray_depth_cdf(n: int, height: int) -> np.ndarray:
    """Exact CDF of the gray depth: ``cdf[k] = P(d <= k)``, k = 0..H."""
    _check_inputs(n, height)
    ks = np.arange(height + 1, dtype=np.float64)
    cdf = (1.0 - 2.0 ** -(ks + 1.0)) ** n
    cdf[height] = 1.0
    return cdf


def gray_depth_pmf(n: int, height: int) -> np.ndarray:
    """Exact PMF of the gray depth over ``0..H``.

    ``pmf[k] = P(d = k) = P(d <= k) - P(d <= k-1)``; for ``n = 0`` all
    mass sits at depth 0 (every slot idle).
    """
    cdf = gray_depth_cdf(n, height)
    pmf = np.empty_like(cdf)
    pmf[0] = cdf[0]
    pmf[1:] = np.diff(cdf)
    return pmf


def gray_height_pmf(n: int, height: int) -> np.ndarray:
    """Exact PMF of the gray *height* ``h = H - d`` over ``0..H``.

    Index ``h`` of the result is ``P(height = h)`` — the reversed depth
    PMF; matches the paper's Eq. 5 in the ``p ~ e^(-n 2^-H)`` regime.
    """
    return gray_depth_pmf(n, height)[::-1].copy()


@dataclass(frozen=True)
class GrayMoments:
    """Exact moments of the gray depth for one ``(n, H)``.

    Attributes
    ----------
    mean_depth, std_depth:
        Exact mean and standard deviation of ``d``.
    mean_height:
        ``H - mean_depth`` (the paper's ``E(h)``).
    asymptotic_mean_depth:
        The Mellin form ``log2(phi n)``.
    asymptotic_std:
        The constant ``sigma(h) = 1.87271...``.
    """

    mean_depth: float
    std_depth: float
    mean_height: float
    asymptotic_mean_depth: float
    asymptotic_std: float


def gray_depth_moments(n: int, height: int) -> GrayMoments:
    """Exact and asymptotic moments of the gray-node depth."""
    if n < 1:
        raise AnalysisError(f"moments require n >= 1, got {n}")
    pmf = gray_depth_pmf(n, height)
    ks = np.arange(height + 1, dtype=np.float64)
    mean = float((ks * pmf).sum())
    var = float(((ks - mean) ** 2 * pmf).sum())
    return GrayMoments(
        mean_depth=mean,
        std_depth=math.sqrt(var),
        mean_height=height - mean,
        asymptotic_mean_depth=math.log2(PHI * n),
        asymptotic_std=SIGMA_H,
    )


def periodic_fluctuation(n: float, terms: int = 40) -> float:
    """The oscillating remainder ``P(log2 n)`` of the Mellin expansion.

    The paper drops this term, noting its amplitude is bounded by
    ``1e-5``.  We evaluate it from the standard Fourier form of the
    fluctuation in probabilistic-counting analyses (Kirschenhofer &
    Prodinger 1990):

        P(x) = (1/ln 2) * sum_{k != 0} Gamma(-chi_k) * exp(2 pi i k x),
        chi_k = 2 pi i k / ln 2,

    returning the real part.  Tests assert ``|P| < 1e-5``, confirming the
    paper's bound — and justifying ignoring it in the estimator.
    """
    if n <= 0:
        raise AnalysisError(f"n must be positive, got {n}")
    try:
        from scipy.special import gamma as gamma_func
    except ImportError as exc:  # pragma: no cover - scipy is a dependency
        raise AnalysisError("scipy is required for the fluctuation") from exc

    x = math.log2(n)
    log2 = math.log(2.0)
    total = 0.0 + 0.0j
    for k in range(1, terms + 1):
        chi = 2.0j * math.pi * k / log2
        coefficient = gamma_func(-chi)
        total += coefficient * np.exp(2.0j * math.pi * k * x)
        total += np.conj(coefficient) * np.exp(-2.0j * math.pi * k * x)
    return float(total.real / log2)


def expected_height_exact(n: int, height: int) -> float:
    """Exact ``E(h)`` by finite summation (the paper's Eq. 6)."""
    return gray_depth_moments(n, height).mean_height


def expected_height_asymptotic(n: int, height: int) -> float:
    """Asymptotic ``E(h) ~ H - log2 n - (gamma/ln2 - 1/2)``.

    Equal to ``H - log2(phi n)`` with ``phi = e^gamma/sqrt 2``, i.e.
    ``log2 phi = gamma/ln2 - 1/2 = 0.3327...``.  Note the paper's Eq. 8
    prints the constant with a ``+`` sign, which contradicts both its
    own estimator ``n_hat = phi^-1 2^(H - h_bar)`` (Eq. 14) and the
    exact finite sum (:func:`expected_height_exact`, which this
    function matches to ~1e-2); we follow the self-consistent sign.
    """
    if n < 1:
        raise AnalysisError(f"n must be >= 1, got {n}")
    return height - math.log2(n) - (EULER_GAMMA / math.log(2.0) - 0.5)
