"""Predicted sampling distributions for PET and the baselines.

* PET: the ``m``-round estimate is ``n_hat = phi^-1 2^(d_bar)``; by the
  central limit theorem ``d_bar`` is approximately normal with the exact
  per-round moments from :mod:`repro.analysis.mellin`, making ``n_hat``
  log-normal.  :func:`estimate_distribution` evaluates that density —
  the theoretical curve of Fig. 6a — and
  :func:`within_interval_probability` integrates it over the confidence
  interval.

* FNEB: the per-round statistic is the index of the first nonempty slot
  of a hashed frame.  Its exact moments follow from
  ``P(X > x) = (1 - x/f)^n``.

* LoF: the per-round statistic is the index of the first *empty* bucket
  under geometric hashing.  Bucket occupancies are weakly dependent; we
  use the standard independent-bucket (Poisson) approximation
  ``P(bucket j empty) = exp(-n 2^-(j+1))``, accurate to ``O(1/n)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sstats

from ..core.accuracy import PHI
from ..errors import AnalysisError
from .mellin import gray_depth_moments


@dataclass(frozen=True)
class RoundMoments:
    """Mean and standard deviation of one round's statistic."""

    mean: float
    std: float


def pet_round_moments(n: int, height: int) -> RoundMoments:
    """Exact per-round gray-depth moments for PET."""
    moments = gray_depth_moments(n, height)
    return RoundMoments(mean=moments.mean_depth, std=moments.std_depth)


def estimate_distribution(
    n: int,
    height: int,
    rounds: int,
    grid: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Theoretical density of the PET estimate after ``rounds`` rounds.

    Returns ``(grid, pdf)`` where ``pdf[i]`` is the density of ``n_hat``
    at ``grid[i]``.  ``d_bar ~ Normal(mu_d, sigma_d / sqrt(m))`` makes
    ``n_hat = phi^-1 2^(d_bar)`` log-normal:

        ln n_hat = d_bar ln 2 - ln phi.

    Parameters
    ----------
    grid:
        Estimate values at which to evaluate the density; defaults to
        ``n * [0.8, 1.2]`` with 481 points.
    """
    if rounds < 1:
        raise AnalysisError(f"rounds must be >= 1, got {rounds}")
    moments = pet_round_moments(n, height)
    mu_log = moments.mean * math.log(2.0) - math.log(PHI)
    sigma_log = moments.std * math.log(2.0) / math.sqrt(rounds)
    if grid is None:
        grid = np.linspace(0.8 * n, 1.2 * n, 481)
    grid = np.asarray(grid, dtype=np.float64)
    if np.any(grid <= 0):
        raise AnalysisError("estimate grid must be strictly positive")
    pdf = sstats.lognorm.pdf(grid, s=sigma_log, scale=math.exp(mu_log))
    return grid, pdf


def within_interval_probability(
    n: int, height: int, rounds: int, epsilon: float
) -> float:
    """Predicted ``Pr{|n_hat - n| <= eps n}`` for PET.

    Integrates the log-normal model over ``[(1-eps)n, (1+eps)n]``.
    """
    if not 0.0 < epsilon < 1.0:
        raise AnalysisError(f"epsilon must lie in (0, 1), got {epsilon!r}")
    moments = pet_round_moments(n, height)
    mu_log = moments.mean * math.log(2.0) - math.log(PHI)
    sigma_log = moments.std * math.log(2.0) / math.sqrt(rounds)
    lower = math.log((1.0 - epsilon) * n)
    upper = math.log((1.0 + epsilon) * n)
    normal = sstats.norm(loc=mu_log, scale=sigma_log)
    return float(normal.cdf(upper) - normal.cdf(lower))


def fneb_round_moments(n: int, frame_size: int) -> RoundMoments:
    """Exact moments of FNEB's first-nonempty-slot index.

    Slots are numbered ``1..f``; with ``n >= 1`` tags hashed uniformly,
    ``P(X > x) = prod-free (1 - x/f)^n`` for ``0 <= x < f``.  Moments via
    ``E[X] = sum P(X > x)`` and ``E[X^2] = sum (2x+1) P(X > x)``.
    """
    if n < 1:
        raise AnalysisError(f"n must be >= 1, got {n}")
    if frame_size < 1:
        raise AnalysisError(f"frame_size must be >= 1, got {frame_size}")
    if frame_size <= 1 << 16:
        xs = np.arange(frame_size, dtype=np.float64)
        tail = (1.0 - xs / frame_size) ** n  # P(X > x), x = 0..f-1
        mean = float(tail.sum())
        second = float(((2.0 * xs + 1.0) * tail).sum())
        var = max(second - mean**2, 0.0)
        return RoundMoments(mean=mean, std=math.sqrt(var))
    # Large frames: P(X > x) ~ exp(-n x / f), i.e. X is geometric with
    # success probability 1 - r, r = exp(-n/f).  Then E[X] = 1/(1-r) and
    # Var[X] = r/(1-r)^2 (truncation at f is negligible for n >= 1).
    r = math.exp(-n / frame_size)
    mean = 1.0 / (1.0 - r)
    std = math.sqrt(r) / (1.0 - r)
    return RoundMoments(mean=mean, std=std)


def lof_round_moments(n: int, num_buckets: int = 32) -> RoundMoments:
    """Approximate moments of LoF's first-empty-bucket index ``R``.

    Independent-bucket approximation:
    ``P(R > r) = prod_{j<=r} (1 - exp(-n 2^-(j+1)))``; the residual mass
    beyond the last bucket is clamped to ``num_buckets``.
    """
    if n < 1:
        raise AnalysisError(f"n must be >= 1, got {n}")
    if num_buckets < 1:
        raise AnalysisError(f"num_buckets must be >= 1, got {num_buckets}")
    occupancy = 1.0 - np.exp(
        -n * 2.0 ** -(np.arange(num_buckets, dtype=np.float64) + 1.0)
    )
    tail = np.cumprod(occupancy)  # tail[r] = P(R > r)
    # PMF over r = 0..num_buckets: P(R = r) = P(R > r-1) - P(R > r).
    pmf = np.empty(num_buckets + 1)
    pmf[0] = 1.0 - tail[0]
    pmf[1:num_buckets] = tail[:-1] - tail[1:]
    pmf[num_buckets] = tail[-1]
    rs = np.arange(num_buckets + 1, dtype=np.float64)
    mean = float((rs * pmf).sum())
    var = float(((rs - mean) ** 2 * pmf).sum())
    return RoundMoments(mean=mean, std=math.sqrt(var))
