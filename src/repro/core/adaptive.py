"""Sequential (early-stopping) PET estimation — an extension.

The paper's planner (Eq. 20) fixes ``m`` up front from the worst-case
per-round deviation ``sigma(h)``.  But after a handful of rounds the
reader already *knows* the sample deviation; a sequential design can
stop as soon as the running confidence interval is tight enough,
saving slots whenever the observed spread runs below ``sigma(h)``
(it concentrates tightly around 1.87, so savings are modest but real —
and the machinery also absorbs extra rounds gracefully when early
observations are unlucky).

The stopping rule is the standard anytime-valid normal bound with a
small inflation factor to compensate for peeking; empirical coverage
is checked by tests and the ablation bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import AccuracyRequirement, PetConfig
from ..errors import EstimationError
from .accuracy import PHI, SIGMA_H, confidence_scale, rounds_required
from .estimator import RoundDriver
from .path import EstimatingPath


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of a sequential estimation.

    Attributes
    ----------
    n_hat:
        Final estimate.
    rounds_used:
        Rounds actually executed.
    rounds_planned:
        What the fixed Eq. 20 plan would have used.
    total_slots:
        Slots consumed.
    stopped_early:
        Whether the sequential rule fired before the fixed plan.
    """

    n_hat: float
    rounds_used: int
    rounds_planned: int
    total_slots: int
    stopped_early: bool


class AdaptivePetEstimator:
    """PET estimation with a sequential stopping rule.

    Parameters
    ----------
    requirement:
        The ``(epsilon, delta)`` contract.
    config:
        PET parameters (tree height, search strategy).
    min_rounds:
        Never stop before this many rounds (stabilises the sample
        deviation estimate).
    peeking_inflation:
        Multiplier on the z threshold to pay for continuous peeking.
    rng:
        Reader-side randomness.
    """

    def __init__(
        self,
        requirement: AccuracyRequirement,
        config: PetConfig | None = None,
        min_rounds: int = 64,
        peeking_inflation: float = 1.1,
        rng: np.random.Generator | None = None,
    ):
        if min_rounds < 2:
            raise EstimationError("min_rounds must be >= 2")
        if peeking_inflation < 1.0:
            raise EstimationError("peeking_inflation must be >= 1.0")
        self.requirement = requirement
        self.config = config or PetConfig()
        self.min_rounds = min_rounds
        self.peeking_inflation = peeking_inflation
        self._rng = rng if rng is not None else np.random.default_rng()

    def _precision_target(self) -> float:
        """Required std error of the mean depth (in bits).

        From Eq. 19: the mean depth must resolve ``log2(1 + eps)`` with
        confidence ``c`` — i.e. ``se(d_bar) <= log2(1+eps)/c``.
        """
        c = confidence_scale(self.requirement.delta)
        return math.log2(1.0 + self.requirement.epsilon) / (
            c * self.peeking_inflation
        )

    def run(self, driver: RoundDriver) -> AdaptiveResult:
        """Execute rounds until the stopping rule fires."""
        planned = rounds_required(
            self.requirement.epsilon, self.requirement.delta
        )
        target_se = self._precision_target()
        depths: list[int] = []
        total_slots = 0
        # Hard cap: a bad run never exceeds the fixed plan by more than
        # the sigma ratio squared could justify.
        cap = max(planned * 2, self.min_rounds)
        while True:
            path = EstimatingPath.random(
                self.config.tree_height, self._rng
            )
            depth, slots = driver.run_round(path, len(depths))
            depths.append(depth)
            total_slots += slots
            m = len(depths)
            if m >= self.min_rounds:
                sample_std = float(np.std(depths, ddof=1))
                # Guard against a deceptively small early sample std:
                # never trust below half the asymptotic value.
                effective_std = max(sample_std, 0.5 * SIGMA_H)
                if effective_std / math.sqrt(m) <= target_se:
                    break
            if m >= cap:
                break
        n_hat = float(2.0 ** np.mean(depths) / PHI)
        return AdaptiveResult(
            n_hat=n_hat,
            rounds_used=len(depths),
            rounds_planned=planned,
            total_slots=total_slots,
            stopped_early=len(depths) < planned,
        )
