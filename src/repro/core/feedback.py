"""The Sec. 4.6.2 one-bit-feedback variant, as real state machines.

Algorithm 3 as written broadcasts the prefix length (or a full mask)
every slot.  The paper's final optimization inverts the information
flow: *tags* maintain the binary-search bounds ``(low, high)`` locally,
compute ``mid`` themselves, and the reader broadcasts only **one bit**
per slot — whether the previous slot was busy — which is exactly the
information tags need to update their bounds in lockstep with the
reader.

This module implements that variant end to end:

* :class:`FeedbackQuery` — the 1-bit command;
* :class:`StatefulBoundsMixin` / :func:`update_bounds` — the shared
  bounds arithmetic, guaranteed identical on both sides;
* :class:`FeedbackPetTag` — a passive tag running the mirrored search
  (Sec. 4.6.2: "If tags keep high and low locally, they can compute a
  new value of mid according to 1-bit information");
* :class:`FeedbackPetReader` — the reader driving it.

Equivalence with Algorithm 3 is asserted by tests: for every population
and path, the feedback protocol reaches the same gray depth in the same
number of slots, with 1-bit commands instead of ``log2 H``-bit ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ProtocolError
from .messages import StartRound
from .path import EstimatingPath


@dataclass(frozen=True)
class FeedbackQuery:
    """One slot of the feedback protocol.

    Attributes
    ----------
    previous_busy:
        Whether the *previous* query slot was busy — the single bit of
        Sec. 4.6.2.  ``None`` marks the first query slot of a round
        (nothing to feed back yet).
    """

    previous_busy: bool | None = None

    @property
    def payload_bits(self) -> int:
        """Always one bit on the air."""
        return 1


def update_bounds(
    low: int, high: int, mid: int, was_busy: bool
) -> tuple[int, int]:
    """The Algorithm 3 bounds update, shared by reader and tags.

    Keeping this in one function is what guarantees the two sides stay
    in lockstep: both apply ``low <- mid`` on busy and
    ``high <- mid - 1`` on idle.
    """
    if was_busy:
        return mid, high
    return low, mid - 1


def next_mid(low: int, high: int) -> int:
    """Algorithm 3 line 6: ``mid = ceil((low + high) / 2)``."""
    return (low + high + 1) // 2


class FeedbackPetTag:
    """A passive tag running the mirrored binary search (Sec. 4.6.2).

    State per round: the estimating path register plus the 5-bit
    ``low``/``high`` bounds the paper budgets ("the cost of managing
    high and low (5 bits for each) is small").
    """

    def __init__(self, tag_id: int, height: int, preloaded_code: int):
        if not 0 <= preloaded_code < (1 << height):
            raise ProtocolError(
                f"preloaded code {preloaded_code} out of range for "
                f"height {height}"
            )
        self._tag_id = tag_id
        self._height = height
        self._code = preloaded_code
        self._path: EstimatingPath | None = None
        self._low = 1
        self._high = height
        self._last_mid: int | None = None
        #: Bitwise comparisons performed (cost accounting).
        self.comparisons = 0

    @property
    def tag_id(self) -> int:
        """Unique tag identifier."""
        return self._tag_id

    @property
    def bounds(self) -> tuple[int, int]:
        """The tag's current local ``(low, high)`` bounds."""
        return self._low, self._high

    def hear(self, command: object) -> bool:
        """Channel-listener hook."""
        if isinstance(command, StartRound):
            self._path = command.path
            self._low, self._high = 1, self._height
            self._last_mid = None
            return False
        if isinstance(command, FeedbackQuery):
            return self._answer(command)
        return False

    def _answer(self, query: FeedbackQuery) -> bool:
        if self._path is None:
            raise ProtocolError(
                f"tag {self._tag_id} got FeedbackQuery before StartRound"
            )
        if query.previous_busy is not None:
            if self._last_mid is None:
                raise ProtocolError(
                    f"tag {self._tag_id} got feedback before any query"
                )
            self._low, self._high = update_bounds(
                self._low, self._high, self._last_mid,
                query.previous_busy,
            )
        mid = next_mid(self._low, self._high)
        self._last_mid = mid
        self.comparisons += 1
        return self._path.matches_prefix(self._code, mid)


class FeedbackPetReader:
    """Reader side of the 1-bit protocol.

    Drives one :class:`~repro.radio.channel.SlottedChannel` whose
    listeners are :class:`FeedbackPetTag` instances, mirroring the
    Algorithm 3 search while broadcasting only the previous slot's
    busy bit.
    """

    def __init__(self, channel, height: int):
        self.channel = channel
        self.height = height

    def run_round(
        self, path: EstimatingPath, round_index: int = 0
    ) -> tuple[int, int]:
        """One round; returns ``(gray_depth, query_slots)``."""
        if path.height != self.height:
            raise ProtocolError(
                f"path height {path.height} != reader height "
                f"{self.height}"
            )
        start = StartRound(path=path, seed=None)
        self.channel.broadcast(
            start, label=f"start r={path}",
            payload_bits=start.payload_bits,
        )
        low, high = 1, self.height
        previous_busy: bool | None = None
        slots = 0
        last_busy_for_depth_check = False
        while low < high or previous_busy is None:
            mid = next_mid(low, high)
            outcome = self.channel.broadcast(
                FeedbackQuery(previous_busy=previous_busy),
                label=path.prefix_string(mid),
                payload_bits=1,
            )
            slots += 1
            previous_busy = outcome.busy
            last_busy_for_depth_check = outcome.busy
            low, high = update_bounds(low, high, mid, outcome.busy)
            if low >= high and slots >= 1:
                break
        # Disambiguate depth 0 exactly as BinaryGraySearch does: when
        # the loop converged to low = 1 without ever observing prefix
        # length 1 busy, probe it.
        if low == 1:
            outcome = self.channel.broadcast(
                FeedbackQuery(previous_busy=previous_busy),
                label=path.prefix_string(next_mid(1, 1)),
                payload_bits=1,
            )
            slots += 1
            if not outcome.busy:
                return 0, slots
        return low, slots


def build_feedback_channel(codes, height: int, rng=None):
    """Convenience: a channel with one FeedbackPetTag per code."""
    from ..radio.channel import SlottedChannel

    channel = SlottedChannel(
        rng=rng if rng is not None else np.random.default_rng()
    )
    for index, code in enumerate(codes):
        channel.attach(FeedbackPetTag(index, height, int(code)))
    return channel
