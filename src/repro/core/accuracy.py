"""Sec. 4.2 analysis: constants, round planning, and the estimator.

The gray-node height ``h`` on a random path satisfies (paper Eq. 5)

    P(h) = p^(2^(h-1)) * (1 - p^(2^(h-1))),    p = (1 - 2^-H)^n,

whose Mellin-transform asymptotics give (Eqs. 8-11)

    E(h)     ~ H - log2(phi * n),   phi = e^gamma / sqrt(2) = 1.25941...
    sigma(h) ~ sqrt(pi^2 / (6 ln^2 2) + 1/12) = 1.87271...

Averaging ``m`` independent observations and inverting yields the
estimator (Eq. 14); the central-limit argument (Eqs. 15-20) produces the
required number of rounds ``m(epsilon, delta)`` — a constant independent
of ``n``.

Depth vs height
---------------
The protocol *observes* the gray node's depth ``d = H - h`` (the longest
busy prefix length).  The paper's Algorithm 1 stores exactly this
quantity (``h_i <- j - 1``) yet feeds it into the height-based formula —
a notational slip; the two are reconciled by ``2^(H - h) = 2^d``, so this
module exposes the estimator in its observable form:

    n_hat = phi^-1 * 2^(mean depth).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import special

from ..errors import AnalysisError, ConfigurationError

#: Euler-Mascheroni constant ``gamma``.
EULER_GAMMA = float(np.euler_gamma)

#: The paper's bias constant ``phi = e^gamma / sqrt(2) = 1.25941...``.
PHI = math.exp(EULER_GAMMA) / math.sqrt(2.0)

#: Asymptotic per-round standard deviation of the gray-node height,
#: ``sigma(h) = sqrt(pi^2 / (6 ln^2 2) + 1/12) = 1.87271...`` (Eq. 11).
SIGMA_H = math.sqrt(math.pi**2 / (6.0 * math.log(2.0) ** 2) + 1.0 / 12.0)


def confidence_scale(delta: float) -> float:
    """The constant ``c`` with ``1 - delta = erf(c / sqrt 2)`` (Eq. 17).

    ``c`` is the two-sided standard-normal quantile: the averaged
    observation must stay within ``c`` standard errors of its mean with
    probability ``1 - delta``.
    """
    if not 0.0 < delta < 1.0:
        raise AnalysisError(f"delta must lie in (0, 1), got {delta!r}")
    return math.sqrt(2.0) * float(special.erfinv(1.0 - delta))


def rounds_required(
    epsilon: float,
    delta: float,
    sigma: float = SIGMA_H,
) -> int:
    """Number of estimation rounds ``m`` meeting the accuracy contract.

    Implements Eq. 20:

        m >= max( (-c sigma / log2(1 - eps))^2 , (c sigma / log2(1 + eps))^2 )

    The second term always dominates (``log2(1+eps) < -log2(1-eps)``),
    but we evaluate both, as the paper writes it.

    Parameters
    ----------
    epsilon, delta:
        The accuracy contract ``Pr{|n_hat - n| <= eps n} >= 1 - delta``.
    sigma:
        Per-round standard deviation of the averaged statistic.  Defaults
        to PET's ``sigma(h)``; baselines with other per-round statistics
        (e.g. LoF's first-empty-bucket index) pass their own.
    """
    if not 0.0 < epsilon < 1.0:
        raise AnalysisError(f"epsilon must lie in (0, 1), got {epsilon!r}")
    if sigma <= 0.0:
        raise AnalysisError(f"sigma must be positive, got {sigma!r}")
    c = confidence_scale(delta)
    lower = (-c * sigma / math.log2(1.0 - epsilon)) ** 2
    upper = (c * sigma / math.log2(1.0 + epsilon)) ** 2
    return max(1, math.ceil(max(lower, upper)))


def expected_depth(n: int, height: int | None = None) -> float:
    """Asymptotic expected gray-node depth, ``log2(phi * n)``.

    Valid in the paper's regime ``1 << n << 2^H``; ``height`` (when
    given) is used only to warn about leaving that regime.
    """
    if n < 1:
        raise AnalysisError(f"n must be >= 1, got {n}")
    depth = math.log2(PHI * n)
    if height is not None and depth > height:
        raise AnalysisError(
            f"expected depth {depth:.2f} exceeds tree height {height}; "
            f"increase H (Sec. 4.2 requires 2^H >> n)"
        )
    return depth


def expected_height(n: int, height: int) -> float:
    """Asymptotic expected gray-node height, ``H - log2(phi n)`` (Eq. 9)."""
    return height - expected_depth(n, height)


def estimate_from_depths(depths: Sequence[float] | np.ndarray) -> float:
    """The PET estimator: ``n_hat = phi^-1 * 2^(mean depth)`` (Eq. 14).

    Parameters
    ----------
    depths:
        Observed gray-node depths, one per completed round.
    """
    depths = np.asarray(depths, dtype=np.float64)
    if depths.size == 0:
        raise AnalysisError("cannot estimate from zero completed rounds")
    return float(2.0 ** depths.mean() / PHI)


def estimate_std(n: int, rounds: int) -> float:
    """First-order predicted std-dev of ``n_hat`` around ``n``.

    From ``n_hat = phi^-1 2^(d_bar)``: a perturbation ``delta d_bar``
    scales the estimate by ``2^(delta d_bar)``, so to first order
    ``sigma(n_hat) ~ n * ln 2 * sigma(h) / sqrt(m)``.  Used for the
    Fig. 4b/4c theoretical overlays.
    """
    if n < 1:
        raise AnalysisError(f"n must be >= 1, got {n}")
    if rounds < 1:
        raise AnalysisError(f"rounds must be >= 1, got {rounds}")
    return n * math.log(2.0) * SIGMA_H / math.sqrt(rounds)


def minimum_height(n_max: int, white_fraction: float = 0.99) -> int:
    """Smallest ``H`` keeping the white-leaf fraction above a threshold.

    Sec. 4.2: "we can always choose a sufficiently big H such that
    p = (1 - 2^-H)^n ~ 1" — e.g. ``H = 32`` accommodates 40 million tags
    with ``p >= 0.99``.
    """
    if n_max < 1:
        raise ConfigurationError(f"n_max must be >= 1, got {n_max}")
    if not 0.0 < white_fraction < 1.0:
        raise ConfigurationError(
            f"white_fraction must lie in (0, 1), got {white_fraction!r}"
        )
    # p ~ exp(-n / 2^H) >= white_fraction  <=>  2^H >= n / -ln(white_fraction)
    needed = n_max / (-math.log(white_fraction))
    return max(1, math.ceil(math.log2(needed)))
