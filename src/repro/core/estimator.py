"""The :class:`PetEstimator` facade.

A PET estimation run is ``m`` independent rounds; each round draws a
random estimating path, locates the gray node, and records its depth.
The estimator is agnostic to *how* a round is executed: anything
implementing :class:`RoundDriver` can power it —

* the slot-level simulator (real tag/reader state machines, channel),
* the vectorized simulator (numpy code arrays),
* the sampled simulator (exact gray-depth distribution),

so the aggregation, accounting, and result types live here, once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..config import AccuracyRequirement, PetConfig
from ..errors import EstimationError
from .accuracy import estimate_from_depths, rounds_required
from .path import EstimatingPath


@dataclass(frozen=True)
class RoundRecord:
    """Outcome of one estimation round.

    Attributes
    ----------
    path:
        The estimating path used.
    gray_depth:
        Observed depth ``d`` of the gray node, in ``[0, H]``.
    slots:
        Time slots the round consumed (search probes).
    """

    path: EstimatingPath
    gray_depth: int
    slots: int


@dataclass(frozen=True)
class EstimateResult:
    """A completed estimation with full per-round provenance.

    Attributes
    ----------
    n_hat:
        The cardinality estimate ``phi^-1 * 2^(mean depth)``.
    rounds:
        Per-round records, length ``m``.
    """

    n_hat: float
    rounds: tuple[RoundRecord, ...] = field(repr=False)

    @property
    def num_rounds(self) -> int:
        """Number of estimation rounds performed, ``m``."""
        return len(self.rounds)

    @property
    def total_slots(self) -> int:
        """Total time slots across all rounds (the paper's cost metric)."""
        return sum(record.slots for record in self.rounds)

    @property
    def depths(self) -> np.ndarray:
        """Observed gray depths as an array (length ``m``)."""
        return np.array(
            [record.gray_depth for record in self.rounds], dtype=np.float64
        )

    def accuracy(self, true_n: int) -> float:
        """The paper's accuracy metric ``n_hat / n`` (Eq. 22)."""
        if true_n < 1:
            raise EstimationError(f"true_n must be >= 1, got {true_n}")
        return self.n_hat / true_n

    def within(self, requirement: AccuracyRequirement, true_n: int) -> bool:
        """Whether this estimate satisfies ``|n_hat - n| <= eps n``."""
        return requirement.contains(self.n_hat, true_n)


class RoundDriver(Protocol):
    """Executes one PET round for a given path.

    Returns the observed gray depth and the number of slots consumed.
    """

    def run_round(
        self, path: EstimatingPath, round_index: int
    ) -> tuple[int, int]:
        """Run one round; return ``(gray_depth, slots_used)``."""
        ...


class PetEstimator:
    """Plans and aggregates a full ``m``-round PET estimation.

    Parameters
    ----------
    config:
        Protocol parameters.  When ``config.rounds`` is ``None`` the
        round count is derived from ``requirement`` via Eq. 20.
    requirement:
        The ``(epsilon, delta)`` accuracy contract; optional when
        ``config.rounds`` is explicit.
    rng:
        Source of the reader-side randomness (estimating paths, seeds).
    """

    def __init__(
        self,
        config: PetConfig | None = None,
        requirement: AccuracyRequirement | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.config = config or PetConfig()
        self.requirement = requirement
        self._rng = rng if rng is not None else np.random.default_rng()
        if self.config.rounds is None and requirement is None:
            raise EstimationError(
                "either config.rounds or an accuracy requirement is needed "
                "to size the estimation"
            )

    @property
    def planned_rounds(self) -> int:
        """The number of rounds ``m`` this estimator will run."""
        if self.config.rounds is not None:
            return self.config.rounds
        assert self.requirement is not None  # guarded in __init__
        return rounds_required(
            self.requirement.epsilon, self.requirement.delta
        )

    def draw_path(self) -> EstimatingPath:
        """Draw one uniform estimating path of the configured height."""
        return EstimatingPath.random(self.config.tree_height, self._rng)

    def run(self, driver: RoundDriver) -> EstimateResult:
        """Execute the full estimation against ``driver``."""
        records = []
        for round_index in range(self.planned_rounds):
            path = self.draw_path()
            gray_depth, slots = driver.run_round(path, round_index)
            if not 0 <= gray_depth <= self.config.tree_height:
                raise EstimationError(
                    f"driver reported gray depth {gray_depth} outside "
                    f"[0, {self.config.tree_height}]"
                )
            records.append(
                RoundRecord(path=path, gray_depth=gray_depth, slots=slots)
            )
        n_hat = estimate_from_depths([r.gray_depth for r in records])
        return EstimateResult(n_hat=n_hat, rounds=tuple(records))
