"""Reader-to-tag command vocabulary for the PET protocols.

Two commands suffice for every PET variant:

* :class:`StartRound` — broadcast once per round, carrying the estimating
  path and (for active tags, Algorithm 2) the per-round hash seed.
* :class:`PrefixQuery` — one per slot, asking tags whose code matches the
  first ``length`` bits of the round's path to respond.

``PrefixQuery.payload_bits`` reflects the Sec. 4.6.2 overhead discussion:
naively the reader broadcasts a 32-bit mask, but only ``log2 H`` bits of
information are carried (the prefix length), and with tag-side high/low
mirroring a single feedback bit suffices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .path import EstimatingPath


@dataclass(frozen=True)
class StartRound:
    """Per-round broadcast: the path, and a seed for active tags.

    Attributes
    ----------
    path:
        This round's estimating path ``r``.
    seed:
        Hash seed for Algorithm 2 tags; ``None`` for the Sec. 4.5 passive
        variant, where tags keep their preloaded code and only the path
        changes between rounds.
    """

    path: EstimatingPath
    seed: int | None = None

    @property
    def payload_bits(self) -> int:
        """Broadcast size: the path plus (if present) a 32-bit seed."""
        seed_bits = 0 if self.seed is None else 32
        return self.path.height + seed_bits


@dataclass(frozen=True)
class PrefixQuery:
    """Per-slot query: respond iff your code matches the path's prefix.

    Attributes
    ----------
    length:
        Queried prefix length ``j`` (the number of high mask bits set).
    encoding:
        How the command is wired on air, affecting only the overhead
        accounting: ``"mask"`` broadcasts the full H-bit mask
        (Algorithm 1 as written), ``"mid"`` broadcasts the 5-bit prefix
        length, ``"feedback"`` broadcasts the 1-bit busy/idle echo of the
        Sec. 4.6.2 optimization.
    height:
        The tree height ``H``, needed to size the ``"mask"`` encoding.
    """

    length: int
    encoding: str = "mid"
    height: int = 32

    _ENCODINGS = ("mask", "mid", "feedback")

    def __post_init__(self) -> None:
        if self.encoding not in self._ENCODINGS:
            raise ConfigurationError(
                f"encoding must be one of {self._ENCODINGS}, "
                f"got {self.encoding!r}"
            )
        if not 0 <= self.length <= self.height:
            raise ConfigurationError(
                f"prefix length {self.length} out of range [0, {self.height}]"
            )

    @property
    def payload_bits(self) -> int:
        """Command payload size under the selected encoding."""
        if self.encoding == "mask":
            return self.height
        if self.encoding == "mid":
            return max(1, math.ceil(math.log2(self.height + 1)))
        return 1
