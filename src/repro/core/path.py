"""Estimating paths: random root-to-leaf routes through the PET tree.

An estimating path is an ``H``-bit string selected uniformly by the
reader at the start of each round (Sec. 4.1).  Querying the path's
length-``j`` prefixes partitions the tag set: a tag responds at prefix
length ``j`` iff the top ``j`` bits of its PET code equal the top ``j``
bits of the path.

Internally a path is stored as an integer whose *top* ``height`` bits (in
a ``height``-bit word) are the path labels from the root down — the same
convention as PET codes, so prefix comparison is a mask-and-XOR.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


class EstimatingPath:
    """An immutable ``height``-bit estimating path.

    Parameters
    ----------
    bits:
        The path as an integer in ``[0, 2**height)``; bit ``height-1``
        (the most significant) is the branch taken at the root.
    height:
        The PET tree height ``H``.
    """

    __slots__ = ("_bits", "_height")

    def __init__(self, bits: int, height: int):
        if not 1 <= height <= 64:
            raise ConfigurationError(
                f"path height must lie in [1, 64], got {height}"
            )
        if not 0 <= bits < (1 << height):
            raise ConfigurationError(
                f"path bits {bits!r} out of range for height {height}"
            )
        self._bits = bits
        self._height = height

    @classmethod
    def random(
        cls, height: int, rng: np.random.Generator
    ) -> "EstimatingPath":
        """Draw a uniform random path of the given height.

        Consumes exactly one full-range 64-bit word from ``rng`` and
        keeps the top ``height`` bits, so batch path generation (one
        array draw covering many rounds) reproduces repeated scalar
        calls bit-for-bit — the batched experiment engine relies on
        this.
        """
        if not 1 <= height <= 64:
            raise ConfigurationError(
                f"path height must lie in [1, 64], got {height}"
            )
        word = int(rng.integers(0, 2**64, dtype=np.uint64))
        return cls(word >> (64 - height), height)

    @classmethod
    def from_string(cls, bit_string: str) -> "EstimatingPath":
        """Build a path from a literal like ``"000011"`` (root first)."""
        if not bit_string or set(bit_string) - {"0", "1"}:
            raise ConfigurationError(
                f"bit string must be nonempty 0/1, got {bit_string!r}"
            )
        return cls(int(bit_string, 2), len(bit_string))

    @property
    def bits(self) -> int:
        """The path as an integer (top bit = root branch)."""
        return self._bits

    @property
    def height(self) -> int:
        """The PET tree height ``H``."""
        return self._height

    def prefix(self, length: int) -> int:
        """Return the top ``length`` bits of the path, right-aligned."""
        self._check_length(length)
        if length == 0:
            return 0
        return self._bits >> (self._height - length)

    def prefix_mask(self, length: int) -> int:
        """The Algorithm 1 ``mask``: top ``length`` bits set, rest zero."""
        self._check_length(length)
        if length == 0:
            return 0
        ones = (1 << length) - 1
        return ones << (self._height - length)

    def matches_prefix(self, code: int, length: int) -> bool:
        """Whether ``code`` (same width) shares the top ``length`` bits.

        This is exactly the tag-side test of Algorithm 2 line 5:
        ``prc AND mask == r AND mask``.
        """
        mask = self.prefix_mask(length)
        return (code & mask) == (self._bits & mask)

    def prefix_string(self, length: int) -> str:
        """Render a queried prefix like ``"00**"`` (for traces/figures)."""
        self._check_length(length)
        full = format(self._bits, f"0{self._height}b")
        return full[:length] + "*" * (self._height - length)

    def common_prefix_length(self, code: int) -> int:
        """Longest shared prefix (in bits) between the path and ``code``."""
        difference = (self._bits ^ code) & ((1 << self._height) - 1)
        if difference == 0:
            return self._height
        return self._height - difference.bit_length()

    def _check_length(self, length: int) -> None:
        if not 0 <= length <= self._height:
            raise ConfigurationError(
                f"prefix length {length} out of range [0, {self._height}]"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EstimatingPath):
            return NotImplemented
        return self._bits == other._bits and self._height == other._height

    def __hash__(self) -> int:
        return hash((self._bits, self._height))

    def __str__(self) -> str:
        return format(self._bits, f"0{self._height}b")

    def __repr__(self) -> str:
        return f"EstimatingPath('{self}')"
