"""An explicit PET tree.

The paper stresses that PET "is neither created nor maintained at the
RFID reader" (Sec. 4.1) — it is a conceptual structure.  This module
builds it anyway, for three purposes:

* **validation** — tests check the protocol implementations against
  ground truth computed on the explicit tree (gray-node uniqueness,
  color monotonicity along paths, Table 2's node classification);
* **teaching** — the quickstart example renders a small PET;
* **figures** — the Fig. 1/Fig. 2 structure illustrations.

The tree is only materialised for small heights (``H <= 24`` by default);
production estimation never touches this module.
"""

from __future__ import annotations

import enum
from typing import Iterable

from ..errors import ConfigurationError
from .path import EstimatingPath


class NodeColor(enum.Enum):
    """Color of a PET node along a given estimating path (Table 2)."""

    WHITE = "white"
    BLACK = "black"
    GRAY = "gray"


class PetTree:
    """A height-``H`` binary tree with tag codes mapped to leaves.

    Parameters
    ----------
    height:
        Tree height ``H``; the tree has ``2**height`` leaves.
    codes:
        PET codes of the present tags (each in ``[0, 2**height)``).
        Duplicates are allowed — two tags hashing to the same leaf simply
        make that leaf black once (hash collision, Sec. 4.2's Eq. 1
        regime).
    max_height:
        Safety bound on materialisable height.
    """

    def __init__(
        self, height: int, codes: Iterable[int], max_height: int = 24
    ):
        if not 1 <= height <= max_height:
            raise ConfigurationError(
                f"explicit PET trees support height 1..{max_height}, "
                f"got {height}; use the vectorized simulator for larger H"
            )
        self._height = height
        self._leaves = set()
        for code in codes:
            if not 0 <= code < (1 << height):
                raise ConfigurationError(
                    f"code {code} out of range for height {height}"
                )
            self._leaves.add(code)

    @property
    def height(self) -> int:
        """Tree height ``H``."""
        return self._height

    @property
    def black_leaves(self) -> frozenset[int]:
        """The set of occupied (black) leaves."""
        return frozenset(self._leaves)

    @property
    def white_fraction(self) -> float:
        """Fraction ``p`` of white leaves (Sec. 4.2)."""
        return 1.0 - len(self._leaves) / (1 << self._height)

    def subtree_is_black(self, prefix: int, depth: int) -> bool:
        """Whether the subtree under the ``depth``-bit ``prefix`` has tags.

        ``depth == 0`` denotes the root (prefix ignored).
        """
        if not 0 <= depth <= self._height:
            raise ConfigurationError(
                f"depth {depth} out of range [0, {self._height}]"
            )
        shift = self._height - depth
        return any((leaf >> shift) == prefix for leaf in self._leaves)

    def node_color(self, path: EstimatingPath, depth: int) -> NodeColor:
        """Color of the depth-``depth`` node along ``path`` (Table 2).

        * WHITE — no tag in the node's subtree;
        * GRAY — node black, but its child along the path white;
        * BLACK — node black and its child along the path also black.
          (The deepest node on a path with all-black ancestry is the leaf
          itself; a black leaf is classified GRAY when reached, since its
          "subtree along the path" is empty/white by convention only when
          the full code is unmatched — we treat a fully-matched black
          leaf as BLACK, and the gray node is then the leaf's parent
          boundary handled by :meth:`gray_depth`.)
        """
        self._check_path(path)
        node_black = self.subtree_is_black(path.prefix(depth), depth)
        if not node_black:
            return NodeColor.WHITE
        if depth == self._height:
            return NodeColor.BLACK
        child_black = self.subtree_is_black(
            path.prefix(depth + 1), depth + 1
        )
        if child_black:
            return NodeColor.BLACK
        return NodeColor.GRAY

    def gray_depth(self, path: EstimatingPath) -> int:
        """Depth of the gray node along ``path``.

        Equivalently: the longest prefix length of ``path`` matched by at
        least one tag code.  Ranges over ``[0, H]``; ``0`` means even the
        first branch is unoccupied (the root itself is the "gray node"
        when the population is nonempty on the other side, or the
        population is empty), ``H`` means the path's own leaf is black.
        """
        self._check_path(path)
        if not self._leaves:
            return 0
        return max(
            path.common_prefix_length(leaf) for leaf in self._leaves
        )

    def gray_height(self, path: EstimatingPath) -> int:
        """Height ``h = H - depth`` of the gray node (the paper's ``h``)."""
        return self._height - self.gray_depth(path)

    def colors_along(self, path: EstimatingPath) -> list[NodeColor]:
        """Colors of the nodes at depths ``0..H-1`` along ``path``.

        Tests assert the Sec. 4.4 monotonic structure on this list:
        blacks, then exactly one gray (when tags exist), then whites.
        """
        self._check_path(path)
        return [
            self.node_color(path, depth) for depth in range(self._height)
        ]

    def render(self, path: EstimatingPath | None = None) -> str:
        """ASCII rendering of the leaf row (Fig. 1 style).

        Black leaves are ``#``, white leaves ``.``; if ``path`` is given
        its leaf position is marked with ``r`` (or ``R`` on black).
        """
        cells = []
        target = path.bits if path is not None else None
        for leaf in range(1 << self._height):
            black = leaf in self._leaves
            if leaf == target:
                cells.append("R" if black else "r")
            else:
                cells.append("#" if black else ".")
        return "".join(cells)

    def _check_path(self, path: EstimatingPath) -> None:
        if path.height != self._height:
            raise ConfigurationError(
                f"path height {path.height} != tree height {self._height}"
            )
