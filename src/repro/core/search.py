"""Gray-node search strategies.

Finding the gray node along an estimating path means finding the longest
prefix length ``d`` at which at least one tag still matches — the
busy/idle boundary.  Sec. 4.4 observes that node colors are monotone
along a path, so the boundary can be found either by a linear scan
(Algorithm 1, ``O(H)`` slots) or by binary search (Algorithm 3,
``O(log H)`` slots).

Strategies are written against a :class:`PrefixOracle` — anything that
answers "is prefix length ``j`` busy?" at the cost of one slot — so the
same code drives the slot-level simulator (the oracle broadcasts a real
query) and the vectorized simulator (the oracle compares against a code
array).
"""

from __future__ import annotations

import abc
from typing import Protocol

import numpy as np


class PrefixOracle(Protocol):
    """One-slot query: does any tag match the path's first ``j`` bits?"""

    def is_busy(self, prefix_length: int) -> bool:
        """Issue the slot-``j`` query and return whether it was busy."""
        ...


class GraySearchStrategy(abc.ABC):
    """A policy for locating the busy/idle boundary on a path."""

    @abc.abstractmethod
    def find_gray_depth(self, oracle: PrefixOracle, height: int) -> int:
        """Return the gray-node depth ``d`` in ``[0, height]``.

        ``d`` is the largest ``j`` with ``oracle.is_busy(j)`` true, or 0
        when even ``j = 1`` is idle (``is_busy(0)`` is vacuously true:
        the root "matches" every tag).
        """

    @abc.abstractmethod
    def worst_case_slots(self, height: int) -> int:
        """Upper bound on slots consumed per round."""


class LinearGraySearch(GraySearchStrategy):
    """Algorithm 1: query prefix lengths 1, 2, ... until an idle slot.

    Consumes ``d + 1`` slots (``d`` busy slots, one terminating idle
    slot), except when the whole path is busy (``d = H``, ``H`` slots).
    Expected cost is ``log2(phi n) + 1`` — the ``O(log n)`` baseline.
    """

    def find_gray_depth(self, oracle: PrefixOracle, height: int) -> int:
        for length in range(1, height + 1):
            if not oracle.is_busy(length):
                return length - 1
        return height

    def worst_case_slots(self, height: int) -> int:
        return height


class BinaryGraySearch(GraySearchStrategy):
    """Algorithm 3: binary-search the boundary over ``[1, H]``.

    For ``H = 32`` the loop takes exactly ``ceil(log2 H) = 5`` probes —
    the per-round cost Table 3 reports.  The paper's pseudocode keeps
    ``low = 1`` as an invariant lower bound, which cannot represent
    ``d = 0`` (a population so sparse that even the path's first branch
    is empty — e.g. n = 0).  We follow the paper's loop exactly, then
    spend one disambiguating probe of prefix length 1 in the single case
    where the loop converged to ``low = 1``; for realistic ``n`` that
    probe almost never fires and the per-round cost stays at
    ``ceil(log2 H)``.

    Invariant: ``is_busy(high + 1)`` is false (or ``high == height``);
    the loop narrows ``[low, high]`` until ``low == high``.
    """

    def find_gray_depth(self, oracle: PrefixOracle, height: int) -> int:
        if height == 1:
            return 1 if oracle.is_busy(1) else 0
        low, high = 1, height
        while low < high:
            mid = (low + high + 1) // 2  # ceil((low+high)/2), as in Alg. 3
            if oracle.is_busy(mid):
                low = mid
            else:
                high = mid - 1
        if low == 1 and not oracle.is_busy(1):
            return 0
        return low

    def worst_case_slots(self, height: int) -> int:
        # ceil(log2(height)) loop probes + 1 possible depth-0 check.
        return max(1, (height - 1).bit_length()) + 1


def strategy_for(binary_search: bool) -> GraySearchStrategy:
    """Return the strategy selected by a :class:`repro.config.PetConfig`."""
    if binary_search:
        return BinaryGraySearch()
    return LinearGraySearch()


class _KnownDepthOracle:
    """Answers prefix probes from a precomputed gray depth."""

    def __init__(self, depth: int):
        self._depth = depth
        self.slots_used = 0
        self.busy_slots = 0

    def is_busy(self, prefix_length: int) -> bool:
        self.slots_used += 1
        busy = prefix_length <= self._depth
        if busy:
            self.busy_slots += 1
        return busy


def replay_slots(
    strategy: GraySearchStrategy, depth: int, height: int
) -> int:
    """Slots the strategy would consume to find ``depth`` on this tree."""
    oracle = _KnownDepthOracle(depth)
    found = strategy.find_gray_depth(oracle, height)
    if found != depth:
        raise AssertionError(
            f"search strategy returned {found} for known depth {depth}"
        )
    return oracle.slots_used


#: Cache behind :func:`slots_lookup_table`, keyed by (strategy type, height).
#: The built-in strategies are stateless, so the slot count for a given
#: depth is a pure function of the class — one replay per depth, ever.
_SLOTS_LUT_CACHE: dict[tuple[type, int], np.ndarray] = {}


def slots_lookup_table(
    strategy: GraySearchStrategy, height: int
) -> np.ndarray:
    """Depth -> slots-consumed table for ``strategy`` on an ``height`` tree.

    The slots a (deterministic, stateless) search strategy consumes
    depend only on the depth it ends up finding, so slot accounting for
    a whole batch of rounds reduces to ``table[depths]`` instead of one
    oracle replay per round.  The returned array has ``height + 1``
    entries (depths ``0..height``), is read-only, and is computed once
    per ``(strategy class, height)`` — repeated calls return the cached
    object.
    """
    key = (type(strategy), height)
    table = _SLOTS_LUT_CACHE.get(key)
    if table is None:
        table = np.array(
            [
                replay_slots(strategy, depth, height)
                for depth in range(height + 1)
            ],
            dtype=np.int64,
        )
        table.flags.writeable = False
        _SLOTS_LUT_CACHE[key] = table
    return table


#: Cache behind :func:`slot_outcome_tables`, same keying as the slots LUT.
_OUTCOME_LUT_CACHE: dict[
    tuple[type, int], tuple[np.ndarray, np.ndarray]
] = {}


def slot_outcome_tables(
    strategy: GraySearchStrategy, height: int
) -> tuple[np.ndarray, np.ndarray]:
    """Depth -> (busy slots, idle slots) tables for ``strategy``.

    Companion of :func:`slots_lookup_table` for slot-*outcome*
    accounting: a deterministic search's probe sequence — and hence how
    many of its probes come back busy vs idle — is a pure function of
    the depth it finds, so per-round outcome counts reduce to two table
    gathers.  Both returned arrays are read-only, have ``height + 1``
    entries, and satisfy ``busy + idle == slots_lookup_table(...)``
    elementwise.  Used by the instrumented simulators to feed the
    ``sim.slots.busy`` / ``sim.slots.idle`` counters without replaying
    any search.
    """
    key = (type(strategy), height)
    tables = _OUTCOME_LUT_CACHE.get(key)
    if tables is None:
        busy = np.empty(height + 1, dtype=np.int64)
        idle = np.empty(height + 1, dtype=np.int64)
        for depth in range(height + 1):
            oracle = _KnownDepthOracle(depth)
            found = strategy.find_gray_depth(oracle, height)
            if found != depth:
                raise AssertionError(
                    f"search strategy returned {found} for known "
                    f"depth {depth}"
                )
            busy[depth] = oracle.busy_slots
            idle[depth] = oracle.slots_used - oracle.busy_slots
        busy.flags.writeable = False
        idle.flags.writeable = False
        tables = (busy, idle)
        _OUTCOME_LUT_CACHE[key] = tables
    return tables
