"""PET core: the paper's primary contribution.

This package contains everything specific to the Probabilistic Estimating
Tree (Sec. 4):

* :mod:`~repro.core.path` — estimating paths and prefix masks;
* :mod:`~repro.core.messages` — the reader-to-tag command vocabulary;
* :mod:`~repro.core.tree` — an explicit PET tree (teaching/validation);
* :mod:`~repro.core.search` — gray-node search strategies (Algorithm 1
  linear scan, Algorithm 3 binary search);
* :mod:`~repro.core.accuracy` — the Sec. 4.2 analysis constants, the
  round planner ``m(epsilon, delta)`` and the depth -> cardinality
  estimator;
* :mod:`~repro.core.estimator` — the high-level :class:`PetEstimator`
  facade most users should start from.
"""

from .accuracy import (
    PHI,
    SIGMA_H,
    confidence_scale,
    estimate_from_depths,
    expected_depth,
    rounds_required,
)
from .estimator import EstimateResult, PetEstimator, RoundRecord
from .feedback import (
    FeedbackPetReader,
    FeedbackPetTag,
    FeedbackQuery,
)
from .messages import PrefixQuery, StartRound
from .path import EstimatingPath
from .search import (
    BinaryGraySearch,
    GraySearchStrategy,
    LinearGraySearch,
    PrefixOracle,
)
from .tree import PetTree

__all__ = [
    "PHI",
    "SIGMA_H",
    "confidence_scale",
    "estimate_from_depths",
    "expected_depth",
    "rounds_required",
    "EstimatingPath",
    "StartRound",
    "PrefixQuery",
    "FeedbackQuery",
    "FeedbackPetTag",
    "FeedbackPetReader",
    "PetTree",
    "PrefixOracle",
    "GraySearchStrategy",
    "LinearGraySearch",
    "BinaryGraySearch",
    "PetEstimator",
    "EstimateResult",
    "RoundRecord",
]
