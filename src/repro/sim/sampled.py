"""Tier 3: the distribution-sampled simulator.

For active tags each round's gray depth is an independent draw from its
exact distribution (see :mod:`repro.analysis.mellin`):

    P(d <= k) = (1 - 2^-(k+1))^n,   0 <= k < H;   P(d <= H) = 1.

Sampling the depth by inverse CDF costs ``O(H)`` arithmetic per round —
independent of ``n`` — which makes the large sweeps of Figs. 4-6
(hundreds of runs x thousands of rounds x populations up to millions)
tractable.  The cross-tier tests check that this sampler's depth law
matches the vectorized simulator empirically.

This tier intentionally refuses passive-tag configs: with fixed codes
the rounds share the code set and are only *nearly* independent
(Sec. 4.5); modelling that correlation needs the real codes, i.e.
tier 2.
"""

from __future__ import annotations

import numpy as np

from ..analysis.mellin import gray_depth_cdf
from ..config import PetConfig
from ..core.estimator import EstimateResult, PetEstimator
from ..core.path import EstimatingPath
from ..core.search import (
    slot_outcome_tables,
    slots_lookup_table,
    strategy_for,
)
from ..errors import ConfigurationError
from ..obs.registry import MetricsRegistry, get_registry


class SampledSimulator:
    """Draws gray depths from their exact law; ``O(1)`` per round in n.

    Parameters
    ----------
    n:
        True cardinality being "estimated".
    config:
        PET parameters; must have ``passive_tags=False``.
    rng:
        Randomness for the depth draws.
    """

    def __init__(
        self,
        n: int,
        config: PetConfig | None = None,
        rng: np.random.Generator | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        self.config = config or PetConfig()
        if self.config.passive_tags:
            raise ConfigurationError(
                "SampledSimulator models independent rounds only; use "
                "VectorizedSimulator for the passive (fixed-code) variant"
            )
        self.n = n
        self._rng = rng if rng is not None else np.random.default_rng()
        self._registry = (
            registry if registry is not None else get_registry()
        )
        self._strategy = strategy_for(self.config.binary_search)
        self._cdf = gray_depth_cdf(n, self.config.tree_height)

    def _draw(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Inverse-CDF draw, returning ``(depths, uniforms)``.

        The uniforms are the rounds' complete seed material on this
        tier: re-applying ``searchsorted`` on the same CDF reproduces
        the depths bit-for-bit, which is exactly what trace replay
        (:func:`repro.obs.trace.replay_round`) does.
        """
        uniforms = self._rng.random(count)
        depths = np.searchsorted(
            self._cdf, uniforms, side="left"
        ).astype(np.int64)
        return depths, uniforms

    def sample_depths(self, count: int) -> np.ndarray:
        """Draw ``count`` i.i.d. gray depths by inverse CDF."""
        return self._draw(count)[0]

    def run_round(
        self, path: EstimatingPath, round_index: int
    ) -> tuple[int, int]:
        """RoundDriver hook: sampled depth + cached slot count."""
        depths, uniforms = self._draw(1)
        depth = int(depths[0])
        height = self.config.tree_height
        slots = int(slots_lookup_table(self._strategy, height)[depth])
        recorder = self._registry.round_trace
        if recorder is not None:
            busy_table, idle_table = slot_outcome_tables(
                self._strategy, height
            )
            recorder.record_sampled_round(
                round_index=round_index,
                depth=depth,
                uniform=float(uniforms[0]),
                true_n=self.n,
                tree_height=height,
                binary_search=self.config.binary_search,
                slots=slots,
                busy_slots=int(busy_table[depth]),
                idle_slots=int(idle_table[depth]),
            )
        return depth, slots

    def estimate(self, rounds: int | None = None) -> EstimateResult:
        """Run a complete estimation (path objects are drawn but unused
        by the depth sampler; they keep the result provenance uniform
        across tiers)."""
        config = self.config
        if rounds is not None:
            config = config.with_rounds(rounds)
        estimator = PetEstimator(config=config, rng=self._rng)
        return estimator.run(self)

    def estimate_batch(self, rounds: int, repetitions: int) -> np.ndarray:
        """Vectorized repeated estimation: ``repetitions`` estimates.

        Skips per-round bookkeeping entirely: draws a
        ``repetitions x rounds`` depth matrix and applies Eq. 14 row-wise.
        Equivalent in law to calling :meth:`estimate` repeatedly; used by
        the figure sweeps.
        """
        if rounds < 1 or repetitions < 1:
            raise ConfigurationError(
                "rounds and repetitions must both be >= 1"
            )
        depths, uniforms = self._draw(rounds * repetitions)
        depths = depths.reshape(repetitions, rounds)
        uniforms = uniforms.reshape(repetitions, rounds)
        if self._registry:
            # Exact whole-batch slot-outcome accounting: the depth
            # matrix is in hand, so outcomes are two table gathers.
            height = self.config.tree_height
            busy_table, idle_table = slot_outcome_tables(
                self._strategy, height
            )
            slots_table = slots_lookup_table(self._strategy, height)
            self._registry.counter("sim.rounds").inc(depths.size)
            self._registry.counter("sim.slots").inc(
                int(slots_table[depths].sum())
            )
            self._registry.counter("sim.slots.busy").inc(
                int(busy_table[depths].sum())
            )
            self._registry.counter("sim.slots.idle").inc(
                int(idle_table[depths].sum())
            )
            self._registry.histogram("pet.gray_depth").observe_many(
                depths
            )
        from ..core.accuracy import PHI  # local import to avoid cycle

        estimates = 2.0 ** depths.mean(axis=1) / PHI
        if self._registry:
            recorder = self._registry.round_trace
            if recorder is not None:
                for run_index in range(repetitions):
                    recorder.record_sampled_run(
                        run_index=run_index,
                        depths=depths[run_index],
                        uniforms=uniforms[run_index],
                        true_n=self.n,
                        tree_height=height,
                        binary_search=self.config.binary_search,
                        slots_table=slots_table,
                        busy_table=busy_table,
                        idle_table=idle_table,
                    )
            health = self._registry.health
            if health is not None:
                health.observe_depths(depths)
        return estimates
