"""Vectorized multi-reader simulation.

The slot-level :class:`~repro.reader.controller.ReaderController` is the
faithful model of Sec. 4.6.3, but its cost grows with (tags x readers)
per slot.  This tier exploits the controller's own insight — the
OR-aggregate over readers equals a single-reader round over the *union*
of covered tags — to run multi-reader rounds at vectorized speed:

1. each round takes the current coverage map (tags -> covering readers);
2. tags covered by at least one reader form the effective population;
3. the gray depth is computed on their codes exactly as the vectorized
   single-reader tier does.

Mobility between rounds is supported by supplying a coverage-evolution
hook.  Equivalence with the slot-level controller is asserted by tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..config import PetConfig
from ..core.estimator import EstimateResult, PetEstimator
from ..core.path import EstimatingPath
from ..core.search import slots_lookup_table, strategy_for
from ..errors import ConfigurationError
from ..tags.mobility import MobileTagField
from ..tags.population import TagPopulation
from .vectorized import gray_depth_of_codes


class MultiReaderSimulator:
    """Vectorized PET rounds over a covered, possibly mobile, tag field.

    Parameters
    ----------
    population:
        All tags that exist (covered or not).
    field:
        Initial coverage map.  Tags with an empty covering set are out
        of range of every reader and invisible to the estimate —
        exactly as in the slot-level model.
    config:
        PET parameters (passive or active variant both supported).
    evolve:
        Optional ``(field, round_index) -> field`` hook applied before
        each round (mobility, coverage churn).
    rng:
        Reader-side randomness.
    """

    def __init__(
        self,
        population: TagPopulation,
        field: MobileTagField,
        config: PetConfig | None = None,
        evolve: Callable[[MobileTagField, int], MobileTagField]
        | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.population = population
        self.field = field
        self.config = config or PetConfig()
        self._evolve = evolve
        self._rng = rng if rng is not None else np.random.default_rng()
        self._strategy = strategy_for(self.config.binary_search)
        known = set(int(t) for t in population.tag_ids)
        unknown = set(field.coverage) - known
        if unknown:
            raise ConfigurationError(
                f"coverage map references {len(unknown)} tags not in "
                f"the population (first: {sorted(unknown)[:3]})"
            )
        if self.config.passive_tags:
            self._codes = population.preloaded_codes(
                self.config.tree_height
            )
        else:
            self._codes = None

    def covered_ids(self) -> np.ndarray:
        """IDs currently heard by at least one reader (sorted)."""
        covered = self.field.covered_tags
        ids = self.population.tag_ids
        mask = np.fromiter(
            (int(tag_id) in covered for tag_id in ids),
            count=len(ids),
            dtype=bool,
        )
        return ids[mask]

    def _covered_codes(self, seed: int | None) -> np.ndarray:
        covered = self.field.covered_tags
        ids = self.population.tag_ids
        mask = np.fromiter(
            (int(tag_id) in covered for tag_id in ids),
            count=len(ids),
            dtype=bool,
        )
        if self.config.passive_tags:
            assert self._codes is not None
            return self._codes[mask]
        if seed is None:
            raise ConfigurationError(
                "active-tag rounds need a per-round seed"
            )
        from ..hashing import uniform_codes

        return uniform_codes(
            seed,
            ids[mask],
            self.config.tree_height,
            self.population.family,
        )

    def run_round(
        self, path: EstimatingPath, round_index: int
    ) -> tuple[int, int]:
        """RoundDriver hook: evolve coverage, then one OR-round."""
        if self._evolve is not None:
            self.field = self._evolve(self.field, round_index)
        seed = (
            None
            if self.config.passive_tags
            else int(self._rng.integers(0, 2**63))
        )
        codes = self._covered_codes(seed)
        depth = gray_depth_of_codes(
            codes, path.bits, self.config.tree_height
        )
        slots = int(
            slots_lookup_table(self._strategy, self.config.tree_height)[
                depth
            ]
        )
        return depth, slots

    def estimate(self, rounds: int | None = None) -> EstimateResult:
        """Run a complete estimation over the (evolving) field."""
        config = self.config
        if rounds is not None:
            config = config.with_rounds(rounds)
        estimator = PetEstimator(config=config, rng=self._rng)
        return estimator.run(self)
