"""Tier 2: the vectorized simulator.

Represents the population's PET codes as numpy arrays and computes each
round's gray depth directly:

* the gray depth for path ``r`` is the longest common prefix between
  ``r`` and any tag code;
* any value numerically between a code ``c`` and ``r`` shares at least
  as long a prefix with ``r`` as ``c`` does, so the maximum is achieved
  by ``r``'s immediate neighbours in *sorted* code order — one
  ``searchsorted`` plus two XORs per round for fixed codes;
* for per-round fresh codes (active tags) the sort cannot be amortised,
  so the depth is taken as ``max`` over a vectorized
  leading-zero count of ``codes XOR r`` — ``O(n)`` per round.

Slot accounting uses the depth -> slots lookup table cached in
:mod:`repro.core.search` (slots consumed by a deterministic search
depend only on the depth found), so the slot counts are exactly those
the real reader would consume — this is asserted by the cross-tier
equivalence tests.
"""

from __future__ import annotations

import numpy as np

from ..config import PetConfig
from ..core.estimator import EstimateResult, PetEstimator
from ..core.path import EstimatingPath
from ..core.search import (  # noqa: F401  (re-exported for back-compat)
    replay_slots,
    slots_lookup_table,
    strategy_for,
)
from ..errors import ConfigurationError
from ..hashing.geometric import leading_zeros64_vec
from ..tags.population import TagPopulation


def gray_depth_of_codes(codes: np.ndarray, path_bits: int, height: int) -> int:
    """Longest common prefix (bits) between ``path_bits`` and any code."""
    if codes.size == 0:
        return 0
    diffs = codes.astype(np.uint64) ^ np.uint64(path_bits)
    # Left-align the H-bit values in 64 bits so leading zeros count
    # prefix bits only.
    aligned = diffs << np.uint64(64 - height)
    zeros = leading_zeros64_vec(aligned)
    return int(min(height, zeros.max()))


def gray_depth_sorted(
    sorted_codes: np.ndarray, path_bits: int, height: int
) -> int:
    """Gray depth via the path's neighbours in a sorted code array."""
    if sorted_codes.size == 0:
        return 0
    position = int(
        np.searchsorted(sorted_codes, np.uint64(path_bits), side="left")
    )
    best = 0
    for neighbour in (position - 1, position):
        if 0 <= neighbour < sorted_codes.size:
            diff = int(sorted_codes[neighbour]) ^ path_bits
            if diff == 0:
                best = height
            else:
                best = max(best, height - diff.bit_length())
    return best


class VectorizedSimulator:
    """Numpy-backed PET rounds over an explicit tag population.

    Parameters
    ----------
    population:
        The tag set to estimate.
    config:
        PET parameters.  ``passive_tags=True`` uses the fixed
        manufacturing codes for every round (sorted once);
        ``passive_tags=False`` hashes fresh codes from a per-round seed,
        reproducing Algorithm 2's independence exactly.
    rng:
        Randomness for per-round seeds.
    """

    def __init__(
        self,
        population: TagPopulation,
        config: PetConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.population = population
        self.config = config or PetConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._strategy = strategy_for(self.config.binary_search)
        height = self.config.tree_height
        if population.size > 0 and height > 62:
            raise ConfigurationError(
                "vectorized simulation supports tree heights up to 62"
            )
        if self.config.passive_tags:
            codes = population.preloaded_codes(height)
            self._sorted_codes: np.ndarray | None = np.sort(codes)
        else:
            self._sorted_codes = None

    def gray_depth(self, path: EstimatingPath, seed: int | None) -> int:
        """Compute the gray depth for one round without slot accounting."""
        height = self.config.tree_height
        if self.config.passive_tags:
            assert self._sorted_codes is not None
            return gray_depth_sorted(self._sorted_codes, path.bits, height)
        if seed is None:
            raise ConfigurationError(
                "active-tag rounds need a per-round seed"
            )
        codes = self.population.codes(seed, height)
        return gray_depth_of_codes(codes, path.bits, height)

    def run_round(
        self, path: EstimatingPath, round_index: int
    ) -> tuple[int, int]:
        """RoundDriver hook: depth via numpy, slots via strategy replay."""
        seed = (
            None
            if self.config.passive_tags
            else int(self._rng.integers(0, 2**63))
        )
        depth = self.gray_depth(path, seed)
        height = self.config.tree_height
        slots = int(slots_lookup_table(self._strategy, height)[depth])
        return depth, slots

    def estimate(self, rounds: int | None = None) -> EstimateResult:
        """Run a complete estimation over this simulator."""
        config = self.config
        if rounds is not None:
            config = config.with_rounds(rounds)
        estimator = PetEstimator(config=config, rng=self._rng)
        return estimator.run(self)
