"""The batched experiment engine: whole experiment cells in numpy.

:class:`~repro.sim.experiment.ExperimentRunner`'s reference loop runs
one repetition at a time, and each repetition one round at a time —
Python-level work per round.  For the paper's evaluation (every data
point averaged over 300 independent runs, Sec. 5.1) and for the
dynamic-monitoring workloads that re-estimate at streaming rates, that
loop *is* the hot path of the whole benchmark suite.

:class:`BatchedExperimentEngine` computes an entire experiment cell —
all ``repetitions x rounds`` gray depths — in a handful of array
operations per repetition and no Python round loop at all:

* estimating paths are drawn as one ``(rounds,)`` (passive) or
  ``(rounds, 2)`` (active: path word + seed word) ``uint64`` array whose
  word stream matches the scalar draws of
  :meth:`~repro.core.path.EstimatingPath.random` and the per-round seed
  draw bit-for-bit, so the engine reproduces the reference loop exactly
  from the same ``SeedSequence`` children;
* for fixed (passive) codes the population is sorted once and every
  round's gray depth comes from a single batched ``searchsorted`` plus
  an XOR/leading-zeros pass over the two neighbours;
* for per-round fresh (active) codes the code matrix is produced by the
  hash family's broadcast :meth:`~repro.hashing.family.HashFamily.code_matrix`
  and reduced with one leading-zeros ``max`` per chunk of rounds;
* slot accounting is a table lookup
  (:func:`repro.core.search.slots_lookup_table`) plus a sum — no oracle
  replay per round.

Bit-for-bit equivalence with the reference loop (and, on small
populations, the slot-level simulator) is enforced by
``tests/sim/test_equivalence.py``.
"""

from __future__ import annotations

import time

import numpy as np

from ..config import PAPER_RUNS_PER_POINT, PetConfig
from ..core.accuracy import estimate_from_depths
from ..core.search import (
    slot_outcome_tables,
    slots_lookup_table,
    strategy_for,
)
from ..errors import ConfigurationError
from ..hashing.family import HashFamily
from ..hashing.geometric import leading_zeros64_vec
from ..obs.profile import active_profiler
from ..obs.registry import MetricsRegistry, get_registry
from .experiment import RepeatedEstimate
from .workload import WorkloadSpec, build_population

#: Ceiling on the per-chunk (rounds x tags) code matrix for fresh-code
#: rounds — keeps peak memory around 16 MB regardless of cell size.
_FRESH_CHUNK_ELEMENTS = 1 << 21


def batched_gray_depths_sorted(
    sorted_codes: np.ndarray, path_bits: np.ndarray, height: int
) -> np.ndarray:
    """Gray depths of many paths against one sorted fixed-code array.

    The gray depth of path ``r`` is the longest common prefix between
    ``r`` and any code, which is achieved by ``r``'s immediate
    neighbours in sorted code order — so the whole batch is one
    ``searchsorted`` plus two vectorized XOR/leading-zeros passes.
    """
    rounds = int(path_bits.shape[0])
    if sorted_codes.size == 0:
        return np.zeros(rounds, dtype=np.int64)
    shift = np.uint64(64 - height)
    positions = np.searchsorted(sorted_codes, path_bits, side="left")
    left = sorted_codes[np.maximum(positions - 1, 0)]
    right = sorted_codes[np.minimum(positions, sorted_codes.size - 1)]
    lcp_left = np.minimum(
        height, leading_zeros64_vec((left ^ path_bits) << shift)
    )
    lcp_right = np.minimum(
        height, leading_zeros64_vec((right ^ path_bits) << shift)
    )
    lcp_left[positions == 0] = 0
    lcp_right[positions == sorted_codes.size] = 0
    return np.maximum(lcp_left, lcp_right).astype(np.int64)


def batched_gray_depths_fresh(
    tag_ids: np.ndarray,
    seeds: np.ndarray,
    path_bits: np.ndarray,
    height: int,
    family: HashFamily,
    chunk_elements: int = _FRESH_CHUNK_ELEMENTS,
) -> np.ndarray:
    """Gray depths of many paths, each against its own fresh code set.

    Active tags rehash per round, so the sort cannot be amortised;
    instead the ``(rounds, tags)`` code matrix is produced chunk-wise by
    the family's broadcast hash and reduced with one leading-zeros
    ``max`` per chunk.
    """
    rounds = int(seeds.shape[0])
    population_size = int(tag_ids.size)
    if population_size == 0:
        return np.zeros(rounds, dtype=np.int64)
    shift = np.uint64(64 - height)
    depths = np.empty(rounds, dtype=np.int64)
    chunk = max(1, chunk_elements // population_size)
    for start in range(0, rounds, chunk):
        stop = min(start + chunk, rounds)
        codes = family.code_matrix(seeds[start:stop], tag_ids, height)
        aligned = (codes ^ path_bits[start:stop, None]) << shift
        zeros = leading_zeros64_vec(aligned)
        depths[start:stop] = np.minimum(height, zeros.max(axis=1))
    return depths


class BatchedExperimentEngine:
    """Runs vectorized-tier experiment cells without per-round Python.

    Drop-in replacement for the reference repetition loop of
    :meth:`repro.sim.experiment.ExperimentRunner.run_vectorized`: same
    seed tree (one :class:`numpy.random.SeedSequence` child per
    repetition), same per-repetition population resampling, bit-for-bit
    identical estimates and slot counts, 1-2 orders of magnitude faster.

    Parameters
    ----------
    base_seed:
        Root of the seed tree for every repetition.
    repetitions:
        Independent runs per cell (paper default: 300).
    registry:
        Metrics registry for cell timing, slot-outcome counters, and
        the gray-depth histogram; defaults to the process-wide active
        registry.  Instrumentation reads the computed depth arrays and
        the wall clock only — never the seed tree — so results stay
        bit-identical to the reference loop with any registry.
    """

    def __init__(
        self,
        base_seed: int = 2011,
        repetitions: int = PAPER_RUNS_PER_POINT,
        registry: MetricsRegistry | None = None,
    ):
        if repetitions < 1:
            raise ConfigurationError(
                f"repetitions must be >= 1, got {repetitions}"
            )
        self.base_seed = base_seed
        self.repetitions = repetitions
        self.registry = (
            registry if registry is not None else get_registry()
        )

    def run_cell(
        self,
        spec: WorkloadSpec,
        config: PetConfig,
        rounds: int,
    ) -> RepeatedEstimate:
        """Compute one full experiment cell (all repetitions x rounds)."""
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        height = config.tree_height
        if spec.size > 0 and height > 62:
            raise ConfigurationError(
                "vectorized simulation supports tree heights up to 62"
            )
        strategy = strategy_for(config.binary_search)
        slots_table = slots_lookup_table(strategy, height)
        registry = self.registry
        profiler = active_profiler(registry)
        recorder = registry.round_trace if registry else None
        health = registry.health if registry else None
        if registry:
            busy_table, idle_table = slot_outcome_tables(
                strategy, height
            )
            depth_histogram = registry.histogram("pet.gray_depth")
            busy_slots = 0
            idle_slots = 0
        start = time.perf_counter()
        with registry.span(
            "cell", tier="batched", n=spec.size, rounds=rounds
        ):
            children = np.random.SeedSequence(self.base_seed).spawn(
                self.repetitions
            )
            words_per_round = 1 if config.passive_tags else 2
            estimates = np.empty(self.repetitions)
            total_slots = 0
            for index, child in enumerate(children):
                with profiler.phase("seed_matrix"):
                    rng = np.random.default_rng(child)
                    # One array draw reproduces the reference loop's
                    # per-round scalar draws: path word (then seed word,
                    # active variant) in round order — see
                    # EstimatingPath.random.
                    words = rng.integers(
                        0,
                        2**64,
                        size=(rounds, words_per_round),
                        dtype=np.uint64,
                    )
                    path_bits = words[:, 0] >> np.uint64(64 - height)
                with profiler.phase("hash_passes"):
                    population = build_population(
                        WorkloadSpec(
                            size=spec.size,
                            id_space=spec.id_space,
                            seed=spec.seed + index,
                        )
                    )
                    if config.passive_tags:
                        codes = np.sort(
                            population.preloaded_codes(height)
                        )
                        depths = batched_gray_depths_sorted(
                            codes, path_bits, height
                        )
                    else:
                        # integers(0, 2**63) is a one-word Lemire draw:
                        # word >> 1.
                        seeds = words[:, 1] >> np.uint64(1)
                        depths = batched_gray_depths_fresh(
                            population.tag_ids,
                            seeds,
                            path_bits,
                            height,
                            population.family,
                        )
                with profiler.phase("finalize"):
                    estimates[index] = estimate_from_depths(depths)
                with profiler.phase("reduction"):
                    total_slots += int(slots_table[depths].sum())
                    if registry:
                        busy_slots += int(busy_table[depths].sum())
                        idle_slots += int(idle_table[depths].sum())
                        depth_histogram.observe_many(depths)
                    if recorder is not None:
                        recorder.record_population_run(
                            tier="batched",
                            run_index=index,
                            depths=depths,
                            path_bits=path_bits,
                            round_seeds=(
                                None if config.passive_tags else seeds
                            ),
                            population_size=spec.size,
                            population_id_space=spec.id_space,
                            population_seed=spec.seed + index,
                            tree_height=height,
                            binary_search=config.binary_search,
                            slots_table=slots_table,
                            busy_table=busy_table,
                            idle_table=idle_table,
                        )
                    if health is not None:
                        health.observe_depths(depths)
        seconds = time.perf_counter() - start
        repeated = RepeatedEstimate(
            true_n=spec.size,
            rounds=rounds,
            estimates=estimates,
            slots_per_run=total_slots / self.repetitions,
        )
        if registry:
            rounds_done = rounds * self.repetitions
            registry.counter("experiment.cells").inc()
            registry.counter("experiment.rounds").inc(rounds_done)
            registry.counter("sim.rounds").inc(rounds_done)
            registry.counter("sim.slots").inc(total_slots)
            registry.counter("sim.slots.busy").inc(busy_slots)
            registry.counter("sim.slots.idle").inc(idle_slots)
            registry.histogram("experiment.cell_seconds").observe(
                seconds
            )
            if seconds > 0:
                registry.gauge("experiment.rounds_per_second").set(
                    rounds_done / seconds
                )
            if health is not None:
                health.observe_estimates(estimates, rounds)
            registry.event(
                "cell",
                tier="batched",
                n=spec.size,
                rounds=rounds,
                repetitions=self.repetitions,
                mean_estimate=float(estimates.mean()),
                slots_per_run=repeated.slots_per_run,
                seconds=seconds,
            )
        return repeated
