"""The batched experiment engine: whole experiment cells in numpy.

:class:`~repro.sim.experiment.ExperimentRunner`'s reference loop runs
one repetition at a time, and each repetition one round at a time —
Python-level work per round.  For the paper's evaluation (every data
point averaged over 300 independent runs, Sec. 5.1) and for the
dynamic-monitoring workloads that re-estimate at streaming rates, that
loop *is* the hot path of the whole benchmark suite.

:class:`BatchedExperimentEngine` computes an entire experiment cell —
all ``repetitions x rounds`` gray depths — in a handful of array
operations per repetition and no Python round loop at all:

* estimating paths are drawn as one ``(rounds,)`` (passive) or
  ``(rounds, 2)`` (active: path word + seed word) ``uint64`` array whose
  word stream matches the scalar draws of
  :meth:`~repro.core.path.EstimatingPath.random` and the per-round seed
  draw bit-for-bit, so the engine reproduces the reference loop exactly
  from the same ``SeedSequence`` children;
* for fixed (passive) codes the population is sorted once and every
  round's gray depth comes from a single batched ``searchsorted`` plus
  an XOR/leading-zeros pass over the two neighbours;
* for per-round fresh (active) codes the code matrix is produced by the
  hash family's broadcast :meth:`~repro.hashing.family.HashFamily.code_matrix`
  and reduced with one leading-zeros ``max`` per chunk of rounds;
* slot accounting is a table lookup
  (:func:`repro.core.search.slots_lookup_table`) plus a sum — no oracle
  replay per round.

Bit-for-bit equivalence with the reference loop (and, on small
populations, the slot-level simulator) is enforced by
``tests/sim/test_equivalence.py``.
"""

from __future__ import annotations

import time

import numpy as np

from ..config import PAPER_RUNS_PER_POINT, PetConfig
from ..core.accuracy import estimate_from_depths
from ..core.search import (
    slot_outcome_tables,
    slots_lookup_table,
    strategy_for,
)
from ..errors import ConfigurationError
from ..hashing.family import HashFamily
from ..hashing.geometric import leading_zeros64_vec
from ..obs.profile import active_profiler
from ..obs.registry import MetricsRegistry, get_registry
from .experiment import RepeatedEstimate
from .workload import WorkloadSpec, build_population

#: Ceiling on the per-chunk (rounds x tags) code matrix for fresh-code
#: rounds — keeps peak memory around 16 MB regardless of cell size.
_FRESH_CHUNK_ELEMENTS = 1 << 21


def batched_gray_depths_sorted(
    sorted_codes: np.ndarray, path_bits: np.ndarray, height: int
) -> np.ndarray:
    """Gray depths of many paths against one sorted fixed-code array.

    The gray depth of path ``r`` is the longest common prefix between
    ``r`` and any code, which is achieved by ``r``'s immediate
    neighbours in sorted code order — so the whole batch is one
    ``searchsorted`` plus two vectorized XOR/leading-zeros passes.
    """
    rounds = int(path_bits.shape[0])
    if sorted_codes.size == 0:
        return np.zeros(rounds, dtype=np.int64)
    shift = np.uint64(64 - height)
    positions = np.searchsorted(sorted_codes, path_bits, side="left")
    left = sorted_codes[np.maximum(positions - 1, 0)]
    right = sorted_codes[np.minimum(positions, sorted_codes.size - 1)]
    lcp_left = np.minimum(
        height, leading_zeros64_vec((left ^ path_bits) << shift)
    )
    lcp_right = np.minimum(
        height, leading_zeros64_vec((right ^ path_bits) << shift)
    )
    lcp_left[positions == 0] = 0
    lcp_right[positions == sorted_codes.size] = 0
    return np.maximum(lcp_left, lcp_right).astype(np.int64)


def batched_gray_depths_fresh(
    tag_ids: np.ndarray,
    seeds: np.ndarray,
    path_bits: np.ndarray,
    height: int,
    family: HashFamily,
    chunk_elements: int = _FRESH_CHUNK_ELEMENTS,
) -> np.ndarray:
    """Gray depths of many paths, each against its own fresh code set.

    Active tags rehash per round, so the sort cannot be amortised;
    instead the ``(rounds, tags)`` code matrix is produced chunk-wise by
    the family's broadcast hash and reduced with one leading-zeros
    ``max`` per chunk.
    """
    rounds = int(seeds.shape[0])
    population_size = int(tag_ids.size)
    if population_size == 0:
        return np.zeros(rounds, dtype=np.int64)
    shift = np.uint64(64 - height)
    depths = np.empty(rounds, dtype=np.int64)
    chunk = max(1, chunk_elements // population_size)
    for start in range(0, rounds, chunk):
        stop = min(start + chunk, rounds)
        codes = family.code_matrix(seeds[start:stop], tag_ids, height)
        aligned = (codes ^ path_bits[start:stop, None]) << shift
        zeros = leading_zeros64_vec(aligned)
        depths[start:stop] = np.minimum(height, zeros.max(axis=1))
    return depths


class BatchedExperimentEngine:
    """Runs vectorized-tier experiment cells without per-round Python.

    Drop-in replacement for the reference repetition loop of
    :meth:`repro.sim.experiment.ExperimentRunner.run_vectorized`: same
    seed tree (one :class:`numpy.random.SeedSequence` child per
    repetition), same per-repetition population resampling, bit-for-bit
    identical estimates and slot counts, 1-2 orders of magnitude faster.

    Parameters
    ----------
    base_seed:
        Root of the seed tree for every repetition.
    repetitions:
        Independent runs per cell (paper default: 300).
    registry:
        Metrics registry for cell timing, slot-outcome counters, and
        the gray-depth histogram; defaults to the process-wide active
        registry.  Instrumentation reads the computed depth arrays and
        the wall clock only — never the seed tree — so results stay
        bit-identical to the reference loop with any registry.
    """

    def __init__(
        self,
        base_seed: int = 2011,
        repetitions: int = PAPER_RUNS_PER_POINT,
        registry: MetricsRegistry | None = None,
    ):
        if repetitions < 1:
            raise ConfigurationError(
                f"repetitions must be >= 1, got {repetitions}"
            )
        self.base_seed = base_seed
        self.repetitions = repetitions
        self.registry = (
            registry if registry is not None else get_registry()
        )

    def run_cell(
        self,
        spec: WorkloadSpec,
        config: PetConfig,
        rounds: int,
    ) -> RepeatedEstimate:
        """Compute one full experiment cell (all repetitions x rounds)."""
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        height = config.tree_height
        if spec.size > 0 and height > 62:
            raise ConfigurationError(
                "vectorized simulation supports tree heights up to 62"
            )
        strategy = strategy_for(config.binary_search)
        slots_table = slots_lookup_table(strategy, height)
        registry = self.registry
        profiler = active_profiler(registry)
        recorder = registry.round_trace if registry else None
        health = registry.health if registry else None
        if registry:
            busy_table, idle_table = slot_outcome_tables(
                strategy, height
            )
            depth_histogram = registry.histogram("pet.gray_depth")
            busy_slots = 0
            idle_slots = 0
        start = time.perf_counter()
        with registry.span(
            "cell", tier="batched", n=spec.size, rounds=rounds
        ):
            children = np.random.SeedSequence(self.base_seed).spawn(
                self.repetitions
            )
            words_per_round = 1 if config.passive_tags else 2
            estimates = np.empty(self.repetitions)
            total_slots = 0
            for index, child in enumerate(children):
                with profiler.phase("seed_matrix"):
                    rng = np.random.default_rng(child)
                    # One array draw reproduces the reference loop's
                    # per-round scalar draws: path word (then seed word,
                    # active variant) in round order — see
                    # EstimatingPath.random.
                    words = rng.integers(
                        0,
                        2**64,
                        size=(rounds, words_per_round),
                        dtype=np.uint64,
                    )
                    path_bits = words[:, 0] >> np.uint64(64 - height)
                with profiler.phase("hash_passes"):
                    population = build_population(
                        WorkloadSpec(
                            size=spec.size,
                            id_space=spec.id_space,
                            seed=spec.seed + index,
                        )
                    )
                    if config.passive_tags:
                        codes = np.sort(
                            population.preloaded_codes(height)
                        )
                        depths = batched_gray_depths_sorted(
                            codes, path_bits, height
                        )
                    else:
                        # integers(0, 2**63) is a one-word Lemire draw:
                        # word >> 1.
                        seeds = words[:, 1] >> np.uint64(1)
                        depths = batched_gray_depths_fresh(
                            population.tag_ids,
                            seeds,
                            path_bits,
                            height,
                            population.family,
                        )
                with profiler.phase("finalize"):
                    estimates[index] = estimate_from_depths(depths)
                with profiler.phase("reduction"):
                    total_slots += int(slots_table[depths].sum())
                    if registry:
                        busy_slots += int(busy_table[depths].sum())
                        idle_slots += int(idle_table[depths].sum())
                        depth_histogram.observe_many(depths)
                    if recorder is not None:
                        recorder.record_population_run(
                            tier="batched",
                            run_index=index,
                            depths=depths,
                            path_bits=path_bits,
                            round_seeds=(
                                None if config.passive_tags else seeds
                            ),
                            population_size=spec.size,
                            population_id_space=spec.id_space,
                            population_seed=spec.seed + index,
                            tree_height=height,
                            binary_search=config.binary_search,
                            slots_table=slots_table,
                            busy_table=busy_table,
                            idle_table=idle_table,
                        )
                    if health is not None:
                        health.observe_depths(depths)
        seconds = time.perf_counter() - start
        repeated = RepeatedEstimate(
            true_n=spec.size,
            rounds=rounds,
            estimates=estimates,
            slots_per_run=total_slots / self.repetitions,
        )
        if registry:
            rounds_done = rounds * self.repetitions
            registry.counter("experiment.cells").inc()
            registry.counter("experiment.rounds").inc(rounds_done)
            registry.counter("sim.rounds").inc(rounds_done)
            registry.counter("sim.slots").inc(total_slots)
            registry.counter("sim.slots.busy").inc(busy_slots)
            registry.counter("sim.slots.idle").inc(idle_slots)
            registry.histogram("experiment.cell_seconds").observe(
                seconds
            )
            if seconds > 0:
                registry.gauge("experiment.rounds_per_second").set(
                    rounds_done / seconds
                )
            if health is not None:
                health.observe_estimates(estimates, rounds)
            registry.event(
                "cell",
                tier="batched",
                n=spec.size,
                rounds=rounds,
                repetitions=self.repetitions,
                mean_estimate=float(estimates.mean()),
                slots_per_run=repeated.slots_per_run,
                seconds=seconds,
            )
        return repeated

    def run_rounds_grid(
        self,
        spec: WorkloadSpec,
        config: PetConfig,
        rounds_grid: "Sequence[int]",
        workers: "int | None" = None,
        progress: object = None,
    ) -> "list[RepeatedEstimate]":
        """Every rounds-grid cell of one workload from a single depth pass.

        The fig-4 drivers evaluate one population size at many round
        counts.  Calling :meth:`run_cell` per count re-derives the same
        per-repetition populations, sorted code arrays, and word
        streams for every grid value; this method exploits two prefix
        facts to pay for them exactly once:

        * word streams: ``rng.integers(0, 2**64, size=(m, k))`` is a
          row-prefix of the ``size=(max_m, k)`` draw from the same
          child (C-order full-range draws consume the stream
          identically), and
        * depths: per-round gray depths are elementwise independent,
          so the ``(repetitions, max_m)`` depth matrix computed at the
          widest grid value yields every narrower cell as the column
          prefix ``depths[:, :m]``.

        Each returned :class:`RepeatedEstimate` is therefore
        **bit-identical** to ``run_cell(spec, config, m)`` (enforced by
        the grid-equivalence tests), at roughly ``max_m / sum(grid)``
        of the work.

        ``workers`` fans the repetitions out over a process pool: the
        parent derives the word matrix into a zero-copy
        :class:`~repro.sim.shm.SharedArray`, workers fill disjoint row
        shards of a shared depth matrix, and the parent reduces every
        grid cell.  ``None``/``0``/``1`` runs serially in-process and
        never allocates a shared-memory segment.  ``progress`` is a
        sweep-style tracker (``True`` or a
        :class:`~repro.obs.progress.ProgressTracker`); cells tick as
        they are reduced.

        Telemetry is cell-equivalent for counters (``experiment.*``,
        ``sim.*``, the gray-depth histogram) but grid-level for
        timing: the shared depth pass cannot be attributed to single
        cells, so per-cell ``cell_seconds`` are not recorded.
        """
        from .experiment import _make_tracker

        grid = [int(rounds) for rounds in rounds_grid]
        if not grid:
            raise ConfigurationError("rounds_grid must be non-empty")
        for rounds in grid:
            if rounds < 1:
                raise ConfigurationError(
                    f"rounds must be >= 1, got {rounds}"
                )
        if workers is not None and workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0 when given, got {workers}"
            )
        height = config.tree_height
        if spec.size > 0 and height > 62:
            raise ConfigurationError(
                "vectorized simulation supports tree heights up to 62"
            )
        max_rounds = max(grid)
        registry = self.registry
        strategy = strategy_for(config.binary_search)
        slots_table = slots_lookup_table(strategy, height)
        start = time.perf_counter()
        with registry.span(
            "grid",
            tier="batched",
            n=spec.size,
            cells=len(grid),
            max_rounds=max_rounds,
            workers=workers or 1,
        ):
            if workers is None or workers <= 1:
                depths = self._grid_depths_serial(
                    spec, config, max_rounds
                )
            else:
                depths = self._grid_depths_parallel(
                    spec, config, max_rounds, workers
                )
            tracker = _make_tracker(progress, len(grid), registry)
            results = self._reduce_grid(
                spec, grid, depths, slots_table, strategy, tracker
            )
            if tracker is not None:
                tracker.finish()
        seconds = time.perf_counter() - start
        if registry:
            if seconds > 0:
                registry.gauge("experiment.cells_per_second").set(
                    len(grid) / seconds
                )
            registry.event(
                "grid",
                tier="batched",
                n=spec.size,
                cells=len(grid),
                max_rounds=max_rounds,
                repetitions=self.repetitions,
                workers=workers or 1,
                seconds=seconds,
            )
        return results

    def _grid_words(self, max_rounds: int, words_per_round: int):
        """Yield ``(index, words)`` per repetition — the widest draw."""
        children = np.random.SeedSequence(self.base_seed).spawn(
            self.repetitions
        )
        for index, child in enumerate(children):
            rng = np.random.default_rng(child)
            yield index, rng.integers(
                0,
                2**64,
                size=(max_rounds, words_per_round),
                dtype=np.uint64,
            )

    def _grid_depths_serial(
        self, spec: WorkloadSpec, config: PetConfig, max_rounds: int
    ) -> np.ndarray:
        """The ``(repetitions, max_rounds)`` depth matrix, in-process."""
        words_per_round = 1 if config.passive_tags else 2
        depths = np.empty(
            (self.repetitions, max_rounds), dtype=np.int64
        )
        profiler = active_profiler(self.registry)
        for index, words in self._grid_words(
            max_rounds, words_per_round
        ):
            with profiler.phase("hash_passes"):
                depths[index] = _grid_repetition_depths(
                    spec, config, words, index
                )
        return depths

    def _grid_depths_parallel(
        self,
        spec: WorkloadSpec,
        config: PetConfig,
        max_rounds: int,
        workers: int,
    ) -> np.ndarray:
        """The depth matrix via worker shards over shared memory.

        The parent derives the full word tensor once (seed discipline
        stays parent-side), shares it read-only, and shares a writable
        depth matrix that workers fill in disjoint repetition shards —
        both segments are cleaned up even when a worker dies
        mid-shard.
        """
        from .experiment import _run_pool
        from .shm import SharedArray

        words_per_round = 1 if config.passive_tags else 2
        registry = self.registry
        profiler = active_profiler(registry)
        with profiler.phase("seed_matrix"):
            words_all = np.empty(
                (self.repetitions, max_rounds, words_per_round),
                dtype=np.uint64,
            )
            for index, words in self._grid_words(
                max_rounds, words_per_round
            ):
                words_all[index] = words
        words_segment = None
        depths_segment = None
        try:
            words_segment = SharedArray.create(
                words_all, registry=registry
            )
            del words_all
            depths_segment = SharedArray.zeros(
                (self.repetitions, max_rounds),
                np.int64,
                registry=registry,
            )
            shards = _shard_ranges(self.repetitions, workers)
            with profiler.phase("hash_passes"):
                _run_pool(
                    workers,
                    [
                        (
                            _grid_depths_worker,
                            words_segment.spec,
                            depths_segment.spec,
                            shard_start,
                            shard_stop,
                            spec,
                            config,
                        )
                        for shard_start, shard_stop in shards
                    ],
                    None,
                )
            # Copy out before the segment disappears.
            return depths_segment.array.copy()
        finally:
            for segment in (words_segment, depths_segment):
                if segment is not None:
                    segment.close()
                    segment.unlink(registry=registry)

    def _reduce_grid(
        self,
        spec: WorkloadSpec,
        grid: "list[int]",
        depths: np.ndarray,
        slots_table: np.ndarray,
        strategy: object,
        tracker: object,
    ) -> "list[RepeatedEstimate]":
        """Reduce the shared depth matrix into one result per grid cell."""
        registry = self.registry
        profiler = active_profiler(registry)
        health = registry.health if registry else None
        if registry:
            busy_table, idle_table = slot_outcome_tables(
                strategy, int(slots_table.size - 1)
            )
            depth_histogram = registry.histogram("pet.gray_depth")
        # Per-repetition running slot sums: cumulative along rounds, so
        # cell m's total is one column read instead of a fresh sum.
        slot_cumulative = slots_table[depths].cumsum(axis=1)
        results = []
        for rounds in grid:
            with profiler.phase("finalize"):
                cell_depths = depths[:, :rounds]
                estimates = np.array(
                    [
                        estimate_from_depths(cell_depths[index])
                        for index in range(self.repetitions)
                    ]
                )
                total_slots = int(
                    slot_cumulative[:, rounds - 1].sum()
                )
            repeated = RepeatedEstimate(
                true_n=spec.size,
                rounds=rounds,
                estimates=estimates,
                slots_per_run=total_slots / self.repetitions,
            )
            with profiler.phase("reduction"):
                if registry:
                    rounds_done = rounds * self.repetitions
                    registry.counter("experiment.cells").inc()
                    registry.counter("experiment.rounds").inc(
                        rounds_done
                    )
                    registry.counter("sim.rounds").inc(rounds_done)
                    registry.counter("sim.slots").inc(total_slots)
                    registry.counter("sim.slots.busy").inc(
                        int(busy_table[cell_depths].sum())
                    )
                    registry.counter("sim.slots.idle").inc(
                        int(idle_table[cell_depths].sum())
                    )
                    depth_histogram.observe_many(cell_depths.ravel())
                    if health is not None:
                        health.observe_estimates(estimates, rounds)
                    registry.event(
                        "cell",
                        tier="batched-grid",
                        n=spec.size,
                        rounds=rounds,
                        repetitions=self.repetitions,
                        mean_estimate=float(estimates.mean()),
                        slots_per_run=repeated.slots_per_run,
                        seconds=float("nan"),
                    )
            if tracker is not None:
                tracker.cell_done(
                    n=spec.size,
                    slots=total_slots,
                    rounds=rounds * self.repetitions,
                )
            results.append(repeated)
        return results


def _shard_ranges(
    total: int, shards: int
) -> "list[tuple[int, int]]":
    """Split ``range(total)`` into at most ``shards`` contiguous runs."""
    shards = max(1, min(shards, total))
    base, extra = divmod(total, shards)
    ranges = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _grid_repetition_depths(
    spec: WorkloadSpec,
    config: PetConfig,
    words: np.ndarray,
    index: int,
) -> np.ndarray:
    """Gray depths of one repetition's rounds (the run_cell inner body).

    ``words`` is the repetition's ``(rounds, words_per_round)`` word
    draw; the population resampling (``spec.seed + index``) matches
    :meth:`BatchedExperimentEngine.run_cell` exactly.
    """
    height = config.tree_height
    path_bits = words[:, 0] >> np.uint64(64 - height)
    population = build_population(
        WorkloadSpec(
            size=spec.size,
            id_space=spec.id_space,
            seed=spec.seed + index,
        )
    )
    if config.passive_tags:
        codes = np.sort(population.preloaded_codes(height))
        return batched_gray_depths_sorted(codes, path_bits, height)
    seeds = words[:, 1] >> np.uint64(1)
    return batched_gray_depths_fresh(
        population.tag_ids,
        seeds,
        path_bits,
        height,
        population.family,
    )


def _grid_depths_worker(
    words_spec: object,
    depths_spec: object,
    start: int,
    stop: int,
    spec: WorkloadSpec,
    config: PetConfig,
    reporter: object = None,
) -> None:
    """Worker-process entry: fill one repetition shard of the grid.

    Attaches both parent-owned segments, writes depth rows
    ``start:stop``, and detaches; never copies the word tensor or
    unlinks anything (module-level so it pickles into the pool).
    """
    from ..obs.registry import NULL_REGISTRY
    from .shm import SharedArray

    words_segment = SharedArray.attach(
        words_spec, registry=NULL_REGISTRY
    )
    try:
        depths_segment = SharedArray.attach(
            depths_spec, registry=NULL_REGISTRY
        )
        try:
            words = words_segment.array
            depths = depths_segment.array
            for index in range(start, stop):
                depths[index] = _grid_repetition_depths(
                    spec, config, words[index], index
                )
        finally:
            depths_segment.close()
    finally:
        words_segment.close()
