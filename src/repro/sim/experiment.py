"""Repeated-estimation orchestration with managed seeds.

The paper averages every data point over 300 independent runs
(Sec. 5.1).  :class:`ExperimentRunner` owns the seed bookkeeping: each
repetition gets an independent child generator spawned from one base
seed, so any individual run can be reproduced in isolation from
``(base_seed, repetition_index)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..analysis.stats import SeriesSummary, summarize
from ..config import PAPER_RUNS_PER_POINT, PetConfig
from ..errors import ConfigurationError
from ..obs.profile import active_profiler
from ..obs.progress import (
    ProgressReporter,
    ProgressTracker,
    default_worker_id,
)
from ..obs.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    RegistrySnapshot,
    get_registry,
)
from ..obs.tracectx import (
    TraceContext,
    current_trace,
    use_trace_context,
)
from .sampled import SampledSimulator
from .vectorized import VectorizedSimulator
from .workload import WorkloadSpec, build_population


@dataclass(frozen=True)
class RepeatedEstimate:
    """All estimates from one experiment cell.

    Attributes
    ----------
    true_n:
        Ground-truth cardinality of the cell.
    rounds:
        Estimation rounds per run.
    estimates:
        One ``n_hat`` per repetition.
    slots_per_run:
        Mean total slots consumed by one estimation run.
    """

    true_n: int
    rounds: int
    estimates: np.ndarray
    slots_per_run: float

    def summary(self, epsilon: float = float("nan")) -> SeriesSummary:
        """Summarize the cell with the shared statistics helpers."""
        return summarize(self.estimates, self.true_n, epsilon=epsilon)


class ExperimentRunner:
    """Runs repeated estimations for experiment cells.

    Parameters
    ----------
    base_seed:
        Root of the seed tree for every repetition.
    repetitions:
        Independent runs per cell (paper default: 300).
    registry:
        Metrics registry cells are timed and counted against; defaults
        to the process-wide active registry (no-op unless installed).
        Instrumentation never touches the seed tree, so results are
        bit-identical with or without a real registry.
    """

    def __init__(
        self,
        base_seed: int = 2011,
        repetitions: int = PAPER_RUNS_PER_POINT,
        registry: MetricsRegistry | None = None,
    ):
        if repetitions < 1:
            raise ConfigurationError(
                f"repetitions must be >= 1, got {repetitions}"
            )
        self.base_seed = base_seed
        self.repetitions = repetitions
        self.registry = (
            registry if registry is not None else get_registry()
        )

    def _child_rngs(self, count: int) -> list[np.random.Generator]:
        seed_seq = np.random.SeedSequence(self.base_seed)
        return [np.random.default_rng(s) for s in seed_seq.spawn(count)]

    def _record_cell(
        self, tier: str, result: RepeatedEstimate, seconds: float
    ) -> None:
        """Count/time one finished cell and log its outcome event."""
        registry = self.registry
        rounds_done = result.rounds * len(result.estimates)
        registry.counter("experiment.cells").inc()
        registry.counter("experiment.rounds").inc(rounds_done)
        if seconds == seconds:  # cells timed in *this* process only
            registry.histogram("experiment.cell_seconds").observe(
                seconds
            )
            if seconds > 0:
                registry.gauge("experiment.rounds_per_second").set(
                    rounds_done / seconds
                )
        health = registry.health if registry else None
        if health is not None:
            health.observe_estimates(result.estimates, result.rounds)
        registry.event(
            "cell",
            tier=tier,
            n=result.true_n,
            rounds=result.rounds,
            repetitions=len(result.estimates),
            mean_estimate=float(result.estimates.mean()),
            slots_per_run=result.slots_per_run,
            seconds=seconds,
        )

    def run_sampled(
        self, n: int, config: PetConfig, rounds: int
    ) -> RepeatedEstimate:
        """Repeated estimation on the sampled tier (active variant).

        Uses the batch sampler: statistically identical to repeated
        full runs, at a fraction of the cost.
        """
        start = time.perf_counter()
        profiler = active_profiler(self.registry)
        with self.registry.span("cell", tier="sampled", n=n):
            with profiler.phase("seed_matrix"):
                rng = np.random.default_rng(
                    np.random.SeedSequence((self.base_seed, n, rounds))
                )
                simulator = SampledSimulator(
                    n, config=config, rng=rng, registry=self.registry
                )
            with profiler.phase("hash_passes"):
                estimates = simulator.estimate_batch(
                    rounds, self.repetitions
                )
            # One representative run for slot accounting (slot counts are
            # almost surely constant for binary search, d+1 for linear).
            with profiler.phase("reduction"):
                result = simulator.estimate(rounds=rounds)
        repeated = RepeatedEstimate(
            true_n=n,
            rounds=rounds,
            estimates=estimates,
            slots_per_run=float(result.total_slots),
        )
        self._record_cell(
            "sampled", repeated, time.perf_counter() - start
        )
        return repeated

    def run_vectorized(
        self,
        spec: WorkloadSpec,
        config: PetConfig,
        rounds: int,
        engine: str = "batched",
    ) -> RepeatedEstimate:
        """Repeated estimation on the vectorized tier (either variant).

        Each repetition rebuilds nothing but the reader-side randomness;
        for the passive variant the *population* (and hence the preloaded
        codes) is also resampled per repetition, so the measured spread
        includes the code-assignment randomness, as in the paper.

        ``engine`` selects the execution strategy: ``"batched"`` (the
        default) computes the whole cell in numpy via
        :class:`repro.sim.batched.BatchedExperimentEngine`;  ``"loop"``
        is the per-round reference implementation.  Both consume the
        same seed tree and return bit-identical results (enforced by the
        cross-tier equivalence tests).
        """
        if engine == "batched":
            from .batched import BatchedExperimentEngine

            batched = BatchedExperimentEngine(
                base_seed=self.base_seed,
                repetitions=self.repetitions,
                registry=self.registry,
            )
            return batched.run_cell(spec, config, rounds)
        if engine != "loop":
            raise ConfigurationError(
                f"engine must be 'batched' or 'loop', got {engine!r}"
            )
        return self.run_vectorized_loop(spec, config, rounds)

    def run_vectorized_loop(
        self,
        spec: WorkloadSpec,
        config: PetConfig,
        rounds: int,
    ) -> RepeatedEstimate:
        """Reference per-repetition loop behind :meth:`run_vectorized`.

        Kept as the executable specification the batched engine is
        tested against (and as the baseline of the throughput
        benchmark); prefer ``run_vectorized`` everywhere else.
        """
        start = time.perf_counter()
        with self.registry.span("cell", tier="loop", n=spec.size):
            rngs = self._child_rngs(self.repetitions)
            estimates = np.empty(self.repetitions)
            total_slots = 0
            for index, rng in enumerate(rngs):
                population = build_population(
                    WorkloadSpec(
                        size=spec.size,
                        id_space=spec.id_space,
                        seed=spec.seed + index,
                    )
                )
                simulator = VectorizedSimulator(
                    population, config=config, rng=rng
                )
                result = simulator.estimate(rounds=rounds)
                estimates[index] = result.n_hat
                total_slots += result.total_slots
        repeated = RepeatedEstimate(
            true_n=spec.size,
            rounds=rounds,
            estimates=estimates,
            slots_per_run=total_slots / self.repetitions,
        )
        self._record_cell("loop", repeated, time.perf_counter() - start)
        return repeated

    def run_custom(
        self,
        true_n: int,
        rounds: int,
        one_run: Callable[[np.random.Generator], float],
    ) -> RepeatedEstimate:
        """Repeated estimation with a caller-supplied run function.

        Used by the baseline protocols, which have their own simulators;
        ``one_run`` receives a fresh child generator and returns one
        estimate.
        """
        start = time.perf_counter()
        with self.registry.span("cell", tier="custom", n=true_n):
            rngs = self._child_rngs(self.repetitions)
            estimates = np.array([one_run(rng) for rng in rngs])
        repeated = RepeatedEstimate(
            true_n=true_n,
            rounds=rounds,
            estimates=estimates,
            slots_per_run=float("nan"),
        )
        self._record_cell(
            "custom", repeated, time.perf_counter() - start
        )
        return repeated

    def run_protocol(
        self,
        protocol: "CardinalityEstimatorProtocol",
        population: "TagPopulation",
        rounds: int,
        on_error: str = "raise",
    ) -> "ProtocolCellResult":
        """One comparison-protocol cell through its batched engine.

        Bit-identical to driving the protocol's scalar ``estimate``
        through :meth:`run_custom` with the same seeds; raises
        :class:`~repro.errors.ConfigurationError` for protocols without
        a batched engine (PET cells go through :meth:`run_sampled` /
        :meth:`run_vectorized` instead).
        """
        from .protocol_batched import run_protocol_cell

        return run_protocol_cell(
            protocol,
            population,
            rounds=rounds,
            repetitions=self.repetitions,
            base_seed=self.base_seed,
            registry=self.registry,
            on_error=on_error,
        )

    def sweep_protocols(
        self,
        specs: "Sequence[ProtocolCellSpec]",
        workers: int | None = None,
        on_error: str = "nan",
        share_seeds: bool = False,
    ) -> "list[ProtocolCellResult]":
        """Batched comparison-cell sweep (table-3 style drivers).

        Same worker semantics as :meth:`sweep`: results are bit-for-bit
        identical for any ``workers`` count.  ``share_seeds`` derives
        one wide seed matrix that every cell prefix-slices (zero-copy
        shared memory under a worker pool); see
        :func:`~repro.sim.protocol_batched.sweep_protocol_cells`.
        """
        from .protocol_batched import sweep_protocol_cells

        return sweep_protocol_cells(
            specs,
            repetitions=self.repetitions,
            base_seed=self.base_seed,
            workers=workers,
            registry=self.registry,
            on_error=on_error,
            share_seeds=share_seeds,
        )

    def sweep_rounds(
        self,
        spec: "WorkloadSpec",
        config: PetConfig,
        rounds_grid: Sequence[int],
        workers: int | None = None,
        progress: "bool | ProgressTracker | None" = None,
    ) -> list[RepeatedEstimate]:
        """Vectorized-tier sweep over round counts (fig-4 grid driver).

        One :class:`~repro.sim.batched.BatchedExperimentEngine` depth
        pass at the widest grid value serves every cell as a prefix
        reduction — bit-identical to calling :meth:`run_vectorized`
        per grid value, at a fraction of the work.  ``workers`` shards
        the repetitions over a process pool with zero-copy
        shared-memory word/depth matrices; ``None``/``0``/``1`` runs
        serially and never allocates a segment.
        """
        from .batched import BatchedExperimentEngine

        engine = BatchedExperimentEngine(
            base_seed=self.base_seed,
            repetitions=self.repetitions,
            registry=self.registry,
        )
        return engine.run_rounds_grid(
            spec,
            config,
            rounds_grid,
            workers=workers,
            progress=progress,
        )

    def sweep(
        self,
        sizes: Sequence[int],
        config: PetConfig,
        rounds: int,
        workers: int | None = None,
        progress: "bool | ProgressTracker | None" = None,
    ) -> list[RepeatedEstimate]:
        """Sampled-tier sweep over population sizes (Fig. 4 driver).

        ``workers`` fans the cells out over a
        :class:`concurrent.futures.ProcessPoolExecutor`.  Every cell
        seeds its own generator from ``SeedSequence((base_seed, n,
        rounds))`` (see :meth:`run_sampled`), independent of execution
        order — so the results are bit-for-bit identical for any worker
        count, including ``None``/``1`` (in-process serial execution).

        When this runner carries a real registry, each worker records
        into a private :class:`~repro.obs.registry.MetricsRegistry` and
        returns a :class:`~repro.obs.registry.RegistrySnapshot`, which
        the parent merges — counters, histogram buckets, spans, and
        events aggregate to the same totals as a serial run (verified
        by the parity tests), and cells are timed where they actually
        ran rather than re-recorded with ``NaN``.

        ``progress`` turns on live reporting: pass ``True`` for a
        stderr status line with throughput and ETA, or a configured
        :class:`~repro.obs.progress.ProgressTracker`.  Worker processes
        stream heartbeats back over a ``multiprocessing`` queue; the
        serial path updates the tracker directly.
        """
        if workers is not None and workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1 when given, got {workers}"
            )
        tracker = _make_tracker(progress, len(sizes), self.registry)
        start = time.perf_counter()
        with self.registry.span(
            "sweep", cells=len(sizes), workers=workers or 1
        ):
            if workers is None or workers == 1:
                results = []
                for n in sizes:
                    repeated = self.run_sampled(n, config, rounds)
                    if tracker is not None:
                        tracker.cell_done(
                            n=n,
                            slots=int(
                                repeated.slots_per_run
                                * self.repetitions
                            ),
                            rounds=rounds * self.repetitions,
                        )
                    results.append(repeated)
            else:
                # Derive one child trace context per cell in the
                # parent, so worker-side spans join the live trace
                # (ids cross the pool as plain dicts and come back in
                # the snapshots the parent merges).
                sweep_trace = current_trace()
                pairs = _run_pool(
                    workers,
                    [
                        (
                            _sweep_cell,
                            self.base_seed,
                            self.repetitions,
                            n,
                            config,
                            rounds,
                            bool(self.registry),
                            self.registry.profiler is not None,
                            sweep_trace.child().to_dict()
                            if sweep_trace is not None
                            else None,
                        )
                        for n in sizes
                    ],
                    tracker,
                )
                results = []
                for repeated, snapshot in pairs:
                    if snapshot is not None:
                        self.registry.merge(snapshot)
                    results.append(repeated)
                # Worker registries cannot carry the parent's health
                # monitor; feed it here so diagnostics see every cell.
                health = self.registry.health if self.registry else None
                if health is not None:
                    for repeated in results:
                        health.observe_estimates(
                            repeated.estimates, repeated.rounds
                        )
        seconds = time.perf_counter() - start
        if seconds > 0:
            self.registry.gauge("experiment.cells_per_second").set(
                len(sizes) / seconds
            )
        if tracker is not None:
            tracker.finish()
        return results


def _make_tracker(
    progress: "bool | ProgressTracker | None",
    total_cells: int,
    registry: MetricsRegistry,
) -> "ProgressTracker | None":
    """Resolve a sweep's ``progress`` argument to a tracker (or None)."""
    if progress is None or progress is False:
        return None
    if progress is True:
        import sys

        return ProgressTracker(
            total_cells, registry=registry, stream=sys.stderr
        )
    return progress


def _run_pool(
    workers: int,
    submissions: "list[tuple]",
    tracker: "ProgressTracker | None",
) -> list:
    """Fan submissions out over a process pool, draining heartbeats.

    Each submission is ``(fn, *args)``; the worker function's final
    argument slot receives the :class:`ProgressReporter` (or ``None``
    when no tracker is active).  Results come back in submission order.
    A ``multiprocessing.Manager`` queue carries the heartbeats — plain
    ``multiprocessing.Queue`` objects cannot cross a
    ``ProcessPoolExecutor`` submit boundary.
    """
    from concurrent.futures import ProcessPoolExecutor, wait

    manager = None
    queue = None
    reporter = None
    if tracker is not None:
        import multiprocessing

        manager = multiprocessing.Manager()
        queue = manager.Queue()
        reporter = ProgressReporter(queue)
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(fn, *args, reporter)
                for fn, *args in submissions
            ]
            pending = set(futures)
            while pending:
                _, pending = wait(
                    pending,
                    timeout=0.2 if queue is not None else None,
                )
                if tracker is not None and queue is not None:
                    tracker.drain(queue)
            results = [future.result() for future in futures]
        if tracker is not None and queue is not None:
            tracker.drain(queue)
        return results
    finally:
        if manager is not None:
            manager.shutdown()


def _sweep_cell(
    base_seed: int,
    repetitions: int,
    n: int,
    config: PetConfig,
    rounds: int,
    collect: bool = False,
    profile: bool = False,
    trace_context: "dict | None" = None,
    reporter: "ProgressReporter | None" = None,
) -> "tuple[RepeatedEstimate, RegistrySnapshot | None]":
    """Worker-process entry: one sweep cell (module-level, picklable).

    Returns the cell result plus, when ``collect`` is set, a snapshot
    of everything the worker's private registry recorded — the parent
    merges it so no worker-side telemetry is lost.  ``profile``
    mirrors the parent having a profiler attached: the worker's phase
    timings land in ``profile.*.seconds`` histograms, which merge up.
    ``trace_context`` is the parent-derived
    :meth:`~repro.obs.tracectx.TraceContext.to_dict` for this cell;
    installing it makes the worker's spans children of the parent's
    live ``sweep`` span (ids ride back inside the snapshot).
    """
    registry = MetricsRegistry() if collect else NULL_REGISTRY
    if profile and collect:
        from ..obs.profile import PhaseProfiler

        registry.attach_diagnostics(
            profiler=PhaseProfiler(registry=registry)
        )
    runner = ExperimentRunner(
        base_seed=base_seed, repetitions=repetitions, registry=registry
    )
    if reporter is not None:
        reporter.emit(phase="start", n=n, force=True)
    with use_trace_context(TraceContext.from_dict(trace_context)):
        repeated = runner.run_sampled(n, config, rounds)
    if reporter is not None:
        reporter.emit(
            phase="done",
            cells_done=1,
            slots=int(repeated.slots_per_run * repetitions),
            rounds=rounds * repetitions,
            n=n,
            force=True,
        )
    snapshot = (
        registry.snapshot(worker_id=default_worker_id())
        if collect
        else None
    )
    return repeated, snapshot
