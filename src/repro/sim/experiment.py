"""Repeated-estimation orchestration with managed seeds.

The paper averages every data point over 300 independent runs
(Sec. 5.1).  :class:`ExperimentRunner` owns the seed bookkeeping: each
repetition gets an independent child generator spawned from one base
seed, so any individual run can be reproduced in isolation from
``(base_seed, repetition_index)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..analysis.stats import SeriesSummary, summarize
from ..config import PAPER_RUNS_PER_POINT, PetConfig
from ..errors import ConfigurationError
from .sampled import SampledSimulator
from .vectorized import VectorizedSimulator
from .workload import WorkloadSpec, build_population


@dataclass(frozen=True)
class RepeatedEstimate:
    """All estimates from one experiment cell.

    Attributes
    ----------
    true_n:
        Ground-truth cardinality of the cell.
    rounds:
        Estimation rounds per run.
    estimates:
        One ``n_hat`` per repetition.
    slots_per_run:
        Mean total slots consumed by one estimation run.
    """

    true_n: int
    rounds: int
    estimates: np.ndarray
    slots_per_run: float

    def summary(self, epsilon: float = float("nan")) -> SeriesSummary:
        """Summarize the cell with the shared statistics helpers."""
        return summarize(self.estimates, self.true_n, epsilon=epsilon)


class ExperimentRunner:
    """Runs repeated estimations for experiment cells.

    Parameters
    ----------
    base_seed:
        Root of the seed tree for every repetition.
    repetitions:
        Independent runs per cell (paper default: 300).
    """

    def __init__(
        self,
        base_seed: int = 2011,
        repetitions: int = PAPER_RUNS_PER_POINT,
    ):
        if repetitions < 1:
            raise ConfigurationError(
                f"repetitions must be >= 1, got {repetitions}"
            )
        self.base_seed = base_seed
        self.repetitions = repetitions

    def _child_rngs(self, count: int) -> list[np.random.Generator]:
        seed_seq = np.random.SeedSequence(self.base_seed)
        return [np.random.default_rng(s) for s in seed_seq.spawn(count)]

    def run_sampled(
        self, n: int, config: PetConfig, rounds: int
    ) -> RepeatedEstimate:
        """Repeated estimation on the sampled tier (active variant).

        Uses the batch sampler: statistically identical to repeated
        full runs, at a fraction of the cost.
        """
        rng = np.random.default_rng(
            np.random.SeedSequence((self.base_seed, n, rounds))
        )
        simulator = SampledSimulator(n, config=config, rng=rng)
        estimates = simulator.estimate_batch(rounds, self.repetitions)
        # One representative run for slot accounting (slot counts are
        # almost surely constant for binary search, d+1 for linear).
        result = simulator.estimate(rounds=rounds)
        return RepeatedEstimate(
            true_n=n,
            rounds=rounds,
            estimates=estimates,
            slots_per_run=float(result.total_slots),
        )

    def run_vectorized(
        self,
        spec: WorkloadSpec,
        config: PetConfig,
        rounds: int,
    ) -> RepeatedEstimate:
        """Repeated estimation on the vectorized tier (either variant).

        Each repetition rebuilds nothing but the reader-side randomness;
        for the passive variant the *population* (and hence the preloaded
        codes) is also resampled per repetition, so the measured spread
        includes the code-assignment randomness, as in the paper.
        """
        rngs = self._child_rngs(self.repetitions)
        estimates = np.empty(self.repetitions)
        total_slots = 0
        for index, rng in enumerate(rngs):
            population = build_population(
                WorkloadSpec(
                    size=spec.size,
                    id_space=spec.id_space,
                    seed=spec.seed + index,
                )
            )
            simulator = VectorizedSimulator(
                population, config=config, rng=rng
            )
            result = simulator.estimate(rounds=rounds)
            estimates[index] = result.n_hat
            total_slots += result.total_slots
        return RepeatedEstimate(
            true_n=spec.size,
            rounds=rounds,
            estimates=estimates,
            slots_per_run=total_slots / self.repetitions,
        )

    def run_custom(
        self,
        true_n: int,
        rounds: int,
        one_run: Callable[[np.random.Generator], float],
    ) -> RepeatedEstimate:
        """Repeated estimation with a caller-supplied run function.

        Used by the baseline protocols, which have their own simulators;
        ``one_run`` receives a fresh child generator and returns one
        estimate.
        """
        rngs = self._child_rngs(self.repetitions)
        estimates = np.array([one_run(rng) for rng in rngs])
        return RepeatedEstimate(
            true_n=true_n,
            rounds=rounds,
            estimates=estimates,
            slots_per_run=float("nan"),
        )

    def sweep(
        self,
        sizes: Sequence[int],
        config: PetConfig,
        rounds: int,
    ) -> list[RepeatedEstimate]:
        """Sampled-tier sweep over population sizes (Fig. 4 driver)."""
        return [self.run_sampled(n, config, rounds) for n in sizes]
