"""Plain-text tables and series rendering for experiment output.

Every benchmark prints its table/figure data through these helpers so
the output format is uniform and diffable against EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import ConfigurationError

if TYPE_CHECKING:
    from ..protocols.base import ProtocolResult


@dataclass
class Table:
    """A simple column-aligned text table.

    Parameters
    ----------
    title:
        Heading printed above the table.
    columns:
        Column names, in order.
    """

    title: str
    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row; values are str()-ed, floats compacted."""
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_format_cell(value) for value in values])

    def render(self) -> str:
        """Render the table with aligned columns."""
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, ""]
        lines.append(
            "  ".join(h.rjust(w) for h, w in zip(headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table with a trailing blank line."""
        print(self.render())
        print()


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def protocol_results_table(
    results: Sequence["ProtocolResult"],
    true_n: int | None = None,
    title: str = "Protocol results",
) -> Table:
    """Tabulate protocol runs through their :meth:`summary` records.

    The single rendering path for
    :class:`~repro.protocols.base.ProtocolResult` sequences (the CLI
    summary and the comparison examples use it), built on the common
    :func:`~repro.protocols.base.result_summary` schema rather than
    attribute poking.  With ``true_n`` the table gains a
    relative-error column.
    """
    columns = ["protocol", "rounds", "slots", "estimate"]
    if true_n is not None:
        columns.append("error")
    table = Table(title, columns)
    for result in results:
        record = result.summary(true_n=true_n)
        row: list[object] = [
            record["protocol"],
            record["rounds"],
            record["total_slots"],
            record["estimate"],
        ]
        if true_n is not None:
            error = record["relative_error"]
            row.append(
                f"{abs(error):.2%}"  # type: ignore[arg-type]
                if error is not None
                else "-"
            )
        table.add_row(*row)
    return table


def legacy_result_record(result: "ProtocolResult") -> dict[str, object]:
    """Deprecated: the pre-service ad-hoc record shape.

    The old report path built its own dict with ``n_hat`` and
    ``observations`` keys; everything now serializes through the
    common :func:`~repro.protocols.base.result_summary` schema
    (``estimate`` / ``relative_error`` / ``seed_provenance``).  This
    shim keeps the old shape importable for one release and warns
    once per process.
    """
    from .._deprecation import warn_once

    warn_once(
        "sim.report.legacy_result_record",
        "legacy_result_record() and the ad-hoc n_hat/observations "
        "record are deprecated; use ProtocolResult.to_dict() / "
        ".summary() (the shared result_summary schema) instead",
    )
    return {
        "protocol": result.protocol,
        "n_hat": float(result.n_hat),
        "rounds": int(result.rounds),
        "total_slots": int(result.total_slots),
        "observations": (
            0
            if result.per_round_statistics is None
            else int(len(result.per_round_statistics))
        ),
    }


def format_series(
    label: str, xs: Iterable[object], ys: Iterable[object]
) -> str:
    """Render an (x, y) series as one aligned block (figure data)."""
    pairs = list(zip(xs, ys))
    lines = [f"series: {label}"]
    for x, y in pairs:
        lines.append(f"  {_format_cell(x):>12}  {_format_cell(y):>14}")
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float],
    bins: int = 25,
    width: int = 50,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """A quick ASCII histogram for distribution figures (Fig. 6)."""
    import numpy as np

    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        raise ConfigurationError("cannot histogram an empty series")
    lo = float(data.min()) if lo is None else lo
    hi = float(data.max()) if hi is None else hi
    counts, edges = np.histogram(data, bins=bins, range=(lo, hi))
    peak = max(int(counts.max()), 1)
    lines = []
    for count, left, right in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{left:>12,.0f} - {right:>12,.0f} | {bar} {count}")
    return "\n".join(lines)
