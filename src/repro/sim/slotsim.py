"""Tier 1: the slot-level simulator.

Builds real tag state machines, attaches them to a slotted channel, and
lets a :class:`~repro.reader.reader.PetReader` run the protocol slot by
slot.  Every reader command and tag response passes through the channel
(including loss/capture when configured), and the full exchange is
recorded in the channel trace — this tier regenerates Fig. 3 literally
and serves as the ground truth the faster tiers are tested against.
"""

from __future__ import annotations

import numpy as np

from ..config import ChannelConfig, PetConfig
from ..core.estimator import EstimateResult, PetEstimator
from ..core.path import EstimatingPath
from ..radio.channel import SlottedChannel
from ..radio.events import ChannelTrace
from ..reader.reader import PetReader
from ..tags.population import TagPopulation


class SlotLevelSimulator:
    """One reader, one channel, real tags.

    Parameters
    ----------
    population:
        The tag set to estimate.
    config:
        PET parameters; ``config.passive_tags`` selects which tag state
        machine is instantiated (Algorithm 2 vs Algorithm 4).
    channel_config:
        Channel loss/capture model (defaults to the paper's ideal
        channel).
    rng:
        Randomness for reader seeds and channel effects.
    query_encoding:
        On-air prefix-query encoding for overhead accounting.
    """

    def __init__(
        self,
        population: TagPopulation,
        config: PetConfig | None = None,
        channel_config: ChannelConfig | None = None,
        rng: np.random.Generator | None = None,
        query_encoding: str = "mid",
    ):
        self.config = config or PetConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self.channel = SlottedChannel(
            config=channel_config, rng=self._rng
        )
        if self.config.passive_tags:
            self.tags = population.build_passive_tags(
                self.config.tree_height
            )
        else:
            self.tags = population.build_active_tags(self.config.tree_height)
        self.channel.attach_all(self.tags)
        self.reader = PetReader(
            self.channel,
            config=self.config,
            rng=self._rng,
            query_encoding=query_encoding,
        )

    @property
    def trace(self) -> ChannelTrace:
        """The full slot-by-slot exchange so far."""
        return self.channel.trace

    def run_round(
        self, path: EstimatingPath, round_index: int
    ) -> tuple[int, int]:
        """RoundDriver hook: delegate one round to the reader."""
        return self.reader.run_round(path, round_index)

    def estimate(
        self, rounds: int | None = None
    ) -> EstimateResult:
        """Run a complete estimation over this simulator.

        Parameters
        ----------
        rounds:
            Override for the round count; defaults to the config's.
        """
        config = self.config
        if rounds is not None:
            config = config.with_rounds(rounds)
        estimator = PetEstimator(config=config, rng=self._rng)
        return estimator.run(self)
