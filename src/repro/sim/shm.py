"""Zero-copy shared-memory arrays for the parallel sweep drivers.

Multi-worker sweeps ship large read-only inputs (seed matrices) and
collect large outputs (depth matrices) across process boundaries.
Pickling them through the ``ProcessPoolExecutor`` submit/return path
copies every byte twice; a :class:`SharedArray` instead places the
buffer in POSIX shared memory once and hands workers a tiny picklable
:class:`SharedArraySpec` to attach to.

Lifecycle discipline (the part that actually goes wrong in practice):

* the **creating** process owns the segment: it must :meth:`~SharedArray.close`
  *and* :meth:`~SharedArray.unlink` it, which the context-manager form
  does even when the sweep raises mid-flight;
* **attaching** processes only ever :meth:`~SharedArray.close`; they are
  also unregistered from ``multiprocessing.resource_tracker``, which on
  Python < 3.13 would otherwise unlink the segment when the *first*
  worker exits (cpython#82300) and spam "leaked shared_memory" warnings;
* serial code paths never construct a segment at all — the sweeps fall
  back to plain ``ndarray`` views when no worker pool is involved
  (asserted by the lifecycle tests).

Every create/attach/unlink is counted on the metrics registry
(``sharedmem.segments``, ``sharedmem.bytes``, ``sharedmem.attaches``,
``sharedmem.unlinks``) so cross-process memory traffic shows up in the
same telemetry as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..errors import ConfigurationError
from ..obs.registry import MetricsRegistry, get_registry


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle to a shared-memory array.

    Carries everything a worker needs to reattach: the segment name and
    the array's shape/dtype.  A spec is a *reference*, not a resource —
    the creating process keeps ownership of the segment's lifetime.
    """

    name: str
    shape: "tuple[int, ...]"
    dtype: str

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        return int(
            np.prod(self.shape, dtype=np.int64)
            * np.dtype(self.dtype).itemsize
        )


class SharedArray:
    """A numpy array backed by a named shared-memory segment.

    Construct through :meth:`create` (copy an existing array in),
    :meth:`zeros` (allocate an output buffer), or :meth:`attach`
    (map an existing segment from its spec inside a worker).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        spec: SharedArraySpec,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._spec = spec
        self._owner = owner
        self._closed = False
        self._array: "np.ndarray | None" = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf
        )

    # -- constructors ------------------------------------------------

    @classmethod
    def create(
        cls,
        source: np.ndarray,
        registry: "MetricsRegistry | None" = None,
    ) -> "SharedArray":
        """Copy ``source`` into a fresh shared segment (caller owns it)."""
        shared = cls.zeros(
            source.shape, source.dtype, registry=registry
        )
        np.copyto(shared.array, source)
        return shared

    @classmethod
    def zeros(
        cls,
        shape: "tuple[int, ...]",
        dtype: "np.dtype | str",
        registry: "MetricsRegistry | None" = None,
    ) -> "SharedArray":
        """Allocate an owned, zero-filled shared array (for outputs)."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes <= 0:
            raise ConfigurationError(
                f"shared arrays must be non-empty, got shape {shape}"
            )
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        spec = SharedArraySpec(
            name=shm.name, shape=tuple(shape), dtype=dtype.str
        )
        shared = cls(shm, spec, owner=True)
        shared.array[...] = 0
        registry = registry if registry is not None else get_registry()
        if registry:
            registry.counter("sharedmem.segments").inc()
            registry.counter("sharedmem.bytes").inc(nbytes)
        return shared

    @classmethod
    def attach(
        cls,
        spec: SharedArraySpec,
        registry: "MetricsRegistry | None" = None,
    ) -> "SharedArray":
        """Map an existing segment inside a worker (non-owning).

        Before Python 3.13 an attach is (wrongly) registered with the
        ``resource_tracker`` as if it were a create (cpython#82300).
        Under ``spawn``/``forkserver`` each worker runs its own
        tracker, which would unlink the segment under the parent when
        the worker exits — so the attach is unregistered again there.
        Under ``fork`` all processes share the parent's tracker, whose
        cache deduplicates the re-registration; unregistering would
        instead erase the *owner's* entry, so it is left alone.
        """
        try:
            # Python 3.13+ fixes the bug properly.
            shm = shared_memory.SharedMemory(
                name=spec.name, track=False
            )
        except TypeError:
            import multiprocessing

            shm = shared_memory.SharedMemory(name=spec.name)
            if multiprocessing.get_start_method(True) != "fork":
                try:  # pragma: no cover - tracker is process state
                    resource_tracker.unregister(
                        shm._name, "shared_memory"
                    )
                except Exception:
                    pass
        registry = registry if registry is not None else get_registry()
        if registry:
            registry.counter("sharedmem.attaches").inc()
        return cls(shm, spec, owner=False)

    # -- accessors ---------------------------------------------------

    @property
    def spec(self) -> SharedArraySpec:
        """The picklable handle workers attach with."""
        return self._spec

    @property
    def array(self) -> np.ndarray:
        """The live numpy view over the shared buffer."""
        if self._array is None:
            raise ConfigurationError(
                f"shared array {self._spec.name!r} is closed"
            )
        return self._array

    @property
    def owner(self) -> bool:
        """Whether this handle owns (and must unlink) the segment."""
        return self._owner

    # -- lifecycle ---------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (idempotent).

        The numpy view is released first — closing a segment with live
        exported buffers raises on CPython.
        """
        if self._closed:
            return
        self._array = None
        self._shm.close()
        self._closed = True

    def unlink(
        self, registry: "MetricsRegistry | None" = None
    ) -> None:
        """Remove the segment from the system (owner only, idempotent)."""
        if not self._owner:
            raise ConfigurationError(
                f"only the creating process may unlink "
                f"{self._spec.name!r}"
            )
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked
            return
        registry = registry if registry is not None else get_registry()
        if registry:
            registry.counter("sharedmem.unlinks").inc()

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
        if self._owner:
            self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "owner" if self._owner else "attached"
        return (
            f"SharedArray({self._spec.name!r}, "
            f"shape={self._spec.shape}, dtype={self._spec.dtype}, "
            f"{state})"
        )
