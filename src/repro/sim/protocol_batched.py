"""Protocol-agnostic batched comparison cells.

PR 1 moved PET's experiment cells into numpy
(:class:`~repro.sim.batched.BatchedExperimentEngine`); this module does
the same for the *comparison* protocols the paper benchmarks PET
against.  A cell — ``repetitions x rounds`` independent estimation
rounds of one protocol against one population — becomes a handful of
array passes:

1. :func:`seed_matrix` reproduces the scalar per-round seed stream for
   every repetition at once (PR-1 seed discipline: child generators
   spawned from one base seed, one 63-bit word per round).
2. The protocol's :class:`~repro.protocols.base.BatchedRoundEngine`
   turns the whole seed matrix into per-round sufficient statistics
   (first nonempty slot, first empty geometric bucket, empty-slot
   counts, Schoute slot-category mix) in chunked matrix passes.
3. Each repetition's statistic row is reduced by the protocol's own
   scalar inversion.

The contract is **bit-identity** with the per-repetition reference loop
(:meth:`ExperimentRunner.run_custom` driving the scalar ``estimate``),
enforced by ``benchmarks/bench_guard.py --protocols`` and the
equivalence tests.  Observability mirrors the scalar path: the same
``protocol.<NAME>.*`` counters and ``round_statistic`` histograms with
exact slot accounting, all skipped without a single allocation on the
null registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..analysis.stats import SeriesSummary, summarize
from ..config import PAPER_RUNS_PER_POINT
from ..errors import ConfigurationError, EstimationError
from ..obs.profile import active_profiler
from ..obs.registry import MetricsRegistry, get_registry
from ..protocols.base import (
    BatchedRoundEngine,
    CardinalityEstimatorProtocol,
)
from ..tags.population import TagPopulation
from .workload import WorkloadSpec, build_population

#: Target array elements per engine call; chunks keep the per-seed
#: scratch (hash matrix + occupancy counts) inside the cache instead of
#: materialising a whole cell's worth at once.  32K elements = 256 KiB
#: per uint64 pass, which profiles ~2x faster than L3-sized chunks on
#: the fig6/table3 cells (every mixing pass stays in L2).
_CHUNK_ELEMENTS = 1 << 15


def seed_matrix(
    base_seed: int, repetitions: int, draws: int
) -> np.ndarray:
    """The scalar paths' per-round seeds for a whole cell at once.

    Row ``i`` holds the ``draws`` seeds repetition ``i``'s scalar run
    would draw: the scalar estimators call ``int(rng.integers(0,
    2**63))`` once per round on the ``i``-th child generator of
    ``SeedSequence(base_seed)``, which is bit-identical to one full-range
    ``uint64`` word per round shifted down to 63 bits (the PR-1 word-
    stream discipline; the equivalence tests pin this).
    """
    if repetitions < 1:
        raise ConfigurationError(
            f"repetitions must be >= 1, got {repetitions}"
        )
    if draws < 1:
        raise ConfigurationError(f"draws must be >= 1, got {draws}")
    children = np.random.SeedSequence(base_seed).spawn(repetitions)
    seeds = np.empty((repetitions, draws), dtype=np.uint64)
    for index, child in enumerate(children):
        rng = np.random.default_rng(child)
        seeds[index] = rng.integers(
            0, 2**64, size=draws, dtype=np.uint64
        ) >> np.uint64(1)
    return seeds


@dataclass(frozen=True)
class ProtocolCellResult:
    """One batched comparison cell: every repetition of one data point.

    Attributes
    ----------
    protocol:
        Display name of the protocol that produced the estimates.
    true_n:
        Ground-truth cardinality of the cell.
    rounds:
        Estimation rounds per repetition.
    estimates:
        One ``n_hat`` per repetition; ``NaN`` where the repetition
        saturated and the cell ran with ``on_error="nan"``.
    statistics:
        The raw per-round sufficient statistics, one row per
        repetition (EZB rows hold ``rounds * frames_per_round``
        sub-frame entries).
    slots_per_run:
        Slots one repetition consumes on air.
    saturated_runs:
        Number of ``NaN``-flagged repetitions.
    seed_provenance:
        Where the cell's seed matrix came from
        (``"base_seed=2011"``); ``None`` for hand-built cells.
    """

    protocol: str
    true_n: int
    rounds: int
    estimates: np.ndarray
    statistics: np.ndarray = field(repr=False)
    slots_per_run: int = 0
    saturated_runs: int = 0
    seed_provenance: str | None = None

    @property
    def repetitions(self) -> int:
        """Number of independent runs in the cell."""
        return len(self.estimates)

    def summary(self, epsilon: float = float("nan")) -> SeriesSummary:
        """Summarize the finite estimates with the shared helpers."""
        finite = self.estimates[np.isfinite(self.estimates)]
        return summarize(finite, self.true_n, epsilon=epsilon)

    def to_dict(
        self, include_estimates: bool = False
    ) -> dict[str, object]:
        """The common :func:`~repro.protocols.base.result_summary`
        schema for the whole cell.

        ``estimate`` is the mean of the finite repetitions (``NaN`` if
        every repetition saturated) and ``rounds``/``total_slots``
        count one repetition, so a cell record reads like the average
        single run it aggregates; cell-only keys (``repetitions``,
        ``saturated_runs``) ride alongside.  ``include_estimates``
        additionally inlines the per-repetition estimates.
        """
        from ..protocols.base import result_summary

        finite = self.estimates[np.isfinite(self.estimates)]
        record = result_summary(
            protocol=self.protocol,
            estimate=(
                float(finite.mean()) if finite.size else float("nan")
            ),
            rounds=self.rounds,
            total_slots=self.slots_per_run,
            seed_provenance=self.seed_provenance,
            true_n=self.true_n,
        )
        record["repetitions"] = self.repetitions
        record["saturated_runs"] = int(self.saturated_runs)
        if include_estimates:
            record["estimates"] = [
                float(value) for value in self.estimates
            ]
        return record


def run_protocol_cell(
    protocol: CardinalityEstimatorProtocol,
    population: TagPopulation,
    rounds: int,
    repetitions: int = PAPER_RUNS_PER_POINT,
    base_seed: int = 2011,
    registry: MetricsRegistry | None = None,
    on_error: str = "raise",
    seeds: np.ndarray | None = None,
) -> ProtocolCellResult:
    """Run one whole comparison cell through the protocol's engine.

    Bit-identical to ``repetitions`` scalar ``protocol.estimate`` calls
    on the child generators of ``SeedSequence(base_seed)`` (the
    :meth:`~repro.sim.experiment.ExperimentRunner.run_custom` loop).

    ``on_error`` selects the saturation policy: ``"raise"`` propagates
    the protocol's :class:`~repro.errors.EstimationError` exactly as the
    scalar loop would, ``"nan"`` flags the repetition's estimate as
    ``NaN`` and counts it in ``saturated_runs`` so one saturated run
    cannot abort a whole figure.

    ``seeds`` optionally supplies the seed matrix (or a prefix slice of
    a wider shared one — see :func:`sweep_protocol_cells`'s
    ``share_seeds``) instead of re-deriving it; it must be exactly what
    :func:`seed_matrix` would return, which the word-stream prefix
    property guarantees for column slices of a max-draws matrix.
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    if on_error not in ("raise", "nan"):
        raise ConfigurationError(
            f"on_error must be 'raise' or 'nan', got {on_error!r}"
        )
    engine = protocol.batched_engine()
    if engine is None:
        raise ConfigurationError(
            f"protocol {protocol.name!r} has no batched engine; use the "
            f"scalar estimate path"
        )
    if registry is None:
        registry = get_registry()
    profiler = active_profiler(registry)
    start = time.perf_counter()
    with registry.span(
        "cell",
        tier="protocol-batched",
        protocol=protocol.name,
        n=population.size,
    ):
        with profiler.phase("seed_matrix"):
            draws = rounds * engine.draws_per_round
            if seeds is None:
                seeds = seed_matrix(base_seed, repetitions, draws)
            elif seeds.shape != (repetitions, draws):
                raise ConfigurationError(
                    f"supplied seed matrix has shape {seeds.shape}, "
                    f"cell needs {(repetitions, draws)}"
                )
        with profiler.phase("hash_passes"):
            statistics = _chunked_statistics(engine, seeds, population)
        with profiler.phase("finalize"):
            estimates = np.empty(repetitions)
            saturated = 0
            for index in range(repetitions):
                try:
                    estimates[index] = engine.reduce(
                        statistics[index]
                    )
                except EstimationError:
                    if on_error == "raise":
                        raise
                    estimates[index] = np.nan
                    saturated += 1
    result = ProtocolCellResult(
        protocol=protocol.name,
        true_n=population.size,
        rounds=rounds,
        estimates=estimates,
        statistics=statistics,
        slots_per_run=rounds * protocol.slots_per_round(),
        saturated_runs=saturated,
        seed_provenance=f"base_seed={base_seed}",
    )
    _observe_cell(registry, result, time.perf_counter() - start)
    return result


def _chunked_statistics(
    engine: BatchedRoundEngine,
    seeds: np.ndarray,
    population: TagPopulation,
) -> np.ndarray:
    """Evaluate the engine over all seeds in cache-sized chunks."""
    flat = seeds.ravel()
    chunk = max(1, _CHUNK_ELEMENTS // engine.work_per_seed(population))
    statistics = np.empty(flat.size)
    for offset in range(0, flat.size, chunk):
        block = flat[offset : offset + chunk]
        statistics[offset : offset + block.size] = (
            engine.round_statistics(block, population)
        )
    return statistics.reshape(seeds.shape)


def _observe_cell(
    registry: MetricsRegistry,
    result: ProtocolCellResult,
    seconds: float,
) -> None:
    """Record one batched cell exactly as the scalar loop would.

    Protocol-level: the ``protocol.<NAME>.runs/rounds/slots`` counters
    and the ``round_statistic`` histogram receive the same totals as
    ``repetitions`` scalar ``estimate`` calls.  Cell-level: the
    ``experiment.*`` counters/timings mirror
    :meth:`ExperimentRunner._record_cell`.  Sweep workers pass
    ``seconds=NaN`` so remotely-computed cells are counted but not
    timed.  Entirely skipped on the falsy null registry.
    """
    if not registry:
        return
    prefix = f"protocol.{result.protocol}"
    repetitions = result.repetitions
    with active_profiler(registry).phase("reduction"):
        registry.counter(f"{prefix}.runs").inc(repetitions)
        registry.counter(f"{prefix}.rounds").inc(
            repetitions * result.rounds
        )
        registry.counter(f"{prefix}.slots").inc(
            repetitions * result.slots_per_run
        )
        registry.histogram(f"{prefix}.round_statistic").observe_many(
            result.statistics
        )
    rounds_done = result.rounds * repetitions
    registry.counter("experiment.cells").inc()
    registry.counter("experiment.rounds").inc(rounds_done)
    if seconds == seconds:  # cells timed in *this* process only
        registry.histogram("experiment.cell_seconds").observe(seconds)
        if seconds > 0:
            registry.gauge("experiment.rounds_per_second").set(
                rounds_done / seconds
            )
    health = registry.health
    finite = result.estimates[np.isfinite(result.estimates)]
    if health is not None and finite.size:
        health.observe_estimates(finite, result.rounds)
    registry.event(
        "cell",
        tier="protocol-batched",
        protocol=result.protocol,
        n=result.true_n,
        rounds=result.rounds,
        repetitions=repetitions,
        mean_estimate=(
            float(finite.mean()) if finite.size else float("nan")
        ),
        saturated_runs=result.saturated_runs,
        slots_per_run=result.slots_per_run,
        seconds=seconds,
    )


@dataclass(frozen=True)
class ProtocolCellSpec:
    """Declarative description of one comparison cell.

    ``protocol`` is a registry name (``"fneb"``, ``"lof"``, ``"use"``,
    ``"upe"``, ``"ezb"``, ``"aloha"``); ``config`` is forwarded to
    :func:`~repro.protocols.registry.make_protocol`.  Specs are plain
    data so sweeps pickle cleanly into worker processes.
    """

    protocol: str
    n: int
    rounds: int
    config: dict = field(default_factory=dict)
    population_seed: int = 7

    @property
    def label(self) -> str:
        """Compact display label for tables and benchmark output."""
        return f"{self.protocol}@n={self.n}"

    def build(
        self,
    ) -> tuple[CardinalityEstimatorProtocol, TagPopulation]:
        """Materialise the protocol instance and its population."""
        from ..protocols.registry import make_protocol

        protocol = make_protocol(self.protocol, **self.config)
        population = build_population(
            WorkloadSpec(size=self.n, seed=self.population_seed)
        )
        return protocol, population


def _cell_draws(spec: ProtocolCellSpec) -> int:
    """Seed draws one cell consumes (without building its population)."""
    from ..protocols.registry import make_protocol

    protocol = make_protocol(spec.protocol, **spec.config)
    engine = protocol.batched_engine()
    if engine is None:
        raise ConfigurationError(
            f"protocol {spec.protocol!r} has no batched engine; use "
            f"the scalar estimate path"
        )
    return spec.rounds * engine.draws_per_round


def sweep_protocol_cells(
    specs: Sequence[ProtocolCellSpec],
    repetitions: int = PAPER_RUNS_PER_POINT,
    base_seed: int = 2011,
    workers: int | None = None,
    registry: MetricsRegistry | None = None,
    on_error: str = "nan",
    progress: object = None,
    share_seeds: bool = False,
) -> list[ProtocolCellResult]:
    """Run many comparison cells, optionally process-parallel.

    Every cell derives its seeds from ``base_seed`` alone (independent
    of execution order), so results are bit-for-bit identical for any
    ``workers`` count, including ``None``/``1`` (in-process serial
    execution).  Worker processes record into private registries and
    return :class:`~repro.obs.registry.RegistrySnapshot` objects that
    the parent merges, so counters, histogram buckets, and cell timings
    aggregate to the same totals as a serial run — mirroring
    :meth:`ExperimentRunner.sweep`, which also documents the
    ``progress`` argument (``True`` for a stderr status line, or a
    :class:`~repro.obs.progress.ProgressTracker`).

    ``share_seeds`` derives one seed matrix wide enough for the widest
    cell and lets every cell slice its prefix — bit-identical to
    per-cell derivation because full-range ``uint64`` draws are
    stream-prefix-stable (pinned by the seed-discipline tests).  With a
    worker pool the matrix travels as a zero-copy
    :class:`~repro.sim.shm.SharedArray` segment instead of being
    re-derived (or pickled) per cell; serial sweeps slice a plain
    in-process array and never touch shared memory.
    """
    from .experiment import _make_tracker, _run_pool

    if workers is not None and workers < 1:
        raise ConfigurationError(
            f"workers must be >= 1 when given, got {workers}"
        )
    if registry is None:
        registry = get_registry()
    tracker = _make_tracker(progress, len(specs), registry)
    draws_by_spec = (
        [_cell_draws(spec) for spec in specs] if share_seeds else None
    )
    start = time.perf_counter()
    with registry.span(
        "sweep",
        tier="protocol-batched",
        cells=len(specs),
        workers=workers or 1,
    ):
        if workers is None or workers == 1:
            shared_seeds = None
            if draws_by_spec is not None and specs:
                # Serial share path: one plain in-process matrix, no
                # shared-memory segment (asserted by lifecycle tests).
                shared_seeds = seed_matrix(
                    base_seed, repetitions, max(draws_by_spec)
                )
            results = []
            for index, spec in enumerate(specs):
                seeds = (
                    shared_seeds[:, : draws_by_spec[index]]
                    if shared_seeds is not None
                    else None
                )
                result = run_protocol_cell(
                    *spec.build(),
                    rounds=spec.rounds,
                    repetitions=repetitions,
                    base_seed=base_seed,
                    registry=registry,
                    on_error=on_error,
                    seeds=seeds,
                )
                if tracker is not None:
                    tracker.cell_done(
                        n=spec.n,
                        slots=result.slots_per_run * repetitions,
                        rounds=spec.rounds * repetitions,
                    )
                results.append(result)
        else:
            segment = None
            if draws_by_spec is not None and specs:
                from .shm import SharedArray

                segment = SharedArray.create(
                    seed_matrix(
                        base_seed, repetitions, max(draws_by_spec)
                    ),
                    registry=registry,
                )
            try:
                # Per-cell child contexts keep worker spans inside
                # the live trace (see ExperimentRunner.sweep).
                from ..obs.tracectx import current_trace

                sweep_trace = current_trace()
                pairs = _run_pool(
                    workers,
                    [
                        (
                            _sweep_protocol_cell,
                            spec,
                            repetitions,
                            base_seed,
                            on_error,
                            bool(registry),
                            registry.profiler is not None,
                            segment.spec if segment else None,
                            draws_by_spec[index]
                            if draws_by_spec is not None
                            else 0,
                            sweep_trace.child().to_dict()
                            if sweep_trace is not None
                            else None,
                        )
                        for index, spec in enumerate(specs)
                    ],
                    tracker,
                )
            finally:
                if segment is not None:
                    segment.close()
                    segment.unlink(registry=registry)
            results = []
            for result, snapshot in pairs:
                if snapshot is not None:
                    registry.merge(snapshot)
                results.append(result)
            # Worker registries cannot carry the parent's health
            # monitor; feed it here so diagnostics see every cell.
            health = registry.health if registry else None
            if health is not None:
                for result in results:
                    finite = result.estimates[
                        np.isfinite(result.estimates)
                    ]
                    if finite.size:
                        health.observe_estimates(finite, result.rounds)
    seconds = time.perf_counter() - start
    if seconds > 0:
        registry.gauge("experiment.cells_per_second").set(
            len(specs) / seconds
        )
    if tracker is not None:
        tracker.finish()
    return results


def _sweep_protocol_cell(
    spec: ProtocolCellSpec,
    repetitions: int,
    base_seed: int,
    on_error: str,
    collect: bool = False,
    profile: bool = False,
    seeds_spec: object = None,
    draws: int = 0,
    trace_context: "dict | None" = None,
    reporter: object = None,
) -> tuple[ProtocolCellResult, object]:
    """Worker-process entry: one sweep cell (module-level, picklable).

    Returns the cell result plus, when ``collect`` is set, a snapshot
    of everything the worker's private registry recorded — the parent
    merges it so no worker-side telemetry is lost.  ``profile``
    mirrors the parent having a profiler attached: the worker's phase
    timings land in ``profile.*.seconds`` histograms, which merge up.
    ``seeds_spec`` optionally names a parent-owned shared-memory seed
    matrix; the worker attaches, slices this cell's ``draws``-column
    prefix, and detaches — it never copies or unlinks the segment.
    ``trace_context`` is the parent-derived trace position for this
    cell; installing it makes worker spans children of the parent's
    live ``sweep`` span (ids ride back inside the snapshot).
    """
    from ..obs.progress import default_worker_id
    from ..obs.registry import NULL_REGISTRY
    from ..obs.tracectx import TraceContext, use_trace_context

    worker_registry = MetricsRegistry() if collect else NULL_REGISTRY
    if profile and collect:
        from ..obs.profile import PhaseProfiler

        worker_registry.attach_diagnostics(
            profiler=PhaseProfiler(registry=worker_registry)
        )
    protocol, population = spec.build()
    if reporter is not None:
        reporter.emit(phase="start", n=spec.n, force=True)
    segment = None
    seeds = None
    if seeds_spec is not None:
        from .shm import SharedArray

        segment = SharedArray.attach(
            seeds_spec, registry=worker_registry
        )
        seeds = segment.array[:, :draws]
    try:
        with use_trace_context(TraceContext.from_dict(trace_context)):
            result = run_protocol_cell(
                protocol,
                population,
                rounds=spec.rounds,
                repetitions=repetitions,
                base_seed=base_seed,
                registry=worker_registry,
                on_error=on_error,
                seeds=seeds,
            )
    finally:
        if segment is not None:
            segment.close()
    if reporter is not None:
        reporter.emit(
            phase="done",
            cells_done=1,
            slots=result.slots_per_run * repetitions,
            rounds=spec.rounds * repetitions,
            n=spec.n,
            force=True,
        )
    snapshot = (
        worker_registry.snapshot(worker_id=default_worker_id())
        if collect
        else None
    )
    return result, snapshot
