"""Workload synthesis for experiments.

A :class:`WorkloadSpec` describes a scenario declaratively — population
size, dynamics, deployment — so experiment definitions stay data-like
and reproducible from a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..tags.population import TagPopulation

#: Tag-count grid used by the paper's Fig. 4 sweeps.
PAPER_TAG_COUNTS = (1_000, 5_000, 10_000, 50_000)

#: The evaluation's headline scenario (Sec. 5.3): 50 000 tags.
PAPER_HEADLINE_N = 50_000


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a tag-population scenario.

    Attributes
    ----------
    size:
        Number of tags initially present.
    id_space:
        ``"random"`` for EPC-like random 64-bit IDs, ``"sequential"``
        for ``0..size-1`` (deterministic unit tests).  Sequential IDs
        also stress the hash family: estimation quality must not depend
        on ID structure.
    seed:
        Base seed from which the population (and only the population)
        is derived.
    """

    size: int
    id_space: str = "random"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ConfigurationError(f"size must be >= 0, got {self.size}")
        if self.id_space not in ("random", "sequential"):
            raise ConfigurationError(
                f"id_space must be 'random' or 'sequential', "
                f"got {self.id_space!r}"
            )


def build_population(spec: WorkloadSpec) -> TagPopulation:
    """Materialise the population described by ``spec``."""
    if spec.id_space == "sequential":
        return TagPopulation.sequential(spec.size)
    rng = np.random.default_rng(spec.seed)
    return TagPopulation.random(spec.size, rng)


def logarithmic_sizes(
    smallest: int, largest: int, points: int
) -> list[int]:
    """Log-spaced population sizes for scaling sweeps."""
    if smallest < 1 or largest < smallest or points < 1:
        raise ConfigurationError(
            "need 1 <= smallest <= largest and points >= 1"
        )
    if points == 1:
        return [smallest]
    values = np.logspace(
        np.log10(smallest), np.log10(largest), num=points
    )
    return sorted({int(round(v)) for v in values})
