"""Simulation engine: three fidelity tiers plus experiment orchestration.

Tiers
-----
1. :class:`~repro.sim.slotsim.SlotLevelSimulator` — real tag and reader
   state machines exchanging commands over the slotted channel.  The
   gold standard; cost grows with ``n`` per slot.
2. :class:`~repro.sim.vectorized.VectorizedSimulator` — tag codes as
   sorted numpy arrays; the gray depth of a path equals the longest
   common prefix with the path's nearest neighbours in sorted order, so
   a round costs ``O(log n)`` after an ``O(n log n)`` sort.  Exact for
   both the active (fresh codes per round) and passive (fixed preloaded
   codes) variants.
3. :class:`~repro.sim.sampled.SampledSimulator` — draws the gray depth
   straight from its exact distribution, ``O(1)`` per round.  Valid for
   the active variant, where rounds are independent.

All tiers implement the :class:`repro.core.estimator.RoundDriver`
protocol and therefore compose with :class:`repro.core.PetEstimator`.

On top of the tiers, :class:`~repro.sim.batched.BatchedExperimentEngine`
computes entire *experiment cells* (all repetitions x rounds of one data
point) in batched numpy, bit-identical to the per-repetition reference
loop.

Orchestration
-------------
:mod:`~repro.sim.experiment` runs repeated estimations with managed
seeds (with process-parallel sweeps via ``workers=``);
:mod:`~repro.sim.metrics` aggregates them; :mod:`~repro.sim.report`
renders the paper-style tables; :mod:`~repro.sim.workload` synthesizes
populations and scenarios.

Execution substrate
-------------------
:mod:`~repro.sim.backends` selects the kernel backend every vectorized
hash pass runs on (``numpy`` reference, optional ``numba`` JIT);
:mod:`~repro.sim.shm` provides the zero-copy shared-memory arrays the
parallel sweeps ship seed and depth matrices through.
"""

from .backends import (
    available_backends,
    get_backend,
    set_active_backend,
    use_backend,
)
from .batched import BatchedExperimentEngine
from .shm import SharedArray, SharedArraySpec
from .experiment import ExperimentRunner, RepeatedEstimate
from .multireader import MultiReaderSimulator
from .persist import load_experiment, save_experiment
from .protocol_batched import (
    ProtocolCellResult,
    ProtocolCellSpec,
    run_protocol_cell,
    seed_matrix,
    sweep_protocol_cells,
)
from .report import Table, format_series
from .sampled import SampledSimulator
from .slotsim import SlotLevelSimulator
from .vectorized import VectorizedSimulator
from .workload import WorkloadSpec, build_population

__all__ = [
    "SlotLevelSimulator",
    "VectorizedSimulator",
    "SampledSimulator",
    "MultiReaderSimulator",
    "BatchedExperimentEngine",
    "ExperimentRunner",
    "RepeatedEstimate",
    "ProtocolCellResult",
    "ProtocolCellSpec",
    "run_protocol_cell",
    "seed_matrix",
    "sweep_protocol_cells",
    "Table",
    "format_series",
    "WorkloadSpec",
    "build_population",
    "save_experiment",
    "load_experiment",
    "available_backends",
    "get_backend",
    "set_active_backend",
    "use_backend",
    "SharedArray",
    "SharedArraySpec",
]
