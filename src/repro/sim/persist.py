"""Experiment-result persistence.

Benchmarks and the CLI can save their measured rows to JSON so that
EXPERIMENTS.md and regression comparisons have a machine-readable
source.  The format is deliberately boring: one document per
experiment with a name, the library version, the parameters, and a
list of flat row dicts.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError

#: Format version written into every document.
SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays and dataclasses to JSON-safe types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            key: _jsonable(val)
            for key, val in dataclasses.asdict(value).items()
        }
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ConfigurationError(
        f"cannot serialize value of type {type(value).__name__}"
    )


def save_experiment(
    path: str | Path,
    name: str,
    parameters: Mapping[str, Any],
    rows: Sequence[Mapping[str, Any]],
) -> Path:
    """Write one experiment document; returns the path written.

    Parameters
    ----------
    path:
        Output file (parent directories are created).
    name:
        Experiment identifier (e.g. ``"table4"``).
    parameters:
        The experiment's configuration knobs.
    rows:
        Measured rows, each a flat mapping.
    """
    from .. import __version__

    if not name:
        raise ConfigurationError("experiment name must be nonempty")
    document = {
        "schema": SCHEMA_VERSION,
        "library_version": __version__,
        "experiment": name,
        "parameters": _jsonable(dict(parameters)),
        "rows": [_jsonable(dict(row)) for row in rows],
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=2, sort_keys=True))
    return out


def load_experiment(path: str | Path) -> dict[str, Any]:
    """Read an experiment document back; validates the schema tag."""
    document = json.loads(Path(path).read_text())
    if document.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported experiment schema {document.get('schema')!r} "
            f"in {path}"
        )
    return document


def rows_of(document: Mapping[str, Any]) -> list[dict[str, Any]]:
    """The measured rows of a loaded document."""
    rows = document.get("rows")
    if not isinstance(rows, list):
        raise ConfigurationError("document has no 'rows' list")
    return rows
