"""Pluggable kernel backends for the batched engines' hot primitives.

The batched experiment engines share three array primitives — the
vectorized SplitMix64 hash pass, the 64-bit leading-zero count, and the
clamped geometric bucketing.  This package abstracts them behind a
:class:`~repro.sim.backends.base.KernelBackend` so the same array
programs can run on different execution substrates:

* ``numpy`` — the pure-numpy reference implementation (always
  available; defines the bit patterns everything else must match);
* ``numba`` — ``@njit(parallel=True)``-compiled loops, available when
  the optional ``jit`` extra is installed.

Selection precedence (first match wins):

1. an explicit :func:`set_active_backend` call (the CLI's
   ``--backend`` flag lands here);
2. the ``REPRO_BACKEND`` environment variable;
3. the default, ``numpy``.

The active backend is process-global: the hashing layer
(:mod:`repro.hashing.family`, :mod:`repro.hashing.geometric`) routes
every vectorized pass through it, so the batched engines in
:mod:`repro.sim.batched` and :mod:`repro.sim.protocol_batched` pick it
up without any plumbing.  ``bench_guard --backends`` enforces the
per-backend bit-identity contract and speedup floors in CI; see
``docs/BACKENDS.md`` for how to add a backend.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Callable, Iterator

from ...errors import ConfigurationError
from .base import KernelBackend
from .numpy_backend import NumpyBackend

#: Environment variable consulted when no backend was set explicitly.
ENV_VAR = "REPRO_BACKEND"

#: Name of the always-available reference backend.
DEFAULT_BACKEND = "numpy"


@dataclass(frozen=True)
class BackendSpec:
    """One registry row: how to probe for and build a backend."""

    name: str
    factory: Callable[[], KernelBackend]
    probe: Callable[[], bool]
    summary: str


def _probe_numba() -> bool:
    from .numba_backend import HAVE_NUMBA

    return HAVE_NUMBA


def _make_numba() -> KernelBackend:
    from .numba_backend import NumbaBackend

    return NumbaBackend()


_REGISTRY: "dict[str, BackendSpec]" = {}

#: Built singletons, one per backend name (JIT backends compile once).
_INSTANCES: "dict[str, KernelBackend]" = {}

#: The explicitly selected backend, when :func:`set_active_backend`
#: (or the CLI) has been called; ``None`` defers to the environment.
_SELECTED: "KernelBackend | None" = None


def register_backend(
    name: str,
    factory: Callable[[], KernelBackend],
    probe: Callable[[], bool] = lambda: True,
    summary: str = "",
) -> None:
    """Register a backend ``factory`` under ``name``.

    ``probe`` reports availability without importing heavy
    dependencies; unavailable backends stay listed in
    :func:`known_backends` but are excluded from
    :func:`available_backends`, and :func:`get_backend` explains what
    is missing instead of failing with a bare ``ImportError``.
    """
    _REGISTRY[name] = BackendSpec(
        name=name, factory=factory, probe=probe, summary=summary
    )
    _INSTANCES.pop(name, None)


register_backend(
    "numpy",
    NumpyBackend,
    summary="pure-numpy reference kernels (always available)",
)
register_backend(
    "numba",
    _make_numba,
    probe=_probe_numba,
    summary="@njit(parallel=True) JIT kernels (optional 'jit' extra)",
)


def known_backends() -> "tuple[str, ...]":
    """Every registered backend name, available or not."""
    return tuple(_REGISTRY)


def available_backends() -> "tuple[str, ...]":
    """Names of the backends that can actually be constructed here."""
    return tuple(
        spec.name for spec in _REGISTRY.values() if spec.probe()
    )


def backend_summaries() -> "list[tuple[str, str, bool]]":
    """``(name, summary, available)`` rows for help text and docs."""
    return [
        (spec.name, spec.summary, spec.probe())
        for spec in _REGISTRY.values()
    ]


def get_backend(name: "str | None" = None) -> KernelBackend:
    """Resolve ``name`` (or the active selection) to a backend instance.

    Instances are cached per name, so a JIT backend compiles its
    kernels once per process.  Unknown names and known-but-unavailable
    backends both raise :class:`~repro.errors.ConfigurationError` with
    an actionable message.
    """
    if name is None:
        return active_backend()
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; known backends: {known}"
        )
    if not spec.probe():
        raise ConfigurationError(
            f"kernel backend {name!r} is not available in this "
            f"environment ({spec.summary}); install the missing "
            f"dependency or select another of: "
            f"{', '.join(available_backends())}"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = spec.factory()
        _INSTANCES[name] = instance
    return instance


def active_backend() -> KernelBackend:
    """The backend every vectorized hash pass currently routes through.

    Precedence: :func:`set_active_backend` > ``REPRO_BACKEND`` >
    ``numpy``.  The environment variable is re-read on every resolution
    while no explicit selection is in force, so tests can flip it with
    ``monkeypatch.setenv``; the returned instances themselves are
    cached.
    """
    if _SELECTED is not None:
        return _SELECTED
    return get_backend(os.environ.get(ENV_VAR) or DEFAULT_BACKEND)


def set_active_backend(
    name: "str | None",
) -> "KernelBackend | None":
    """Select the process-wide backend (``None`` reverts to env/default).

    Returns the newly active instance (or ``None`` when reverting), so
    callers like the CLI can log what they got.
    """
    global _SELECTED
    if name is None:
        _SELECTED = None
        return None
    _SELECTED = get_backend(name)
    return _SELECTED


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Scoped :func:`set_active_backend`; restores the prior selection."""
    global _SELECTED
    previous = _SELECTED
    backend = get_backend(name)
    _SELECTED = backend
    try:
        yield backend
    finally:
        _SELECTED = previous


__all__ = [
    "ENV_VAR",
    "DEFAULT_BACKEND",
    "KernelBackend",
    "NumpyBackend",
    "BackendSpec",
    "register_backend",
    "known_backends",
    "available_backends",
    "backend_summaries",
    "get_backend",
    "active_backend",
    "set_active_backend",
    "use_backend",
]
