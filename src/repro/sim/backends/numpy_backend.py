"""The numpy reference backend: allocation-lean, cache-friendly kernels.

These are the kernels the batched engines shipped with (PR 1/4), moved
behind the backend seam verbatim — they *define* the bit patterns every
other backend must reproduce.  Each is restructured from the textbook
expression chain to reuse one scratch buffer, because per-step
allocations dominate on the cache-sized chunks the engines feed them.
"""

from __future__ import annotations

import numpy as np

from .base import KernelBackend

# SplitMix64 constants (Steele, Lea & Flood 2014, public domain) —
# shared with the scalar path in :mod:`repro.hashing.family`.
_GOLDEN_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)


def splitmix64_vec(values: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer over a ``uint64`` array.

    Identical arithmetic to the naive expression chain, but with the
    mixing steps applied in place on one working copy plus one scratch
    buffer — the naive form allocates ~8 intermediates per call, which
    dominates the batched engines' runtime on cache-sized chunks.
    """
    with np.errstate(over="ignore"):
        v = values + _GOLDEN_GAMMA  # fresh working copy
        scratch = v >> np.uint64(30)
        v ^= scratch
        v *= _MIX_A
        np.right_shift(v, np.uint64(27), out=scratch)
        v ^= scratch
        v *= _MIX_B
        np.right_shift(v, np.uint64(31), out=scratch)
        v ^= scratch
        return v


def leading_zeros64_vec(values: np.ndarray) -> np.ndarray:
    """Vectorized, exact leading-zero count over a ``uint64`` array.

    Float conversions are *not* exact here (a value just below a power
    of two rounds up and misreports its bit length), so this uses pure
    integer ops: propagate the top bit rightward, then popcount the
    resulting mask — ``clz = 64 - popcount``.
    """
    v = np.array(values, dtype=np.uint64, copy=True)
    scratch = np.empty_like(v)
    for shift in (1, 2, 4, 8, 16, 32):
        np.right_shift(v, np.uint64(shift), out=scratch)
        v |= scratch
    counts = popcount64(v)
    np.subtract(64, counts, out=counts)
    return counts


def popcount64(values: np.ndarray) -> np.ndarray:
    """SWAR popcount over a ``uint64`` array (wraparound is intended).

    Same arithmetic as the textbook expression chain, restructured to
    reuse one scratch buffer — the batched LoF engine runs this on
    every hash word, where per-step allocations dominate.
    """
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    with np.errstate(over="ignore"):
        scratch = values >> np.uint64(1)
        scratch &= m1
        x = values - scratch
        np.right_shift(x, np.uint64(2), out=scratch)
        scratch &= m2
        x &= m2
        x += scratch
        np.right_shift(x, np.uint64(4), out=scratch)
        x += scratch
        x &= m4
        x *= h01
        x >>= np.uint64(56)
        return x.astype(np.int64)


def clamped_buckets(digests: np.ndarray, max_bucket: int) -> np.ndarray:
    """Exact ``min(clz(digest), max_bucket)`` over a ``uint64`` array.

    For clamps below 53 the count only depends on the top ``max_bucket``
    bits, whose bit length a float64 conversion encodes *exactly* in its
    exponent field (integers < 2^53 are representable):

        min(clz(v), B) == B - bit_length(v >> (64 - B))

    This costs ~7 array passes instead of the ~24 of the general
    popcount-based clz, which matters on the batched LoF hot path.
    Wider clamps fall back to :func:`leading_zeros64_vec`.
    """
    if max_bucket == 0:
        return np.zeros(digests.shape, dtype=np.int64)
    if max_bucket > 52:
        return np.minimum(leading_zeros64_vec(digests), max_bucket)
    top = digests >> np.uint64(64 - max_bucket)
    exponents = top.astype(np.float64).view(np.uint64)
    exponents >>= np.uint64(52)
    # exponent field = bit_length + 1022 for top >= 1, 0 for top == 0
    bit_lengths = exponents.view(np.int64)
    bit_lengths -= 1022
    np.maximum(bit_lengths, 0, out=bit_lengths)
    np.subtract(max_bucket, bit_lengths, out=bit_lengths)
    return bit_lengths


class NumpyBackend(KernelBackend):
    """The pure-numpy reference backend (always available)."""

    name = "numpy"
    bit_identical = True

    def splitmix64_vec(self, values: np.ndarray) -> np.ndarray:
        return splitmix64_vec(values)

    def leading_zeros64_vec(self, values: np.ndarray) -> np.ndarray:
        return leading_zeros64_vec(values)

    def clamped_buckets(
        self, digests: np.ndarray, max_bucket: int
    ) -> np.ndarray:
        return clamped_buckets(digests, max_bucket)
