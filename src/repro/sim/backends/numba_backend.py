"""Optional numba JIT backend for the splitmix/clz hot passes.

Compiles the three kernel primitives with ``@njit(parallel=True,
nogil=True)``: one fused pass per element instead of numpy's ~8 array
sweeps, and thread-parallel across cores.  All arithmetic is 64-bit
integer (adds, xors, shifts, multiplies with wraparound), so the output
is **bit-identical** to the numpy reference — the contract tests assert
this on every call shape the engines use.

numba is an optional dependency (the ``jit`` extra in
``pyproject.toml``).  This module imports cleanly without it;
:data:`HAVE_NUMBA` reports availability and the registry only offers
the backend when the import succeeded.  Nothing in the library imports
numba at interpreter start — the JIT compile cost is paid on first use
of the backend, never on ``import repro``.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from .base import KernelBackend

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # numba is optional; the registry reports absence
    _numba = None

#: Whether the optional numba dependency imported successfully.
HAVE_NUMBA = _numba is not None

#: How to get the backend when it is missing.
INSTALL_HINT = "pip install 'repro[jit]'"

_GOLDEN_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)
_TOP_BIT = np.uint64(1 << 63)
_ONE = np.uint64(1)

if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @_numba.njit(cache=True, parallel=True, nogil=True)
    def _splitmix64_flat(values, out):  # pragma: no cover
        for index in _numba.prange(values.size):
            value = values[index] + _GOLDEN_GAMMA
            value = (value ^ (value >> np.uint64(30))) * _MIX_A
            value = (value ^ (value >> np.uint64(27))) * _MIX_B
            out[index] = value ^ (value >> np.uint64(31))

    @_numba.njit(cache=True, parallel=True, nogil=True)
    def _leading_zeros64_flat(values, out):  # pragma: no cover
        for index in _numba.prange(values.size):
            value = values[index]
            if value == np.uint64(0):
                out[index] = 64
            else:
                count = 0
                while (value & _TOP_BIT) == np.uint64(0):
                    value = value << _ONE
                    count += 1
                out[index] = count

    @_numba.njit(cache=True, parallel=True, nogil=True)
    def _clamped_buckets_flat(values, max_bucket, out):  # pragma: no cover
        for index in _numba.prange(values.size):
            value = values[index]
            if value == np.uint64(0):
                out[index] = max_bucket
            else:
                count = 0
                while (
                    count < max_bucket
                    and (value & _TOP_BIT) == np.uint64(0)
                ):
                    value = value << _ONE
                    count += 1
                out[index] = count


class NumbaBackend(KernelBackend):
    """JIT-compiled kernels; bit-identical to the numpy reference.

    Raises :class:`~repro.errors.ConfigurationError` at construction
    when numba is not importable, so a half-working backend can never
    be handed out.
    """

    name = "numba"
    bit_identical = True

    def __init__(self) -> None:
        if not HAVE_NUMBA:
            raise ConfigurationError(
                "the 'numba' backend needs the optional numba "
                f"dependency ({INSTALL_HINT})"
            )

    @staticmethod
    def _flat(values: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(values, dtype=np.uint64).ravel()

    def splitmix64_vec(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.uint64)
        flat = self._flat(values)
        out = np.empty(flat.size, dtype=np.uint64)
        _splitmix64_flat(flat, out)
        return out.reshape(values.shape)

    def leading_zeros64_vec(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.uint64)
        flat = self._flat(values)
        out = np.empty(flat.size, dtype=np.int64)
        _leading_zeros64_flat(flat, out)
        return out.reshape(values.shape)

    def clamped_buckets(
        self, digests: np.ndarray, max_bucket: int
    ) -> np.ndarray:
        digests = np.asarray(digests, dtype=np.uint64)
        flat = self._flat(digests)
        out = np.empty(flat.size, dtype=np.int64)
        _clamped_buckets_flat(flat, max_bucket, out)
        return out.reshape(digests.shape)
