"""The kernel-backend contract: the hot primitives behind every engine.

The batched engines (:mod:`repro.sim.batched`,
:mod:`repro.sim.protocol_batched`) spend nearly all of their time in
three array primitives:

* the vectorized SplitMix64 finalizer (every hash pass),
* the 64-bit leading-zero count (gray depths, geometric buckets),
* the clamped geometric bucketing ``min(clz(v), B)`` (LoF frames).

A :class:`KernelBackend` supplies all three.  The numpy implementation
is the **reference backend**: it defines the bit pattern every other
backend must reproduce.  Backends declare their exactness through
:attr:`KernelBackend.bit_identical`:

* ``True`` — every primitive returns byte-for-byte the reference
  output for every input (the registry's contract tests enforce this
  on every available backend).
* ``False`` — the backend is allowed a *documented* tolerance (for
  example a GPU backend whose reduction order differs); such a backend
  must describe the tolerance in :attr:`tolerance` and the benchmark
  guard compares estimates against that bound instead of exact
  equality.

Both shipped backends (numpy, numba) are integer-exact end to end, so
they run under the strict bit-identity contract.
"""

from __future__ import annotations

import abc

import numpy as np


class KernelBackend(abc.ABC):
    """One implementation of the batched engines' hot primitives.

    Subclasses are registered with
    :func:`repro.sim.backends.register_backend` and selected by name
    (CLI ``--backend``, the ``REPRO_BACKEND`` environment variable, or
    :func:`repro.sim.backends.set_active_backend`).
    """

    #: Registry name; set by subclasses.
    name: str = ""

    #: Whether every primitive is byte-for-byte equal to the numpy
    #: reference.  ``False`` requires :attr:`tolerance` to document the
    #: allowed divergence.
    bit_identical: bool = True

    #: Human-readable description of the allowed divergence for
    #: non-bit-identical backends (``None`` for exact backends).
    tolerance: str | None = None

    @abc.abstractmethod
    def splitmix64_vec(self, values: np.ndarray) -> np.ndarray:
        """SplitMix64 finalizer over a ``uint64`` array (any shape).

        Returns a fresh array of the same shape; must not modify
        ``values``.
        """

    @abc.abstractmethod
    def leading_zeros64_vec(self, values: np.ndarray) -> np.ndarray:
        """Exact leading-zero count (``int64``; 64 for zero)."""

    @abc.abstractmethod
    def clamped_buckets(
        self, digests: np.ndarray, max_bucket: int
    ) -> np.ndarray:
        """Exact ``min(clz(digest), max_bucket)`` (``int64``)."""

    def describe(self) -> dict:
        """Metadata row for diagnostics and the benchmark record."""
        return {
            "name": self.name,
            "bit_identical": self.bit_identical,
            "tolerance": self.tolerance,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
