"""Shared configuration dataclasses.

All user-tunable knobs of the library live in small frozen dataclasses
that validate themselves on construction.  Components accept a config
object rather than a long list of keyword arguments, which keeps
experiment definitions (``repro.sim.experiment``) declarative and
hashable/serialisable for seed bookkeeping.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .errors import ConfigurationError

#: Default PET tree height used across the paper's evaluation (Sec. 5.1):
#: each tag carries a 32-bit PET random code.
DEFAULT_TREE_HEIGHT = 32

#: Default number of repetitions per data point in the paper's simulations
#: ("To get each simulation result, we take 300 runs", Sec. 5.1).
PAPER_RUNS_PER_POINT = 300


@dataclass(frozen=True)
class AccuracyRequirement:
    """The ``(epsilon, delta)`` accuracy contract of Sec. 3.

    An estimator satisfies the contract when
    ``Pr{|n_hat - n| <= epsilon * n} >= 1 - delta``.

    Attributes
    ----------
    epsilon:
        Confidence-interval half width, relative to the true cardinality
        (e.g. ``0.05`` for the paper's 5 % default).
    delta:
        Error probability (e.g. ``0.01`` for the paper's 1 % default).
    """

    epsilon: float = 0.05
    delta: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must lie in (0, 1), got {self.epsilon!r}"
            )
        if not 0.0 < self.delta < 1.0:
            raise ConfigurationError(
                f"delta must lie in (0, 1), got {self.delta!r}"
            )

    def interval(self, n: int) -> tuple[float, float]:
        """Return the confidence interval ``[(1-eps)n, (1+eps)n]``."""
        return ((1.0 - self.epsilon) * n, (1.0 + self.epsilon) * n)

    def contains(self, n_hat: float, n: int) -> bool:
        """Return whether an estimate satisfies ``|n_hat - n| <= eps*n``."""
        return abs(n_hat - n) <= self.epsilon * n


@dataclass(frozen=True)
class PetConfig:
    """Parameters of the PET protocol itself.

    Attributes
    ----------
    tree_height:
        ``H``, the number of bits in PET codes and estimating paths.  The
        conceptual tree has ``2**H`` leaves; the paper uses ``H = 32``.
    binary_search:
        When true, use the Algorithm 3 binary search over prefix lengths
        (``O(log H)`` slots/round); otherwise the Algorithm 1 linear scan.
    passive_tags:
        When true, model Sec. 4.5 passive tags: a single preloaded code is
        reused across all rounds and only the estimating path changes.
        When false, tags hash a fresh code from the per-round seed
        (Algorithm 2 behaviour, requires active tags).
    rounds:
        Number of estimation rounds ``m``.  ``None`` means "derive from an
        accuracy requirement" via :func:`repro.core.accuracy.rounds_required`.
    """

    tree_height: int = DEFAULT_TREE_HEIGHT
    binary_search: bool = True
    passive_tags: bool = False
    rounds: int | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.tree_height <= 64:
            raise ConfigurationError(
                f"tree_height must lie in [1, 64], got {self.tree_height!r}"
            )
        if self.rounds is not None and self.rounds < 1:
            raise ConfigurationError(
                f"rounds must be >= 1 when given, got {self.rounds!r}"
            )

    def with_rounds(self, rounds: int) -> "PetConfig":
        """Return a copy of this config with ``rounds`` fixed."""
        return dataclasses.replace(self, rounds=rounds)


@dataclass(frozen=True)
class ChannelConfig:
    """Physical-channel behaviour of the slotted MAC substrate.

    The paper's evaluation assumes a lossless channel where the reader
    perfectly distinguishes idle from busy slots (Sec. 5.1); those are the
    defaults.  Loss and capture are provided for robustness ablations.

    Attributes
    ----------
    loss_probability:
        Probability that an individual tag's response is erased before
        reaching the reader (independent per tag per slot).
    capture_probability:
        Probability that a collision of two or more responses is decoded
        as a singleton (capture effect).  Irrelevant for PET, which only
        distinguishes idle vs busy, but used by the Aloha identification
        baseline.
    detect_collisions:
        Whether the reader can distinguish collision slots from singleton
        slots.  PET needs only idle-vs-busy; identification protocols need
        full three-way classification.
    """

    loss_probability: float = 0.0
    capture_probability: float = 0.0
    detect_collisions: bool = True

    def __post_init__(self) -> None:
        for name in ("loss_probability", "capture_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must lie in [0, 1], got {value!r}"
                )

    @property
    def lossless(self) -> bool:
        """Whether the channel matches the paper's ideal assumptions."""
        return self.loss_probability == 0.0 and self.capture_probability == 0.0


@dataclass(frozen=True)
class TimingConfig:
    """EPC Gen2-flavoured slot timing, for slots -> wall-clock reporting.

    The paper reports cost in time slots; real deployments care about
    milliseconds.  These defaults approximate a Gen2 reader at Tari=25 us
    with FM0 tag encoding, and yield ~1.2 ms per query slot — close to the
    per-slot figures used in the FNEB and LoF evaluations.

    Attributes
    ----------
    reader_bitrate_bps:
        Reader-to-tag command bitrate (bits/second).
    tag_bitrate_bps:
        Tag-to-reader response bitrate.
    command_overhead_bits:
        Fixed framing overhead per reader command (preamble, CRC...).
    response_bits:
        Length of a tag response burst.  PET responses carry no payload;
        a short RN16-like burst suffices.
    turnaround_us:
        Link turnaround time (T1 + T2 style gaps), per slot, microseconds.
    """

    reader_bitrate_bps: float = 64_000.0
    tag_bitrate_bps: float = 64_000.0
    command_overhead_bits: int = 22
    response_bits: int = 16
    turnaround_us: float = 200.0

    def __post_init__(self) -> None:
        if self.reader_bitrate_bps <= 0 or self.tag_bitrate_bps <= 0:
            raise ConfigurationError("bitrates must be positive")
        if self.command_overhead_bits < 0 or self.response_bits < 0:
            raise ConfigurationError("bit counts must be non-negative")
        if self.turnaround_us < 0:
            raise ConfigurationError("turnaround_us must be non-negative")

    def slot_duration_us(self, command_payload_bits: int) -> float:
        """Microseconds for one Reader-Talks-First slot.

        ``command_payload_bits`` is the protocol-specific payload carried
        by the reader command in this slot (e.g. 5 bits for a PET ``mid``
        broadcast, 1 bit with the Sec. 4.6.2 optimization).
        """
        if command_payload_bits < 0:
            raise ConfigurationError(
                f"command_payload_bits must be >= 0, got {command_payload_bits}"
            )
        command_bits = self.command_overhead_bits + command_payload_bits
        command_us = command_bits / self.reader_bitrate_bps * 1e6
        response_us = self.response_bits / self.tag_bitrate_bps * 1e6
        return command_us + response_us + self.turnaround_us
