"""Exception hierarchy for the PET reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses are grouped by the
subsystem that raises them; each carries enough context in its message to
be actionable without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or internally inconsistent.

    Raised eagerly at object-construction time (not lazily at use time) so
    that experiment sweeps fail before burning simulation cycles.
    """


class ProtocolError(ReproError):
    """A protocol state machine received an input it cannot handle.

    Examples: a reader observing a response in a slot where no query was
    issued, or a tag receiving a mask longer than its code.
    """


class ChannelError(ReproError):
    """The slotted channel was driven outside its contract.

    Examples: a tag transmitting outside the response half-slot, or two
    concurrent reader commands on a single channel.
    """


class EstimationError(ReproError):
    """An estimator could not produce a result.

    Examples: zero completed rounds, or an observation outside the
    representable gray-depth range ``[0, H]``.
    """


class AnalysisError(ReproError):
    """A closed-form analysis routine was queried outside its domain.

    Examples: asking for the asymptotic expectation with ``n <= 0`` or a
    confidence parameter outside ``(0, 1)``.
    """


class ServiceError(ReproError):
    """The estimation service was driven outside its contract.

    Examples: submitting to a service that was never started or is
    already shut down.  Load conditions (full queue, exceeded quota,
    expired deadline) are *not* errors — the service answers those with
    explicit ``rejected``/``expired`` responses instead of raising.
    """
