"""Terminal and HTML diagnostics reports.

One function pair — :func:`render_text_report` for the terminal,
:func:`render_html_report` (and :func:`write_html_report`) for a
self-contained HTML file — renders the same five sections from the same
inputs:

* **Convergence** — the streaming estimate against the paper's
  accuracy contract: ``n_hat``, mean gray depth, rounds observed, the
  Eq. 20 round budget from :func:`repro.core.accuracy.rounds_required`,
  rounds remaining, and the theory CI.  Sourced from an
  :class:`~repro.obs.diag.EstimatorHealth` snapshot when one is
  available, otherwise reconstructed from the registry's
  ``pet.gray_depth`` histogram.
* **Outliers** — rounds whose depth was improbable under the depth
  law, from the :class:`~repro.obs.trace.RoundTraceRecorder`.
* **Drift** — ``monitor.drift`` events from the registry event log.
* **Metrics** — counter/gauge/histogram summary tables.
* **Trace** — recorder occupancy and sampling-policy statistics.

The HTML output embeds its own minimal CSS (no external assets, no
scripts) so the file can be attached to a bug report or CI artifact
and opened anywhere.
"""

from __future__ import annotations

import html
import math
from typing import Sequence

from ..core.accuracy import PHI, rounds_required
from .registry import MetricsRegistry

#: Outlier rows rendered before the table is elided.
MAX_OUTLIER_ROWS = 20

#: Drift rows rendered before the table is elided.
MAX_DRIFT_ROWS = 20

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 60rem; color: #1a2330; }
h1 { border-bottom: 2px solid #2b5d8a; padding-bottom: .3rem; }
h2 { color: #2b5d8a; margin-top: 2rem; }
table { border-collapse: collapse; margin: .6rem 0; }
th, td { border: 1px solid #c3ccd6; padding: .25rem .6rem;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #eef2f6; }
.ok { color: #1b7f3b; font-weight: 600; }
.warn { color: #b33a1e; font-weight: 600; }
.muted { color: #69758a; }
""".strip()


def _fmt(value: object) -> str:
    """Human-oriented scalar formatting shared by both renderers."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.4g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _health_rows(health: object) -> list[tuple[str, object]]:
    snap = health.snapshot()  # type: ignore[attr-defined]
    return [
        ("rounds observed", snap.rounds_observed),
        ("mean gray depth", snap.mean_depth),
        ("streaming n_hat", snap.n_hat),
        (
            f"CI half-width (delta={snap.delta:g})",
            snap.ci_halfwidth,
        ),
        ("CI lower", snap.ci_lower),
        ("CI upper", snap.ci_upper),
        (
            f"required rounds (eps={snap.epsilon:g},"
            f" delta={snap.delta:g})",
            snap.required_rounds,
        ),
        ("rounds remaining", snap.rounds_remaining),
        ("converged", snap.converged),
        ("outlier rounds", snap.outlier_rounds),
        ("drift alerts", snap.drift_alerts),
        ("epochs observed", snap.epochs_observed),
    ]


def _fallback_rows(
    registry: MetricsRegistry,
    epsilon: float,
    delta: float,
) -> list[tuple[str, object]]:
    """Convergence rows reconstructed from the ``pet.gray_depth``
    histogram when no health monitor was attached."""
    snapshot = registry.snapshot()
    histograms = snapshot["histograms"]
    assert isinstance(histograms, dict)
    stats = histograms.get("pet.gray_depth")
    required = rounds_required(epsilon, delta)
    if not stats or not stats["count"]:
        return [
            ("rounds observed", 0),
            (
                f"required rounds (eps={epsilon:g}, delta={delta:g})",
                required,
            ),
            ("rounds remaining", required),
            ("converged", False),
            ("note", "no gray-depth observations recorded"),
        ]
    count = int(stats["count"])
    mean_depth = float(stats["mean"])
    n_hat = 2.0 ** mean_depth / PHI
    return [
        ("rounds observed", count),
        ("mean gray depth", mean_depth),
        ("streaming n_hat", n_hat),
        (
            f"required rounds (eps={epsilon:g}, delta={delta:g})",
            required,
        ),
        ("rounds remaining", max(0, required - count)),
        ("converged", count >= required),
        ("source", "pet.gray_depth histogram (no health monitor)"),
    ]


def _convergence_rows(
    registry: MetricsRegistry,
    health: object | None,
    epsilon: float,
    delta: float,
) -> list[tuple[str, object]]:
    if health is None:
        health = registry.health
    if health is not None:
        return _health_rows(health)
    return _fallback_rows(registry, epsilon, delta)


def _outlier_rows(
    recorder: object | None,
) -> list[tuple[object, ...]]:
    if recorder is None:
        return []
    records = recorder.outlier_records()  # type: ignore[attr-defined]
    return [
        (
            record.run_index,
            record.round_index,
            record.gray_depth,
            record.tail_probability,
            record.tier,
        )
        for record in records
    ]


def _drift_rows(
    registry: MetricsRegistry,
) -> list[tuple[object, ...]]:
    return [
        (
            event.get("epoch"),
            event.get("estimate"),
            event.get("smoothed"),
            event.get("z_score"),
        )
        for event in registry.events
        if event.get("name") == "monitor.drift"
    ]


def _trace_rows(
    recorder: object | None,
) -> list[tuple[str, object]]:
    if recorder is None:
        return [("recorder", "not attached")]
    policy = recorder.policy  # type: ignore[attr-defined]
    rows: list[tuple[str, object]] = [
        ("sampling policy", policy.mode),
        ("records held", len(recorder)),  # type: ignore[arg-type]
        ("capacity", recorder.capacity),  # type: ignore[attr-defined]
        ("rounds seen", recorder.rounds_seen),  # type: ignore[attr-defined]
        ("rounds recorded", recorder.rounds_recorded),  # type: ignore[attr-defined]
        ("records evicted", recorder.records_evicted),  # type: ignore[attr-defined]
    ]
    if policy.mode == "every_k":
        rows.insert(1, ("every k", policy.every_k))
    if policy.mode == "outliers_only":
        rows.insert(1, ("tail threshold", policy.tail_threshold))
    return rows


# -- terminal renderer -----------------------------------------------------


def _text_table(
    rows: Sequence[Sequence[object]],
    headers: Sequence[str] | None = None,
) -> str:
    table = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    if headers:
        table.insert(0, list(headers))
    widths = [
        max(len(row[col]) for row in table)
        for col in range(len(table[0]))
    ]
    lines = []
    for index, row in enumerate(table):
        lines.append(
            "  ".join(
                cell.ljust(width)
                for cell, width in zip(row, widths)
            ).rstrip()
        )
        if headers and index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_text_report(
    registry: MetricsRegistry,
    health: object | None = None,
    recorder: object | None = None,
    title: str = "PET estimation diagnostics",
    epsilon: float = 0.05,
    delta: float = 0.01,
) -> str:
    """Render the diagnostics report as plain terminal text."""
    if recorder is None:
        recorder = registry.round_trace
    sections: list[str] = [title, "=" * len(title)]

    sections.append("\nConvergence\n-----------")
    sections.append(
        _text_table(_convergence_rows(registry, health, epsilon, delta))
    )

    outliers = _outlier_rows(recorder)
    sections.append("\nOutlier rounds\n--------------")
    if outliers:
        shown = outliers[:MAX_OUTLIER_ROWS]
        sections.append(
            _text_table(
                shown,
                headers=("run", "round", "depth", "tail prob", "tier"),
            )
        )
        if len(outliers) > len(shown):
            sections.append(
                f"... {len(outliers) - len(shown)} more not shown"
            )
    else:
        sections.append("none recorded")

    drift = _drift_rows(registry)
    sections.append("\nDrift alerts\n------------")
    if drift:
        shown = drift[:MAX_DRIFT_ROWS]
        sections.append(
            _text_table(
                shown,
                headers=("epoch", "estimate", "smoothed", "z score"),
            )
        )
        if len(drift) > len(shown):
            sections.append(
                f"... {len(drift) - len(shown)} more not shown"
            )
    else:
        sections.append("none")

    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    assert isinstance(counters, dict) and isinstance(gauges, dict)
    sections.append("\nMetrics\n-------")
    scalar_rows = [
        (name, value) for name, value in counters.items()
    ] + [(name, value) for name, value in gauges.items()]
    if scalar_rows:
        sections.append(
            _text_table(scalar_rows, headers=("metric", "value"))
        )
    else:
        sections.append("no metrics recorded")
    histograms = snapshot["histograms"]
    assert isinstance(histograms, dict)
    if histograms:
        sections.append(
            _text_table(
                [
                    (
                        name,
                        stats["count"],
                        stats["mean"],
                        stats["min"],
                        stats["max"],
                    )
                    for name, stats in histograms.items()
                ],
                headers=("histogram", "count", "mean", "min", "max"),
            )
        )

    sections.append("\nRound trace\n-----------")
    sections.append(_text_table(_trace_rows(recorder)))
    return "\n".join(sections) + "\n"


# -- HTML renderer ---------------------------------------------------------


def _html_table(
    rows: Sequence[Sequence[object]],
    headers: Sequence[str] | None = None,
) -> str:
    parts = ["<table>"]
    if headers:
        parts.append(
            "<tr>"
            + "".join(
                f"<th>{html.escape(str(h))}</th>" for h in headers
            )
            + "</tr>"
        )
    for row in rows:
        parts.append(
            "<tr>"
            + "".join(
                f"<td>{html.escape(_fmt(cell))}</td>" for cell in row
            )
            + "</tr>"
        )
    parts.append("</table>")
    return "".join(parts)


def render_html_report(
    registry: MetricsRegistry,
    health: object | None = None,
    recorder: object | None = None,
    title: str = "PET estimation diagnostics",
    epsilon: float = 0.05,
    delta: float = 0.01,
) -> str:
    """Render the diagnostics report as one self-contained HTML page."""
    if recorder is None:
        recorder = registry.round_trace
    convergence = _convergence_rows(registry, health, epsilon, delta)
    converged = next(
        (value for label, value in convergence if label == "converged"),
        False,
    )
    badge = (
        '<span class="ok">converged</span>'
        if converged
        else '<span class="warn">not converged</span>'
    )

    body: list[str] = [
        f"<h1>{html.escape(title)}</h1>",
        f"<p>Status: {badge}</p>",
        '<h2 id="convergence">Convergence</h2>',
        _html_table(convergence),
    ]

    body.append('<h2 id="outliers">Outlier rounds</h2>')
    outliers = _outlier_rows(recorder)
    if outliers:
        body.append(
            _html_table(
                outliers[:MAX_OUTLIER_ROWS],
                headers=("run", "round", "depth", "tail prob", "tier"),
            )
        )
        if len(outliers) > MAX_OUTLIER_ROWS:
            body.append(
                f'<p class="muted">{len(outliers) - MAX_OUTLIER_ROWS}'
                " more not shown</p>"
            )
    else:
        body.append('<p class="muted">none recorded</p>')

    body.append('<h2 id="drift">Drift alerts</h2>')
    drift = _drift_rows(registry)
    if drift:
        body.append(
            _html_table(
                drift[:MAX_DRIFT_ROWS],
                headers=("epoch", "estimate", "smoothed", "z score"),
            )
        )
        if len(drift) > MAX_DRIFT_ROWS:
            body.append(
                f'<p class="muted">{len(drift) - MAX_DRIFT_ROWS}'
                " more not shown</p>"
            )
    else:
        body.append('<p class="muted">none</p>')

    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    histograms = snapshot["histograms"]
    assert isinstance(counters, dict)
    assert isinstance(gauges, dict)
    assert isinstance(histograms, dict)
    body.append('<h2 id="metrics">Metrics</h2>')
    scalar_rows = [
        (name, value) for name, value in counters.items()
    ] + [(name, value) for name, value in gauges.items()]
    if scalar_rows:
        body.append(
            _html_table(scalar_rows, headers=("metric", "value"))
        )
    else:
        body.append('<p class="muted">no metrics recorded</p>')
    if histograms:
        body.append(
            _html_table(
                [
                    (
                        name,
                        stats["count"],
                        stats["mean"],
                        stats["min"],
                        stats["max"],
                    )
                    for name, stats in histograms.items()
                ],
                headers=("histogram", "count", "mean", "min", "max"),
            )
        )

    body.append('<h2 id="trace">Round trace</h2>')
    body.append(_html_table(_trace_rows(recorder)))

    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head>\n"
        "<body>\n" + "\n".join(body) + "\n</body></html>\n"
    )


def write_html_report(dest: object, *args: object, **kwargs: object) -> None:
    """Write :func:`render_html_report` output to a path or handle."""
    text = render_html_report(*args, **kwargs)  # type: ignore[arg-type]
    if hasattr(dest, "write"):
        dest.write(text)  # type: ignore[attr-defined]
    else:
        with open(dest, "w", encoding="utf-8") as handle:  # type: ignore[arg-type]
            handle.write(text)
