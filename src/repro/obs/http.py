"""A tiny stdlib HTTP endpoint exposing the live registry.

:class:`MetricsServer` wraps :class:`http.server.ThreadingHTTPServer`
in a daemon thread so the serve tier (or any long-running process) can
expose its :class:`~repro.obs.registry.MetricsRegistry` without adding
a web framework:

* ``GET /metrics`` — OpenMetrics text (with bucket exemplars) via
  :func:`repro.obs.prom.render_openmetrics`; SLO burn-rate gauges are
  refreshed at scrape time when a tracker is attached, and fleet
  gauges (``registry.fleet``, a
  :class:`~repro.serve.shard.FleetStatus`) likewise, so the scraped
  windows and heartbeat ages are current, not answer-time stale.
* ``GET /healthz`` — JSON liveness with a stable schema:
  ``{"status": "ok"|"degraded"|"unhealthy", "shards": {...},
  "uptime_seconds": ...}`` plus ``spans`` and whatever the optional
  ``health`` callback adds.  The per-shard breakdown comes from the
  attached fleet watchdog; unsharded processes report ``"ok"`` with
  an empty shard map.
* ``GET /traces/<trace_id>`` — JSON timeline of every span in the
  registry's trace with that ``trace_id``, sorted by start offset —
  what an exemplar points at, and what ``python -m repro traceview``
  renders.

Reads are snapshot-consistent enough for monitoring (the GIL makes the
list/dict reads atomic; the registry is append-only), so no locking is
imposed on the hot recording paths.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from .prom import render_openmetrics
from .registry import MetricsRegistry

#: The content type Prometheus negotiates for OpenMetrics scrapes.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


def trace_timeline(
    registry: MetricsRegistry, trace_id: str
) -> dict[str, object]:
    """The JSON-ready timeline of one trace id in ``registry``.

    Spans sort by their monotonic ``start`` offset and are re-based so
    the earliest span starts at offset 0 — the same normalization the
    traceview waterfall applies.
    """
    spans = [
        asdict(record)
        for record in registry.trace
        if record.trace_id == trace_id
    ]
    spans.sort(key=lambda span: span["start"])
    base = spans[0]["start"] if spans else 0.0
    for span in spans:
        span["offset"] = span["start"] - base
    return {
        "trace_id": trace_id,
        "spans": spans,
        "span_count": len(spans),
    }


class _Handler(BaseHTTPRequestHandler):
    # The server instance injects these via the class-factory below.
    registry: MetricsRegistry
    health: Callable[[], dict] | None
    started: float

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # monitoring endpoints must not spam the service's stdout

    def _send(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self._send(status, body, "application/json; charset=utf-8")

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                slo = getattr(self.registry, "slo", None)
                if slo is not None:
                    slo.publish(self.registry, force=True)
                fleet = getattr(self.registry, "fleet", None)
                if fleet is not None:
                    # Heartbeat ages are measured at scrape time, not
                    # frozen at the last heartbeat's arrival.
                    fleet.refresh(self.registry)
                text = render_openmetrics(self.registry)
                self._send(
                    200,
                    text.encode("utf-8"),
                    OPENMETRICS_CONTENT_TYPE,
                )
            elif path == "/healthz":
                # Stable schema: status, shards, uptime_seconds (plus
                # spans and any health-callback extras).  A sharded
                # fleet's watchdog overrides status/shards; everyone
                # else reports ok with an empty shard map.
                payload = {
                    "status": "ok",
                    "shards": {},
                    "uptime_seconds": time.time() - self.started,
                    "spans": len(self.registry.trace),
                }
                fleet = getattr(self.registry, "fleet", None)
                if fleet is not None:
                    payload.update(fleet.health())
                if self.health is not None:
                    payload.update(self.health())
                self._send_json(200, payload)
            elif path.startswith("/traces/"):
                trace_id = path[len("/traces/"):]
                timeline = trace_timeline(self.registry, trace_id)
                if timeline["span_count"] == 0:
                    self._send_json(
                        404,
                        {
                            "error": "trace not found",
                            "trace_id": trace_id,
                        },
                    )
                else:
                    self._send_json(200, timeline)
            else:
                self._send_json(404, {"error": f"no route {path!r}"})
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # pragma: no cover - defensive
            try:
                self._send_json(500, {"error": str(exc)})
            except Exception:
                pass


class MetricsServer:
    """Serve ``/metrics``, ``/healthz``, ``/traces/<id>`` for a registry.

    Parameters
    ----------
    registry:
        The live registry to expose.
    port:
        TCP port; ``0`` binds an ephemeral port (read :attr:`port`
        after :meth:`start` — what the tests do).
    host:
        Bind address (default loopback: a monitoring endpoint should
        not be world-reachable by accident).
    health:
        Optional zero-arg callable returning extra ``/healthz`` fields
        (the serve tier reports queue depth and in-flight counts).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
        health: Callable[[], dict] | None = None,
    ):
        self.registry = registry
        self.host = host
        self.requested_port = port
        self.health = health
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``0`` after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self.requested_port

    @property
    def url(self) -> str:
        """Base URL of the running endpoint."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        """Bind and serve in a daemon thread; returns ``self``."""
        if self._server is not None:
            return self
        handler = type(
            "BoundHandler",
            (_Handler,),
            {
                "registry": self.registry,
                "health": staticmethod(self.health)
                if self.health
                else None,
                "started": time.time(),
            },
        )
        self._server = ThreadingHTTPServer(
            (self.host, self.requested_port), handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
