"""Metric primitives and the registry that owns them.

Zero-dependency by design: the whole :mod:`repro.obs` subsystem uses
only the standard library, so it can be imported by every layer (radio,
protocols, sim, figures, CLI) without widening the dependency surface.
Numpy arrays are still first-class *inputs* — :meth:`Histogram.observe_many`
duck-types on ``.size``/``.sum`` so a batch of gray depths is reduced by
numpy itself, not a Python loop — but nothing here imports numpy.

Three metric kinds, mirroring the usual Prometheus-style taxonomy:

* :class:`Counter` — monotone event count (slot outcomes, rounds run);
* :class:`Gauge` — last-written value (throughput of the latest cell);
* :class:`Histogram` — streaming moments + extrema of a distribution
  (gray depths, cell wall-clock), with a :meth:`Histogram.time` context
  manager for use as a timer.

Everything defaults to the process-wide :data:`NULL_REGISTRY`, a
:class:`NullRegistry` whose metric objects are shared do-nothing
singletons — instrumented hot paths pay one no-op method call and
nothing else, which keeps the batched engine bit-identical and within
noise of its uninstrumented benchmark numbers.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Iterator

from ..errors import ConfigurationError


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


class Gauge:
    """A value that can be set to anything at any time."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level of the tracked quantity."""
        self.value = float(value)


class Histogram:
    """Streaming distribution summary: count, mean, std, min, max.

    Keeps running moments instead of samples, so observing millions of
    values costs O(1) memory.  Doubles as a timer via :meth:`time`.
    """

    __slots__ = ("name", "count", "total", "sum_squares", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.sum_squares = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.sum_squares += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: object) -> None:
        """Record a batch of observations.

        Numpy arrays (anything exposing ``size``/``sum``/``min``/``max``)
        are reduced natively; other iterables fall back to a loop.
        """
        try:
            count = int(values.size)  # type: ignore[attr-defined]
            if count == 0:
                return
            total = float(values.sum())  # type: ignore[attr-defined]
            low = float(values.min())  # type: ignore[attr-defined]
            high = float(values.max())  # type: ignore[attr-defined]
            sum_squares = float((values * values).sum())  # type: ignore[operator]
        except AttributeError:
            for value in values:  # type: ignore[attr-defined]
                self.observe(value)
            return
        self.count += count
        self.total += total
        self.sum_squares += sum_squares
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high

    @property
    def mean(self) -> float:
        """Mean of all observations (NaN when empty)."""
        if self.count == 0:
            return math.nan
        return self.total / self.count

    @property
    def std(self) -> float:
        """Population standard deviation (NaN when empty)."""
        if self.count == 0:
            return math.nan
        variance = self.sum_squares / self.count - self.mean**2
        return math.sqrt(max(variance, 0.0))

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager observing the elapsed seconds of its body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by :class:`NullRegistry`."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:  # noqa: ARG002
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: ARG002
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: ARG002
        pass

    def observe_many(self, values: object) -> None:  # noqa: ARG002
        pass

    @contextmanager
    def time(self) -> Iterator[None]:
        yield
