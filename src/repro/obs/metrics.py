"""Metric primitives and the registry that owns them.

Zero-dependency by design: the whole :mod:`repro.obs` subsystem uses
only the standard library, so it can be imported by every layer (radio,
protocols, sim, figures, CLI) without widening the dependency surface.
Numpy arrays are still first-class *inputs* — :meth:`Histogram.observe_many`
duck-types on ``.size``/``.sum`` so a batch of gray depths is reduced by
numpy itself, not a Python loop — and numpy is only imported lazily on
that path, never at module import time.

Three metric kinds, mirroring the usual Prometheus-style taxonomy:

* :class:`Counter` — monotone event count (slot outcomes, rounds run);
* :class:`Gauge` — last-written value (throughput of the latest cell);
* :class:`Histogram` — streaming moments + extrema of a distribution
  (gray depths, cell wall-clock), with a :meth:`Histogram.time` context
  manager for use as a timer.

Everything defaults to the process-wide :data:`NULL_REGISTRY`, a
:class:`NullRegistry` whose metric objects are shared do-nothing
singletons — instrumented hot paths pay one no-op method call and
nothing else, which keeps the batched engine bit-identical and within
noise of its uninstrumented benchmark numbers.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Iterator

from ..errors import ConfigurationError

#: Exponent of the smallest dedicated log2 bucket: values in
#: ``(0, 2**(BUCKET_LOW_EXP + 1))`` all land in bucket 1.
BUCKET_LOW_EXP = -20

#: Exponent of the overflow boundary: values ``>= 2**BUCKET_HIGH_EXP``
#: land in the last (overflow) bucket.
BUCKET_HIGH_EXP = 34

#: Total bucket count: one non-positive bucket (index 0), one bucket per
#: power of two between the low and high exponents, one overflow bucket.
BUCKET_COUNT = BUCKET_HIGH_EXP - BUCKET_LOW_EXP + 1

#: Cached upper bounds (see :func:`bucket_upper_bounds`).
_BUCKET_BOUNDS: tuple[float, ...] | None = None


def bucket_upper_bounds() -> tuple[float, ...]:
    """Inclusive upper bound of each histogram bucket.

    Bucket 0 collects ``value <= 0`` (bound ``0.0``); bucket ``i`` for
    ``1 <= i < BUCKET_COUNT - 1`` collects positive values below
    ``2.0 ** (BUCKET_LOW_EXP + i)``; the last bucket is the overflow
    (bound ``inf``).  The grid is fixed, so bucket arrays from any two
    processes merge by elementwise addition — the property the
    cross-process snapshot/merge algebra rests on.
    """
    global _BUCKET_BOUNDS
    if _BUCKET_BOUNDS is None:
        _BUCKET_BOUNDS = (
            (0.0,)
            + tuple(
                2.0 ** (BUCKET_LOW_EXP + index)
                for index in range(1, BUCKET_COUNT - 1)
            )
            + (math.inf,)
        )
    return _BUCKET_BOUNDS


def bucket_index(value: float) -> int:
    """The fixed-grid bucket a single observation falls into."""
    if value <= 0:
        return 0
    if math.isinf(value):
        return BUCKET_COUNT - 1
    # frexp(v) = (m, e) with v = m * 2**e and 0.5 <= m < 1, so v lies in
    # [2**(e-1), 2**e) and its (exclusive) bucket bound is 2**e.
    exponent = math.frexp(value)[1]
    return min(max(exponent - BUCKET_LOW_EXP, 1), BUCKET_COUNT - 1)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


class Gauge:
    """A value that can be set to anything at any time.

    Every write stamps :attr:`ts` with ``time.time()`` so gauges from
    different processes merge last-write-wins: whichever process wrote
    most recently owns the merged value (``ts == 0.0`` means never
    written, and always loses).
    """

    __slots__ = ("name", "value", "ts")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self.ts: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level of the tracked quantity."""
        self.value = float(value)
        self.ts = time.time()


class Histogram:
    """Streaming distribution summary: count, mean, std, min, max,
    plus a fixed log2 bucket array.

    Keeps running moments and the fixed-grid bucket counts instead of
    samples, so observing millions of values costs O(1) memory.  The
    bucket grid (:func:`bucket_upper_bounds`) is identical in every
    process, which makes worker snapshots mergeable by elementwise
    addition.  Doubles as a timer via :meth:`time`.
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "sum_squares",
        "min",
        "max",
        "buckets",
        "exemplars",
    )

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.sum_squares = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * BUCKET_COUNT
        #: Lazy per-bucket exemplars: bucket index -> (trace_id, value,
        #: unix ts) for the *last* traced observation landing in that
        #: bucket.  ``None`` until the first traced observation, so
        #: untraced histograms carry no extra allocation.
        self.exemplars: dict[int, tuple[str, float, float]] | None = None

    def observe(self, value: float, trace_id: str | None = None) -> None:
        """Record one observation.

        ``trace_id`` (optional) attaches an OpenMetrics exemplar to the
        bucket the value lands in — last writer wins per bucket — so a
        scrape of a latency histogram points at a concrete trace for
        each latency band.
        """
        value = float(value)
        self.count += 1
        self.total += value
        self.sum_squares += value * value
        index = bucket_index(value)
        self.buckets[index] += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if trace_id is not None:
            exemplars = self.exemplars
            if exemplars is None:
                exemplars = self.exemplars = {}
            exemplars[index] = (trace_id, value, time.time())

    def observe_many(self, values: object) -> None:
        """Record a batch of observations.

        Numpy arrays (anything exposing ``size``/``sum``/``min``/``max``)
        are reduced natively — including the bucket counts, computed
        with one ``frexp``/``bincount`` pass; other iterables fall back
        to a loop.
        """
        try:
            count = int(values.size)  # type: ignore[attr-defined]
            if count == 0:
                return
            total = float(values.sum())  # type: ignore[attr-defined]
            low = float(values.min())  # type: ignore[attr-defined]
            high = float(values.max())  # type: ignore[attr-defined]
            sum_squares = float((values * values).sum())  # type: ignore[operator]
        except AttributeError:
            for value in values:  # type: ignore[attr-defined]
                self.observe(value)
            return
        import numpy as np  # lazy: repro.obs stays importable without it

        data = np.asarray(values, dtype=np.float64).ravel()
        exponents = np.frexp(data)[1]
        indices = np.where(
            data <= 0,
            0,
            np.clip(exponents - BUCKET_LOW_EXP, 1, BUCKET_COUNT - 1),
        )
        # np.frexp(+inf) reports exponent 0; route +inf to the overflow
        # bucket exactly as the scalar bucket_index does.
        indices[data == math.inf] = BUCKET_COUNT - 1
        bucketed = np.bincount(indices, minlength=BUCKET_COUNT)
        buckets = self.buckets
        for index in np.nonzero(bucketed)[0]:
            buckets[index] += int(bucketed[index])
        self.count += count
        self.total += total
        self.sum_squares += sum_squares
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high

    @property
    def mean(self) -> float:
        """Mean of all observations (NaN when empty)."""
        if self.count == 0:
            return math.nan
        return self.total / self.count

    @property
    def std(self) -> float:
        """Population standard deviation (NaN when empty)."""
        if self.count == 0:
            return math.nan
        variance = self.sum_squares / self.count - self.mean**2
        return math.sqrt(max(variance, 0.0))

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the fixed log2 bucket grid.

        Walks the cumulative bucket counts to the first bucket covering
        rank ``ceil(q * count)`` and reports that bucket's upper bound
        — the same resolution Prometheus would give for this grid, so
        service SLO p50/p99 readings match what the exported
        OpenMetrics buckets imply.  Clamped to the observed extrema
        (the first/last buckets are open-ended); ``NaN`` when empty.

        Degenerate inputs stay on the grid instead of walking off it:
        an empty histogram, a moments-only merge whose bucket array is
        all zeros, or invalid extrema (``min > max``, as in a partially
        reconstructed histogram) with an open-ended answer bucket all
        return ``NaN`` — never ``-inf``/``+inf``.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(
                f"quantile must be in [0, 1], got {q}"
            )
        if self.count == 0:
            return math.nan
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        bounds = bucket_upper_bounds()
        extrema_valid = self.min <= self.max
        for index, bucket_count in enumerate(self.buckets):
            seen += bucket_count
            if seen >= rank:
                bound = bounds[index]
                if extrema_valid:
                    return min(max(bound, self.min), self.max)
                # No trustworthy extrema to clamp with: report the
                # bucket bound when it is a real number, NaN for the
                # open-ended overflow bucket.
                return bound if math.isfinite(bound) else math.nan
        if seen == 0:
            # count > 0 but every bucket is zero: a moments-only
            # histogram (merged from stats without bucket occupancy).
            # There is no grid position to report.
            return math.nan
        return self.max if extrema_valid else math.nan

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager observing the elapsed seconds of its body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by :class:`NullRegistry`."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:  # noqa: ARG002
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: ARG002
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(
        self, value: float, trace_id: str | None = None  # noqa: ARG002
    ) -> None:
        pass

    def observe_many(self, values: object) -> None:  # noqa: ARG002
        pass

    @contextmanager
    def time(self) -> Iterator[None]:
        yield
