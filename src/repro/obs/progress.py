"""Live sweep progress: worker heartbeats, ETA, and a status line.

Large sweeps (Fig. 4's 24 cells x 300 repetitions, the table-3
comparison grid) fan out over worker processes and can run for minutes
with no output at all.  This module adds the missing feedback loop:

* :class:`Heartbeat` — one picklable progress record (cells done, slots
  simulated, rounds run, the population size currently being worked
  on), emitted by workers at cell boundaries;
* :class:`ProgressReporter` — the worker-side handle: wraps a
  ``multiprocessing`` queue proxy (picklable, so it travels through a
  ``ProcessPoolExecutor`` submit) and rate-limits its own emissions;
* :class:`ProgressTracker` — the parent-side aggregator: consumes
  heartbeats (or direct :meth:`ProgressTracker.cell_done` calls on the
  serial path), renders a throttled single-line terminal status with
  per-cell throughput and ETA, and mirrors the state into
  ``sweep.progress.*`` gauges so exporters and Prometheus scrapes see
  the same numbers.

Progress is *display-only* state: nothing here touches seeds or
results, heartbeats never enter the registry event log, and the
``sweep.progress.*`` gauges are excluded from the serial-vs-parallel
parity contract (see :func:`repro.obs.registry.parity_view`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import IO, Callable

from .registry import MetricsRegistry, get_registry

#: Minimum seconds between two terminal renders (and two worker
#: emissions): keeps a thousand-cell sweep from melting the terminal or
#: the queue.
DEFAULT_THROTTLE_SECONDS = 0.25

#: Heartbeats retained on the tracker for export/tests; older ones are
#: dropped (the aggregate counts are kept regardless).
MAX_HEARTBEATS = 10_000


def default_worker_id() -> str:
    """The conventional worker identity tag: ``pid:<os.getpid()>``."""
    return f"pid:{os.getpid()}"


@dataclass(frozen=True)
class Heartbeat:
    """One progress record from one worker.

    Attributes
    ----------
    worker_id:
        Identity of the emitting process (``pid:<pid>``).
    phase:
        ``"start"`` (cell picked up) or ``"done"`` (cell finished).
    cells_done:
        Cells *finished* by this emission (0 for a start beat, 1 for a
        done beat) — the tracker sums these, so the field is a delta,
        not a running total.
    slots:
        Slots simulated by the finished cell (0 for a start beat).
    rounds:
        Estimation rounds run by the finished cell.
    n:
        Population size of the cell being worked on, or ``None``.
    ts:
        ``time.time()`` at emission.
    """

    worker_id: str
    phase: str = "done"
    cells_done: int = 0
    slots: int = 0
    rounds: int = 0
    n: int | None = None
    ts: float = 0.0


class ProgressReporter:
    """Worker-side heartbeat emitter around a queue (proxy).

    The queue only needs ``put``; a ``multiprocessing.Manager().Queue()``
    proxy (what the sweeps use — plain ``multiprocessing.Queue`` objects
    do not survive a ``ProcessPoolExecutor`` submit) and a plain
    ``queue.Queue`` (tests, in-process use) both qualify.  Emissions
    with ``force=False`` are rate-limited to one per
    ``min_interval`` seconds; cell boundaries emit with ``force=True``.
    """

    def __init__(
        self,
        queue: object,
        worker_id: str | None = None,
        min_interval: float = DEFAULT_THROTTLE_SECONDS,
    ):
        self._queue = queue
        self._worker_id = worker_id
        self.min_interval = min_interval
        self._last_emit = 0.0

    @property
    def worker_id(self) -> str:
        # Resolved lazily so a reporter built in the parent and pickled
        # into a worker reports the *worker's* pid, not the parent's.
        return self._worker_id or default_worker_id()

    def emit(
        self,
        phase: str = "done",
        cells_done: int = 0,
        slots: int = 0,
        rounds: int = 0,
        n: int | None = None,
        force: bool = False,
    ) -> bool:
        """Queue one heartbeat; returns whether it was sent.

        Unforced emissions inside the throttle window are dropped (the
        caller keeps its own running totals, so nothing is lost — the
        next beat carries the news).
        """
        now = time.time()
        if not force and now - self._last_emit < self.min_interval:
            return False
        self._last_emit = now
        self._queue.put(  # type: ignore[attr-defined]
            Heartbeat(
                worker_id=self.worker_id,
                phase=phase,
                cells_done=cells_done,
                slots=slots,
                rounds=rounds,
                n=n,
                ts=now,
            )
        )
        return True

    def __getstate__(self) -> dict[str, object]:
        # _last_emit is per-process throttle state; worker_id must be
        # re-resolved on the far side when it was not given explicitly.
        return {
            "_queue": self._queue,
            "_worker_id": self._worker_id,
            "min_interval": self.min_interval,
            "_last_emit": 0.0,
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)


class ProgressTracker:
    """Parent-side progress aggregation, rendering, and gauges.

    Parameters
    ----------
    total_cells:
        Number of cells the sweep will run (the ETA denominator).
    registry:
        Receives the ``sweep.progress.*`` gauges; defaults to the
        process-wide active registry (no-op when null).
    stream:
        Where the status line goes; ``None`` disables rendering (the
        gauges and aggregates still update).
    min_interval:
        Minimum seconds between two renders (final render is always
        emitted).
    clock:
        Injectable time source for tests (defaults to
        ``time.monotonic``).
    """

    def __init__(
        self,
        total_cells: int,
        registry: MetricsRegistry | None = None,
        stream: IO[str] | None = None,
        min_interval: float = DEFAULT_THROTTLE_SECONDS,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.total_cells = total_cells
        self.registry = (
            registry if registry is not None else get_registry()
        )
        self.stream = stream
        self.min_interval = min_interval
        self._clock = clock
        self._start = clock()
        self._last_render = -float("inf")
        self.cells_done = 0
        self.slots_done = 0
        self.rounds_done = 0
        self.current_n: int | None = None
        self.heartbeats: list[Heartbeat] = []

    # -- aggregate properties --------------------------------------------

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since the tracker was created."""
        return max(self._clock() - self._start, 0.0)

    @property
    def cells_per_second(self) -> float:
        """Finished-cell throughput so far (0 before the first cell)."""
        elapsed = self.elapsed_seconds
        if elapsed <= 0 or self.cells_done == 0:
            return 0.0
        return self.cells_done / elapsed

    @property
    def eta_seconds(self) -> float:
        """Estimated seconds to completion (inf before the first cell)."""
        rate = self.cells_per_second
        if rate <= 0:
            return float("inf")
        return max(self.total_cells - self.cells_done, 0) / rate

    @property
    def fraction_done(self) -> float:
        """Completed fraction in [0, 1] (1.0 for an empty sweep)."""
        if self.total_cells <= 0:
            return 1.0
        return min(self.cells_done / self.total_cells, 1.0)

    # -- feeding the tracker ---------------------------------------------

    def observe(self, heartbeat: Heartbeat) -> None:
        """Fold one worker heartbeat into the aggregates and render."""
        if len(self.heartbeats) < MAX_HEARTBEATS:
            self.heartbeats.append(heartbeat)
        self.cells_done += heartbeat.cells_done
        self.slots_done += heartbeat.slots
        self.rounds_done += heartbeat.rounds
        if heartbeat.n is not None:
            self.current_n = heartbeat.n
        self._update_gauges()
        self.render()

    def cell_done(
        self,
        n: int | None = None,
        slots: int = 0,
        rounds: int = 0,
    ) -> None:
        """Serial-path shortcut: one cell finished in this process."""
        self.observe(
            Heartbeat(
                worker_id=default_worker_id(),
                phase="done",
                cells_done=1,
                slots=slots,
                rounds=rounds,
                n=n,
                ts=time.time(),
            )
        )

    def drain(self, queue: object) -> int:
        """Consume every heartbeat currently waiting on ``queue``.

        Non-blocking; returns how many were consumed.  Accepts anything
        with ``get_nowait`` raising ``queue.Empty`` when dry (both
        ``queue.Queue`` and manager proxies do).
        """
        import queue as queue_module

        consumed = 0
        while True:
            try:
                heartbeat = queue.get_nowait()  # type: ignore[attr-defined]
            except queue_module.Empty:
                return consumed
            self.observe(heartbeat)
            consumed += 1

    # -- output ----------------------------------------------------------

    def _update_gauges(self) -> None:
        registry = self.registry
        if not registry:
            return
        registry.gauge("sweep.progress.cells_total").set(
            self.total_cells
        )
        registry.gauge("sweep.progress.cells_done").set(self.cells_done)
        registry.gauge("sweep.progress.fraction").set(
            self.fraction_done
        )
        registry.gauge("sweep.progress.slots_done").set(self.slots_done)
        registry.gauge("sweep.progress.cells_per_second").set(
            self.cells_per_second
        )
        eta = self.eta_seconds
        if eta != float("inf"):
            registry.gauge("sweep.progress.eta_seconds").set(eta)

    def status_line(self) -> str:
        """The current one-line progress summary."""
        parts = [
            f"sweep {self.cells_done}/{self.total_cells} cells",
            f"{self.fraction_done:6.1%}",
        ]
        rate = self.cells_per_second
        if rate > 0:
            parts.append(f"{rate:.2f} cells/s")
            parts.append(f"eta {_format_eta(self.eta_seconds)}")
        if self.slots_done:
            parts.append(f"{self.slots_done:,} slots")
        if self.current_n is not None:
            parts.append(f"n={self.current_n:,}")
        return "  ".join(parts)

    def render(self, force: bool = False) -> None:
        """Write the throttled status line (no-op without a stream)."""
        if self.stream is None:
            return
        now = self._clock()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self.stream.write("\r\x1b[2K" + self.status_line())
        self.stream.flush()

    def finish(self) -> None:
        """Final render plus the newline that releases the status line."""
        self._update_gauges()
        if self.stream is None:
            return
        self.render(force=True)
        self.stream.write("\n")
        self.stream.flush()


def _format_eta(seconds: float) -> str:
    """Compact ``1h02m``/``3m20s``/``12.5s`` ETA formatting."""
    if seconds == float("inf"):
        return "?"
    if seconds >= 3600:
        hours, rem = divmod(int(seconds), 3600)
        return f"{hours}h{rem // 60:02d}m"
    if seconds >= 60:
        minutes, rem = divmod(int(seconds), 60)
        return f"{minutes}m{rem:02d}s"
    return f"{seconds:.1f}s"
