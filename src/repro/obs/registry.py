"""The metrics registry and the process-wide active-registry switch.

:class:`MetricsRegistry` is the single object instrumented code talks
to: it creates/looks up named metrics, opens :class:`~repro.obs.span.Span`
regions, and records free-form events (one dict per event — used for
per-cell results so exporters can emit final estimates next to the
counters).

Instrumented components resolve their registry at construction time:

    registry = registry if registry is not None else get_registry()

The default active registry is :data:`NULL_REGISTRY` — a
:class:`NullRegistry` whose metrics, spans, and events are all no-ops —
so nothing is recorded (and effectively nothing is paid) until a caller
opts in, either by passing a registry explicitly or by installing one
with :func:`set_registry` / :func:`use_registry` (what the CLI's
``--metrics-out`` does).  Registries are truthy, the null registry is
falsy, so batch code can gate optional aggregate computations with
``if registry:``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    _NullCounter,
    _NullGauge,
    _NullHistogram,
)
from .span import NULL_SPAN, NullSpan, Span, SpanRecord


class MetricsRegistry:
    """Owns every named metric, the span trace, and the event log.

    Parameters
    ----------
    max_trace:
        Upper bound on retained span records and events (each counted
        separately).  Excess records are dropped, not stored, and the
        drop count appears in the ``obs.spans.dropped`` /
        ``obs.events.dropped`` counters.
    """

    def __init__(self, max_trace: int = 10_000):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._span_stack: list[Span] = []
        self.trace: list[SpanRecord] = []
        self.events: list[dict[str, object]] = []
        self.max_trace = max_trace
        #: Optional round-level diagnostics attached to this registry
        #: (see :mod:`repro.obs.trace` / :mod:`repro.obs.diag`).
        #: Instrumented simulators read these attributes and feed them
        #: when set; both stay ``None`` on the null registry, so the
        #: uninstrumented fast path is unaffected.
        self.round_trace: object | None = None
        self.health: object | None = None

    def attach_diagnostics(
        self,
        round_trace: object | None = None,
        health: object | None = None,
    ) -> "MetricsRegistry":
        """Attach a round-trace recorder and/or health monitor.

        Returns ``self`` so construction chains:
        ``MetricsRegistry().attach_diagnostics(recorder, health)``.
        """
        if round_trace is not None:
            self.round_trace = round_trace
        if health is not None:
            self.health = health
        return self

    def __bool__(self) -> bool:
        return True

    # -- metric lookup/creation ------------------------------------------

    def counter(self, name: str) -> Counter:
        """Return the named counter, creating it on first use."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """Return the named gauge, creating it on first use."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        """Return the named histogram, creating it on first use."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- spans and events ------------------------------------------------

    def span(self, name: str, **attributes: object) -> Span | NullSpan:
        """Open a nested timed region (use as a context manager)."""
        return Span(self, name, **attributes)

    def _finish_span(self, record: SpanRecord) -> None:
        if len(self.trace) < self.max_trace:
            self.trace.append(record)
        else:
            self.counter("obs.spans.dropped").inc()
        self.histogram(f"span.{record.path}.seconds").observe(
            record.seconds
        )

    def event(self, name: str, **fields: object) -> None:
        """Record one structured event row (e.g. a finished cell)."""
        if len(self.events) < self.max_trace:
            self.events.append({"name": name, **fields})
        else:
            self.counter("obs.events.dropped").inc()

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Plain-dict view of every metric, for exporters and tests."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": metric.count,
                    "mean": metric.mean,
                    "std": metric.std,
                    "min": metric.min,
                    "max": metric.max,
                    "total": metric.total,
                }
                for name, metric in sorted(self._histograms.items())
            },
        }


class NullRegistry(MetricsRegistry):
    """The default registry: accepts everything, records nothing.

    All metric factories return shared do-nothing singletons and
    :meth:`span` returns the shared no-op span, so instrumentation left
    in place costs one attribute lookup and one no-op call.
    """

    _NULL_COUNTER = _NullCounter("null")
    _NULL_GAUGE = _NullGauge("null")
    _NULL_HISTOGRAM = _NullHistogram("null")

    def __bool__(self) -> bool:
        return False

    def counter(self, name: str) -> Counter:  # noqa: ARG002
        return self._NULL_COUNTER

    def gauge(self, name: str) -> Gauge:  # noqa: ARG002
        return self._NULL_GAUGE

    def histogram(self, name: str) -> Histogram:  # noqa: ARG002
        return self._NULL_HISTOGRAM

    def span(self, name: str, **attributes: object) -> NullSpan:  # noqa: ARG002
        return NULL_SPAN

    def event(self, name: str, **fields: object) -> None:  # noqa: ARG002
        pass

    def attach_diagnostics(
        self,
        round_trace: object | None = None,  # noqa: ARG002
        health: object | None = None,  # noqa: ARG002
    ) -> "MetricsRegistry":
        """No-op: the shared null registry never carries diagnostics."""
        return self


#: The process-wide default: instrumentation wired to this records nothing.
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently active registry (the null registry by default)."""
    return _active


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the previous."""
    global _active
    previous = _active
    _active = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_registry`: restores the previous on exit."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
