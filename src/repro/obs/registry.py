"""The metrics registry and the process-wide active-registry switch.

:class:`MetricsRegistry` is the single object instrumented code talks
to: it creates/looks up named metrics, opens :class:`~repro.obs.span.Span`
regions, and records free-form events (one dict per event — used for
per-cell results so exporters can emit final estimates next to the
counters).

Instrumented components resolve their registry at construction time:

    registry = registry if registry is not None else get_registry()

The default active registry is :data:`NULL_REGISTRY` — a
:class:`NullRegistry` whose metrics, spans, and events are all no-ops —
so nothing is recorded (and effectively nothing is paid) until a caller
opts in, either by passing a registry explicitly or by installing one
with :func:`set_registry` / :func:`use_registry` (what the CLI's
``--metrics-out`` does).  Registries are truthy, the null registry is
falsy, so batch code can gate optional aggregate computations with
``if registry:``.
"""

from __future__ import annotations

import json
import math
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    _NullCounter,
    _NullGauge,
    _NullHistogram,
)
from .span import NULL_SPAN, NullSpan, Span, SpanRecord


@dataclass
class RegistrySnapshot:
    """Picklable point-in-time copy of a registry's full contents.

    This is what worker processes ship back to the sweep parent: plain
    dicts, lists, and :class:`~repro.obs.span.SpanRecord` rows — nothing
    that references the live registry — so the object pickles cleanly
    across a ``ProcessPoolExecutor`` boundary and feeds
    :meth:`MetricsRegistry.merge` on the other side.

    For backwards compatibility the snapshot also supports the old
    plain-dict access pattern: ``snapshot["counters"]`` /
    ``snapshot["gauges"]`` / ``snapshot["histograms"]`` return the same
    mappings the dict-returning ``snapshot()`` of earlier versions did
    (histogram stats dicts additionally carry ``sum_squares`` and the
    fixed-grid ``buckets`` array).

    Attributes
    ----------
    counters:
        Metric name → monotone total.
    gauges:
        Metric name → last-written value.
    gauge_ts:
        Metric name → ``time.time()`` of the last write (``0.0`` =
        never written); drives last-write-wins merging.
    histograms:
        Metric name → stats dict (``count`` / ``total`` /
        ``sum_squares`` / ``min`` / ``max`` / ``mean`` / ``std`` /
        ``buckets``, plus ``exemplars`` when any bucket carries one).
    spans:
        The registry's completed-span trace (tagged with ``worker.id``
        when the snapshot was taken with a ``worker_id``).
    events:
        The registry's event rows (same ``worker.id`` tagging).
    worker_id:
        Identity of the process that took the snapshot, or ``None``.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    gauge_ts: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, object]] = field(
        default_factory=dict
    )
    spans: list[SpanRecord] = field(default_factory=list)
    events: list[dict[str, object]] = field(default_factory=list)
    worker_id: str | None = None

    def __getitem__(self, key: str) -> dict:
        if key in ("counters", "gauges", "histograms"):
            return getattr(self, key)
        raise KeyError(key)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready plain-dict view (spans become attribute dicts)."""
        from dataclasses import asdict

        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "gauge_ts": dict(self.gauge_ts),
            "histograms": {
                name: dict(stats)
                for name, stats in self.histograms.items()
            },
            "spans": [asdict(record) for record in self.spans],
            "events": [dict(event) for event in self.events],
            "worker_id": self.worker_id,
        }


class DeltaSnapshotter:
    """Incremental :class:`RegistrySnapshot` producer for one registry.

    Each :meth:`delta` call returns only what changed since the
    previous call — counter *increments*, histogram *stat increments*
    (plus the current extrema and exemplars, whose merge rules are
    idempotent), gauges whose value or timestamp moved, and the span /
    event rows appended since last time.  Merging the sequence of
    deltas into a fresh registry lands it exactly where merging one
    full :meth:`MetricsRegistry.snapshot` would:

    * counters: the increments sum to the full total;
    * histograms: count/total/sum_squares/buckets increments sum
      exactly; ``min``/``max`` ship as current values and merge via
      ``min()``/``max()``, so repeating them is harmless;
    * gauges: full ``(value, ts)`` pairs, last-write-wins on merge;
    * spans/events: disjoint slices of the append-only logs.

    This is what bounds the payload cost of periodic worker telemetry:
    a quiet interval ships a few bytes (or nothing — :meth:`delta`
    returns ``None`` when literally nothing moved), not the whole
    registry history.
    """

    def __init__(
        self, registry: "MetricsRegistry", worker_id: str | None = None
    ):
        self._registry = registry
        self.worker_id = worker_id
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, tuple[float, float]] = {}
        self._histograms: dict[
            str, tuple[int, float, float, list[int]]
        ] = {}
        self._span_index = 0
        self._event_index = 0

    def delta(self) -> RegistrySnapshot | None:
        """Changes since the last call (``None`` when nothing moved)."""
        registry = self._registry
        snapshot = RegistrySnapshot(worker_id=self.worker_id)
        changed = False
        for name, metric in registry._counters.items():
            previous = self._counters.get(name, 0.0)
            if metric.value != previous:
                snapshot.counters[name] = metric.value - previous
                self._counters[name] = metric.value
                changed = True
        for name, metric in registry._gauges.items():
            current = (metric.value, metric.ts)
            if self._gauges.get(name) != current:
                snapshot.gauges[name] = metric.value
                snapshot.gauge_ts[name] = metric.ts
                self._gauges[name] = current
                changed = True
        for name, metric in registry._histograms.items():
            previous = self._histograms.get(name)
            if previous is None:
                previous = (0, 0.0, 0.0, [0] * len(metric.buckets))
            count = metric.count - previous[0]
            if count == 0:
                continue
            total = metric.total - previous[1]
            sum_squares = metric.sum_squares - previous[2]
            snapshot.histograms[name] = {
                "count": count,
                "mean": total / count,
                "std": 0.0,
                "min": metric.min,
                "max": metric.max,
                "total": total,
                "sum_squares": sum_squares,
                "buckets": [
                    now - then
                    for now, then in zip(metric.buckets, previous[3])
                ],
                **(
                    {"exemplars": dict(metric.exemplars)}
                    if metric.exemplars
                    else {}
                ),
            }
            self._histograms[name] = (
                metric.count,
                metric.total,
                metric.sum_squares,
                list(metric.buckets),
            )
            changed = True
        spans = registry.trace[self._span_index:]
        self._span_index += len(spans)
        events = registry.events[self._event_index:]
        self._event_index += len(events)
        if self.worker_id is not None:
            spans = [
                replace(
                    record,
                    attributes={
                        **record.attributes,
                        "worker.id": self.worker_id,
                    },
                )
                for record in spans
            ]
            events = [
                {**event, "worker.id": self.worker_id}
                for event in events
            ]
        else:
            events = [dict(event) for event in events]
        if spans or events:
            changed = True
        if not changed:
            return None
        snapshot.spans = spans
        snapshot.events = events
        return snapshot


def _gauge_wins(
    ts_new: float, value_new: float, ts_old: float, value_old: float
) -> bool:
    """Last-write-wins with a total tie-break order.

    Later timestamp wins; equal timestamps break toward the larger
    value (NaN loses to everything) — a total order, so merging any
    number of snapshots in any order converges to the same gauge.
    """
    if ts_new != ts_old:
        return ts_new > ts_old
    if math.isnan(value_new):
        return False
    if math.isnan(value_old):
        return True
    return value_new > value_old


def _strip_volatile(event: dict[str, object]) -> dict[str, object]:
    """An event row minus its timing and worker-identity fields."""
    return {
        key: value
        for key, value in event.items()
        if key not in ("seconds", "worker.id", "ts")
    }


def parity_view(
    snapshot: "RegistrySnapshot | MetricsRegistry",
) -> dict[str, object]:
    """The deterministic projection of a snapshot, for equality tests.

    Parallel and serial sweeps must agree *bit-for-bit* on everything
    that is not a wall-clock measurement: counters, histogram counts /
    extrema / bucket arrays, and the event multiset up to worker-id and
    timing tags.  Gauges (throughput), ``*.seconds`` histograms (cell
    and span timings), and the span trace itself are machine-timed and
    excluded.  Histogram ``total`` / ``sum_squares`` are float sums
    whose grouping differs between the merged and the serial order, so
    they are rounded to 12 significant digits rather than compared
    exactly.
    """
    if isinstance(snapshot, MetricsRegistry):
        snapshot = snapshot.snapshot()
    histograms = {}
    for name, stats in sorted(snapshot.histograms.items()):
        if name.endswith(".seconds") or name.endswith("_seconds"):
            continue
        histograms[name] = {
            "count": stats["count"],
            "min": stats["min"],
            "max": stats["max"],
            "buckets": list(stats["buckets"]),
            "total": float(f"{stats['total']:.12g}"),
            "sum_squares": float(f"{stats['sum_squares']:.12g}"),
        }
    events = sorted(
        json.dumps(_strip_volatile(event), sort_keys=True, default=str)
        for event in snapshot.events
    )
    return {
        "counters": dict(sorted(snapshot.counters.items())),
        "histograms": histograms,
        "events": events,
    }


class MetricsRegistry:
    """Owns every named metric, the span trace, and the event log.

    Parameters
    ----------
    max_trace:
        Upper bound on retained span records and events (each counted
        separately).  Excess records are dropped, not stored, and the
        drop count appears in the ``obs.spans.dropped`` /
        ``obs.events.dropped`` counters.
    """

    def __init__(self, max_trace: int = 10_000):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # Span-path -> duration histogram, so the per-span hot path
        # skips the f-string name build on every finish.
        self._span_seconds: dict[str, Histogram] = {}
        self._span_stack: list[Span] = []
        self.trace: list[SpanRecord] = []
        self.events: list[dict[str, object]] = []
        self.max_trace = max_trace
        #: Optional round-level diagnostics attached to this registry
        #: (see :mod:`repro.obs.trace` / :mod:`repro.obs.diag`).
        #: Instrumented simulators read these attributes and feed them
        #: when set; all stay ``None`` on the null registry, so the
        #: uninstrumented fast path is unaffected.
        self.round_trace: object | None = None
        self.health: object | None = None
        #: Optional :class:`~repro.obs.profile.PhaseProfiler`; batched
        #: kernels wrap their phases with it when attached (the shared
        #: no-op profiler otherwise).
        self.profiler: object | None = None
        #: Optional :class:`~repro.obs.slo.SloTracker`; the serve tier
        #: attaches one so every answered request feeds the windowed
        #: error-budget burn-rate gauges.
        self.slo: object | None = None
        #: Optional fleet-status view (see
        #: :class:`repro.serve.shard.FleetStatus`); the sharded router
        #: attaches one so the scrape endpoint can refresh per-shard
        #: liveness gauges and report watchdog health on ``/healthz``.
        self.fleet: object | None = None

    def attach_diagnostics(
        self,
        round_trace: object | None = None,
        health: object | None = None,
        profiler: object | None = None,
        slo: object | None = None,
        fleet: object | None = None,
    ) -> "MetricsRegistry":
        """Attach a round-trace recorder, health monitor, profiler,
        SLO tracker, or fleet-status view.

        Returns ``self`` so construction chains:
        ``MetricsRegistry().attach_diagnostics(recorder, health)``.
        """
        if round_trace is not None:
            self.round_trace = round_trace
        if health is not None:
            self.health = health
        if profiler is not None:
            self.profiler = profiler
        if slo is not None:
            self.slo = slo
        if fleet is not None:
            self.fleet = fleet
        return self

    def __bool__(self) -> bool:
        return True

    # -- metric lookup/creation ------------------------------------------

    def counter(self, name: str) -> Counter:
        """Return the named counter, creating it on first use."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """Return the named gauge, creating it on first use."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        """Return the named histogram, creating it on first use."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- spans and events ------------------------------------------------

    def span(self, name: str, **attributes: object) -> Span | NullSpan:
        """Open a nested timed region (use as a context manager)."""
        return Span(self, name, **attributes)

    def _finish_span(self, record: SpanRecord) -> None:
        if len(self.trace) < self.max_trace:
            self.trace.append(record)
        else:
            self.counter("obs.spans.dropped").inc()
        metric = self._span_seconds.get(record.path)
        if metric is None:
            metric = self._span_seconds[record.path] = self.histogram(
                f"span.{record.path}.seconds"
            )
        metric.observe(record.seconds, trace_id=record.trace_id)

    def record_span(
        self,
        name: str,
        *,
        start: float,
        seconds: float,
        path: str | None = None,
        trace: "object | None" = None,
        **attributes: object,
    ) -> SpanRecord:
        """Record a span whose timing was measured externally.

        The serve tier's request phases (admission, queue wait, kernel
        execution) cross scheduler ticks and worker threads, so they
        cannot be ``with`` blocks on one registry stack — the service
        times them itself and reports each finished region here.
        ``trace`` is an optional
        :class:`~repro.obs.tracectx.TraceContext` naming the span's
        identity; ``path`` defaults to ``name``.
        """
        trace_id = span_id = parent_id = None
        if trace is not None:
            trace_id = trace.trace_id  # type: ignore[attr-defined]
            span_id = trace.span_id  # type: ignore[attr-defined]
            parent_id = trace.parent_id  # type: ignore[attr-defined]
        record = SpanRecord(
            name=name,
            path=path if path is not None else name,
            start=start,
            seconds=seconds,
            # The **attributes dict is freshly built per call — safe
            # to store without copying.
            attributes=attributes,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
        )
        self._finish_span(record)
        return record

    def event(self, name: str, **fields: object) -> None:
        """Record one structured event row (e.g. a finished cell)."""
        if len(self.events) < self.max_trace:
            self.events.append({"name": name, **fields})
        else:
            self.counter("obs.events.dropped").inc()

    # -- export ----------------------------------------------------------

    def snapshot(self, worker_id: str | None = None) -> RegistrySnapshot:
        """Picklable copy of every metric, span, and event.

        The returned :class:`RegistrySnapshot` still supports the old
        mapping access (``snapshot()["counters"]`` ...), so exporters
        and tests written against the plain-dict shape keep working.

        ``worker_id`` tags every span and event with a ``worker.id``
        attribute — worker processes pass their pid so the parent's
        merged trace records which process timed what.
        """
        spans = list(self.trace)
        events = [dict(event) for event in self.events]
        if worker_id is not None:
            spans = [
                replace(
                    record,
                    attributes={
                        **record.attributes,
                        "worker.id": worker_id,
                    },
                )
                for record in spans
            ]
            for event in events:
                event["worker.id"] = worker_id
        return RegistrySnapshot(
            counters={
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            gauges={
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            gauge_ts={
                name: metric.ts
                for name, metric in sorted(self._gauges.items())
            },
            histograms={
                name: {
                    "count": metric.count,
                    "mean": metric.mean,
                    "std": metric.std,
                    "min": metric.min,
                    "max": metric.max,
                    "total": metric.total,
                    "sum_squares": metric.sum_squares,
                    "buckets": list(metric.buckets),
                    **(
                        {"exemplars": dict(metric.exemplars)}
                        if metric.exemplars
                        else {}
                    ),
                }
                for name, metric in sorted(self._histograms.items())
            },
            spans=spans,
            events=events,
            worker_id=worker_id,
        )

    # -- cross-process merge ---------------------------------------------

    def merge(self, snapshot: RegistrySnapshot) -> "MetricsRegistry":
        """Fold a worker's :class:`RegistrySnapshot` into this registry.

        The merge is associative and order-independent over the metric
        state: counters add, histogram moments/extrema/buckets combine
        exactly, and gauges resolve last-write-wins on their write
        timestamps (ties break toward the larger value so the outcome
        does not depend on merge order).  Spans and events append under
        the usual ``max_trace`` cap, each tagged with the snapshot's
        ``worker.id``; note the *retained subset* near the cap does
        depend on merge order even though the drop counters do not.

        Span timings arrive pre-aggregated in the snapshot's
        ``span.*.seconds`` histograms, so merging the trace does not
        re-observe them.  Returns ``self`` for chaining.
        """
        for name, value in snapshot.counters.items():
            self.counter(name).inc(value)
        for name, value in snapshot.gauges.items():
            ts = snapshot.gauge_ts.get(name, 0.0)
            gauge = self.gauge(name)
            if _gauge_wins(ts, value, gauge.ts, gauge.value):
                gauge.value = float(value)
                gauge.ts = ts
        for name, stats in snapshot.histograms.items():
            histogram = self.histogram(name)
            histogram.count += int(stats["count"])  # type: ignore[call-overload]
            histogram.total += float(stats["total"])  # type: ignore[arg-type]
            histogram.sum_squares += float(stats["sum_squares"])  # type: ignore[arg-type]
            histogram.min = min(histogram.min, stats["min"])  # type: ignore[type-var]
            histogram.max = max(histogram.max, stats["max"])  # type: ignore[type-var]
            buckets = stats["buckets"]
            for index, count in enumerate(buckets):  # type: ignore[arg-type]
                histogram.buckets[index] += count
            exemplars = stats.get("exemplars")
            if exemplars:
                mine = histogram.exemplars
                if mine is None:
                    mine = histogram.exemplars = {}
                for index, exemplar in exemplars.items():  # type: ignore[union-attr]
                    index = int(index)
                    current = mine.get(index)
                    # Last-write-wins per bucket on the exemplar's
                    # timestamp, mirroring the gauge merge rule.
                    if current is None or exemplar[2] >= current[2]:
                        mine[index] = tuple(exemplar)  # type: ignore[assignment]
        for record in snapshot.spans:
            if len(self.trace) < self.max_trace:
                self.trace.append(record)
            else:
                self.counter("obs.spans.dropped").inc()
        for event in snapshot.events:
            if len(self.events) < self.max_trace:
                self.events.append(dict(event))
            else:
                self.counter("obs.events.dropped").inc()
        return self


class NullRegistry(MetricsRegistry):
    """The default registry: accepts everything, records nothing.

    All metric factories return shared do-nothing singletons and
    :meth:`span` returns the shared no-op span, so instrumentation left
    in place costs one attribute lookup and one no-op call.
    """

    _NULL_COUNTER = _NullCounter("null")
    _NULL_GAUGE = _NullGauge("null")
    _NULL_HISTOGRAM = _NullHistogram("null")

    def __bool__(self) -> bool:
        return False

    def counter(self, name: str) -> Counter:  # noqa: ARG002
        return self._NULL_COUNTER

    def gauge(self, name: str) -> Gauge:  # noqa: ARG002
        return self._NULL_GAUGE

    def histogram(self, name: str) -> Histogram:  # noqa: ARG002
        return self._NULL_HISTOGRAM

    def span(self, name: str, **attributes: object) -> NullSpan:  # noqa: ARG002
        return NULL_SPAN

    def event(self, name: str, **fields: object) -> None:  # noqa: ARG002
        pass

    def attach_diagnostics(
        self,
        round_trace: object | None = None,  # noqa: ARG002
        health: object | None = None,  # noqa: ARG002
        profiler: object | None = None,  # noqa: ARG002
        slo: object | None = None,  # noqa: ARG002
        fleet: object | None = None,  # noqa: ARG002
    ) -> "MetricsRegistry":
        """No-op: the shared null registry never carries diagnostics."""
        return self

    def record_span(
        self,
        name: str,  # noqa: ARG002
        *,
        start: float,  # noqa: ARG002
        seconds: float,  # noqa: ARG002
        path: str | None = None,  # noqa: ARG002
        trace: "object | None" = None,  # noqa: ARG002
        **attributes: object,  # noqa: ARG002
    ) -> None:
        """No-op: the null registry stores no trace, allocates nothing."""
        return None

    def merge(self, snapshot: RegistrySnapshot) -> "MetricsRegistry":  # noqa: ARG002
        """No-op: merging into the null registry records nothing."""
        return self


#: The process-wide default: instrumentation wired to this records nothing.
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently active registry (the null registry by default)."""
    return _active


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the previous."""
    global _active
    previous = _active
    _active = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_registry`: restores the previous on exit."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
