"""Nested-timing spans: experiment -> cell -> round -> slot-batch.

A :class:`Span` measures one timed region and knows its place in the
nesting: the registry keeps a stack of open spans, so a span opened
while another is active records a dotted path like
``experiment.cell.round``.  Completed spans become immutable
:class:`SpanRecord` rows in the registry's trace, and every span also
feeds a histogram named ``span.<path>.seconds`` — so exporters get both
the individual timeline and the aggregate timing distribution.

Spans are context managers::

    with registry.span("experiment"):
        with registry.span("cell", n=10_000):
            ...

The trace is bounded (:attr:`repro.obs.registry.MetricsRegistry.max_trace`);
once full, further records are dropped and counted in the
``obs.spans.dropped`` counter rather than growing without limit —
per-round spans in a million-round run must not become the new hot path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import TracebackType


@dataclass(frozen=True)
class SpanRecord:
    """One completed timed region.

    Attributes
    ----------
    name:
        The span's own label (``"cell"``).
    path:
        Dot-joined ancestry including the name (``"experiment.cell"``).
    start:
        ``time.perf_counter()`` at entry — a monotonic offset, useful
        for ordering and gaps, not a wall-clock date.
    seconds:
        Duration of the region.
    attributes:
        Free-form key/value context given at :meth:`Span.__init__`
        (population size, rounds, ...).
    """

    name: str
    path: str
    start: float
    seconds: float
    attributes: dict[str, object] = field(default_factory=dict)


class Span:
    """A timed region; created via ``registry.span(name, **attributes)``."""

    __slots__ = ("name", "attributes", "_registry", "_start", "path")

    def __init__(self, registry: object, name: str, **attributes: object):
        self.name = name
        self.attributes = attributes
        self._registry = registry
        self._start = 0.0
        self.path = name

    def __enter__(self) -> "Span":
        registry = self._registry
        stack = registry._span_stack  # type: ignore[attr-defined]
        if stack:
            self.path = f"{stack[-1].path}.{self.name}"
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        traceback: TracebackType | None,
    ) -> None:
        seconds = time.perf_counter() - self._start
        registry = self._registry
        stack = registry._span_stack  # type: ignore[attr-defined]
        if stack and stack[-1] is self:
            stack.pop()
        registry._finish_span(  # type: ignore[attr-defined]
            SpanRecord(
                name=self.name,
                path=self.path,
                start=self._start,
                seconds=seconds,
                attributes=dict(self.attributes),
            )
        )


class NullSpan:
    """Do-nothing span handed out by the null registry."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


#: Shared no-op span instance (spans carry no per-use state when null).
NULL_SPAN = NullSpan()
