"""Nested-timing spans: experiment -> cell -> round -> slot-batch.

A :class:`Span` measures one timed region and knows its place in the
nesting: the registry keeps a stack of open spans, so a span opened
while another is active records a dotted path like
``experiment.cell.round``.  Completed spans become immutable
:class:`SpanRecord` rows in the registry's trace, and every span also
feeds a histogram named ``span.<path>.seconds`` — so exporters get both
the individual timeline and the aggregate timing distribution.

Spans are context managers::

    with registry.span("experiment"):
        with registry.span("cell", n=10_000):
            ...

The trace is bounded (:attr:`repro.obs.registry.MetricsRegistry.max_trace`);
once full, further records are dropped and counted in the
``obs.spans.dropped`` counter rather than growing without limit —
per-round spans in a million-round run must not become the new hot path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import TracebackType

from .tracectx import current_trace, reset_trace_context, set_trace_context


@dataclass(frozen=True)
class SpanRecord:
    """One completed timed region.

    Attributes
    ----------
    name:
        The span's own label (``"cell"``).
    path:
        Dot-joined ancestry including the name (``"experiment.cell"``).
    start:
        ``time.perf_counter()`` at entry — a monotonic offset, useful
        for ordering and gaps, not a wall-clock date.
    seconds:
        Duration of the region.
    attributes:
        Free-form key/value context given at :meth:`Span.__init__`
        (population size, rounds, ...).
    trace_id / span_id / parent_id:
        Distributed-trace identity (see :mod:`repro.obs.tracectx`);
        all ``None`` when the span ran without an active
        :class:`~repro.obs.tracectx.TraceContext`.
    """

    name: str
    path: str
    start: float
    seconds: float
    attributes: dict[str, object] = field(default_factory=dict)
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None


class Span:
    """A timed region; created via ``registry.span(name, **attributes)``.

    When a :class:`~repro.obs.tracectx.TraceContext` is active on entry
    the span claims a child context (new span id, parent = enclosing
    span), installs it for the body, and stamps the resulting
    :class:`SpanRecord` with the ids — so nesting ``with`` spans builds
    the same parent/child tree in the trace ids as in the dotted paths.
    """

    __slots__ = (
        "name",
        "attributes",
        "_registry",
        "_start",
        "path",
        "trace_id",
        "span_id",
        "parent_id",
        "_token",
    )

    def __init__(self, registry: object, name: str, **attributes: object):
        self.name = name
        self.attributes = attributes
        self._registry = registry
        self._start = 0.0
        self.path = name
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self._token: object | None = None

    def __enter__(self) -> "Span":
        registry = self._registry
        stack = registry._span_stack  # type: ignore[attr-defined]
        if stack:
            self.path = f"{stack[-1].path}.{self.name}"
        stack.append(self)
        context = current_trace()
        if context is not None:
            mine = context.child()
            self.trace_id = mine.trace_id
            self.span_id = mine.span_id
            self.parent_id = mine.parent_id
            self._token = set_trace_context(mine)
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        traceback: TracebackType | None,
    ) -> None:
        seconds = time.perf_counter() - self._start
        registry = self._registry
        stack = registry._span_stack  # type: ignore[attr-defined]
        if stack and stack[-1] is self:
            stack.pop()
        if self._token is not None:
            reset_trace_context(self._token)
            self._token = None
        registry._finish_span(  # type: ignore[attr-defined]
            SpanRecord(
                name=self.name,
                path=self.path,
                start=self._start,
                seconds=seconds,
                attributes=dict(self.attributes),
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
            )
        )


class NullSpan:
    """Do-nothing span handed out by the null registry."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


#: Shared no-op span instance (spans carry no per-use state when null).
NULL_SPAN = NullSpan()
