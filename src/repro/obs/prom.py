"""Prometheus / OpenMetrics text exposition for a metrics registry.

:func:`render_openmetrics` turns a :class:`~repro.obs.registry.MetricsRegistry`
snapshot into the OpenMetrics text format — ``# TYPE`` metadata lines,
``_total``-suffixed counters, gauges, and histograms rendered as true
``histogram`` families (cumulative ``_bucket{le="..."}`` lines over the
registry's fixed log2 grid, ``_count`` / ``_sum``) plus ``_min`` /
``_max`` / ``_mean`` gauges — terminated by the mandatory ``# EOF``
marker.  The output is
what a Prometheus scrape endpoint or node-exporter textfile collector
expects, so a CLI run with ``--prom-out`` drops straight into an
existing monitoring stack.

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): the registry's dotted names map
``pet.rounds`` → ``pet_rounds``, prefixed with ``repro_``.  Non-finite
values use the spec's ``NaN`` / ``+Inf`` / ``-Inf`` literals.

Histogram buckets carry **exemplars** when the registry recorded any:
the OpenMetrics ``# {trace_id="..."} value timestamp`` suffix on a
``_bucket`` line, pointing each latency band at a concrete trace id
(see :mod:`repro.obs.tracectx`).

:func:`parse_openmetrics` is a small validating reader for the subset
this module emits — enough for tests (and smoke checks) to assert that
``--prom-out`` files are well-formed and carry the expected samples.
It understands the exemplar suffix (pass ``with_exemplars=True`` for
them).  :func:`histogram_buckets` inverts the cumulative ``_bucket``
samples back onto the registry's bucket array, and
:func:`registry_from_openmetrics` rebuilds a whole registry from parsed
output, so exporter output round-trips: parse → export → parse is the
identity on the emitted text.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

from ..errors import ConfigurationError
from .metrics import BUCKET_COUNT, bucket_upper_bounds
from .registry import MetricsRegistry

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: Prefix on every exported metric, namespacing them in a shared scrape.
METRIC_PREFIX = "repro_"


def sanitize_metric_name(name: str, prefix: str = METRIC_PREFIX) -> str:
    """Map a registry metric name onto the Prometheus name grammar."""
    candidate = prefix + _SANITIZE.sub("_", name)
    if not _NAME_OK.match(candidate):
        candidate = "_" + candidate
    return candidate


def _format_value(value: float) -> str:
    """One sample value, using the spec's non-finite literals."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _format_exemplar(
    exemplar: tuple[str, float, float] | list | None,
) -> str:
    """The OpenMetrics exemplar suffix for one bucket line ('' if none)."""
    if not exemplar:
        return ""
    trace_id, value, ts = exemplar
    return (
        f' # {{trace_id="{trace_id}"}}'
        f" {_format_value(float(value))} {_format_value(float(ts))}"
    )


def render_openmetrics(
    registry: MetricsRegistry, prefix: str = METRIC_PREFIX
) -> str:
    """Render the registry's metrics in OpenMetrics text format."""
    snapshot = registry.snapshot()
    lines: list[str] = []

    counters = snapshot["counters"]
    assert isinstance(counters, dict)
    for name, value in counters.items():
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(value)}")

    gauges = snapshot["gauges"]
    assert isinstance(gauges, dict)
    for name, value in gauges.items():
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    histograms = snapshot["histograms"]
    assert isinstance(histograms, dict)
    bounds = bucket_upper_bounds()
    for name, stats in histograms.items():
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        exemplars = stats.get("exemplars") or {}
        cumulative = 0
        for index, count in enumerate(stats.get("buckets") or ()):
            bound = bounds[index]
            if count == 0 or math.isinf(bound):
                continue
            cumulative += int(count)
            lines.append(
                f'{metric}_bucket{{le="{bound!r}"}} {cumulative}'
                + _format_exemplar(exemplars.get(index))
            )
        # The +Inf bucket is mandatory and must equal _count.
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {int(stats["count"])}'
            + _format_exemplar(exemplars.get(BUCKET_COUNT - 1))
        )
        lines.append(f"{metric}_count {_format_value(stats['count'])}")
        lines.append(f"{metric}_sum {_format_value(stats['total'])}")
        for suffix in ("min", "max", "mean"):
            aggregate = f"{metric}_{suffix}"
            lines.append(f"# TYPE {aggregate} gauge")
            lines.append(
                f"{aggregate} {_format_value(stats[suffix])}"
            )

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    dest: object, registry: MetricsRegistry, prefix: str = METRIC_PREFIX
) -> None:
    """Write :func:`render_openmetrics` output to a path or handle."""
    text = render_openmetrics(registry, prefix)
    if hasattr(dest, "write"):
        dest.write(text)  # type: ignore[attr-defined]
    else:
        with open(dest, "w", encoding="utf-8") as handle:  # type: ignore[arg-type]
            handle.write(text)


class PrometheusExporter:
    """Exporter-shaped wrapper over :func:`render_openmetrics`.

    Mirrors the call surface of the JSON exporters in
    :mod:`repro.obs.export` (``export(registry)``) so the CLI can treat
    all sinks uniformly.
    """

    def __init__(self, path: str, prefix: str = METRIC_PREFIX):
        self.path = path
        self.prefix = prefix

    def export(self, registry: MetricsRegistry) -> None:
        """Render the registry to ``self.path``, replacing the file."""
        write_openmetrics(self.path, registry, self.prefix)


def _parse_value(token: str, line_no: int) -> float:
    if token == "NaN":
        return math.nan
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    try:
        return float(token)
    except ValueError as exc:
        raise ConfigurationError(
            f"line {line_no}: invalid sample value {token!r}"
        ) from exc


#: An OpenMetrics exemplar suffix: ``{trace_id="..."} value [ts]``.
_EXEMPLAR_OK = re.compile(
    r'^\{trace_id="(?P<trace_id>[^"{}]*)"\}'
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>\S+))?$"
)


def _parse_exemplar(
    suffix: str, line_no: int
) -> tuple[str, float, float | None]:
    match = _EXEMPLAR_OK.match(suffix.strip())
    if match is None:
        raise ConfigurationError(
            f"line {line_no}: malformed exemplar {suffix!r}"
        )
    ts_token = match.group("ts")
    return (
        match.group("trace_id"),
        _parse_value(match.group("value"), line_no),
        _parse_value(ts_token, line_no) if ts_token else None,
    )


def parse_openmetrics(
    text: str, *, with_exemplars: bool = False
) -> tuple:
    """Parse (and validate) the subset of OpenMetrics this module emits.

    Returns ``(samples, types)``: sample name → value, and declared
    metric name → type.  With ``with_exemplars=True`` a third mapping is
    returned — bucket sample name → ``(trace_id, value, ts)`` for every
    ``# {trace_id="..."}`` exemplar suffix (the syntax
    :func:`render_openmetrics` emits; exemplars are accepted only on
    ``_bucket`` / ``_total`` samples, as in the spec).  Raises
    :class:`~repro.errors.ConfigurationError` on malformed lines, an
    undeclared sample's metric, or a missing ``# EOF`` terminator.
    """
    samples: dict[str, float] = {}
    types: dict[str, str] = {}
    exemplars: dict[str, tuple[str, float, float | None]] = {}
    saw_eof = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if saw_eof:
            raise ConfigurationError(
                f"line {line_no}: content after # EOF"
            )
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ConfigurationError(
                    f"line {line_no}: malformed TYPE line {raw!r}"
                )
            _, _, metric, kind = parts
            if not _NAME_OK.match(metric):
                raise ConfigurationError(
                    f"line {line_no}: invalid metric name {metric!r}"
                )
            if kind not in {"counter", "gauge", "summary", "histogram"}:
                raise ConfigurationError(
                    f"line {line_no}: unknown metric type {kind!r}"
                )
            types[metric] = kind
            continue
        if line.startswith("#"):
            # Other comments (HELP, UNIT) are legal; skip them.
            continue
        exemplar = None
        if " # " in line:
            line, _, suffix = line.partition(" # ")
            exemplar = _parse_exemplar(suffix, line_no)
        parts = line.split()
        if len(parts) != 2:
            raise ConfigurationError(
                f"line {line_no}: malformed sample line {raw!r}"
            )
        sample_name, token = parts
        bare_name = _split_labels(sample_name, line_no)
        if not _NAME_OK.match(bare_name):
            raise ConfigurationError(
                f"line {line_no}: invalid sample name {sample_name!r}"
            )
        if not _sample_declared(bare_name, types):
            raise ConfigurationError(
                f"line {line_no}: sample {sample_name!r} has no"
                " preceding # TYPE declaration"
            )
        if exemplar is not None:
            if not (
                bare_name.endswith("_bucket")
                or bare_name.endswith("_total")
            ):
                raise ConfigurationError(
                    f"line {line_no}: exemplar on non-bucket sample"
                    f" {sample_name!r}"
                )
            exemplars[sample_name] = exemplar
        samples[sample_name] = _parse_value(token, line_no)
    if not saw_eof:
        raise ConfigurationError("missing # EOF terminator")
    if with_exemplars:
        return samples, types, exemplars
    return samples, types


#: One or more ``key="value"`` pairs in braces; values may not contain
#: quotes or braces (true of everything this module emits).
_LABELS_OK = re.compile(
    r'^\{[a-zA-Z_][a-zA-Z0-9_]*="[^"{}]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"{}]*")*\}$'
)


def _split_labels(sample_name: str, line_no: int) -> str:
    """Strip (and validate) a sample name's ``{...}`` label block."""
    brace = sample_name.find("{")
    if brace == -1:
        return sample_name
    labels = sample_name[brace:]
    if not _LABELS_OK.match(labels):
        raise ConfigurationError(
            f"line {line_no}: malformed labels {labels!r}"
        )
    return sample_name[:brace]


def _sample_declared(
    sample_name: str, types: Mapping[str, str]
) -> bool:
    """Whether a (label-stripped) sample belongs to a declared family."""
    if sample_name in types:
        return True
    for suffix in ("_total", "_count", "_sum", "_bucket"):
        if sample_name.endswith(suffix):
            if sample_name[: -len(suffix)] in types:
                return True
    return False


_LE_VALUE = re.compile(r'le="([^"]+)"')


def histogram_buckets(
    samples: Mapping[str, float], metric: str
) -> list[int]:
    """Reconstruct a histogram's bucket array from parsed samples.

    Inverts the cumulative ``<metric>_bucket{le="..."}`` samples of
    :func:`render_openmetrics` back onto the registry's fixed log2
    bucket grid (:func:`repro.obs.metrics.bucket_upper_bounds`), so the
    result is elementwise-addable with other parsed or live bucket
    arrays — the same merge the registry itself performs.
    """
    bounds = bucket_upper_bounds()
    index_of = {bound: index for index, bound in enumerate(bounds)}
    prefix = f"{metric}_bucket{{"
    entries: list[tuple[float, float]] = []
    for sample_name, value in samples.items():
        if not sample_name.startswith(prefix):
            continue
        match = _LE_VALUE.search(sample_name[len(prefix) - 1 :])
        if match is None:
            raise ConfigurationError(
                f"bucket sample {sample_name!r} has no le label"
            )
        token = match.group(1)
        upper = math.inf if token == "+Inf" else float(token)
        entries.append((upper, value))
    entries.sort()
    buckets = [0] * BUCKET_COUNT
    previous = 0.0
    for upper, cumulative in entries:
        index = index_of.get(upper)
        if index is None:
            raise ConfigurationError(
                f"bucket bound {upper!r} is not on the registry grid"
            )
        buckets[index] = int(cumulative - previous)
        previous = cumulative
    return buckets


def registry_from_openmetrics(
    text: str, prefix: str = METRIC_PREFIX
) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from exporter output.

    The inverse of :func:`render_openmetrics` up to what the text
    format carries: counters, gauges, histogram buckets / count / sum /
    extrema, and bucket exemplars all round-trip (``sum_squares`` is
    not exported, so reconstructed ``std`` is meaningless).  Derived
    ``_min`` / ``_max`` / ``_mean`` gauges fold back into their
    histogram instead of becoming standalone gauges.  Metric names keep
    their sanitized (underscored) form minus ``prefix`` — re-rendering
    the result parses back to the identical samples, types, and
    exemplars.
    """
    samples, types, exemplars = parse_openmetrics(
        text, with_exemplars=True
    )
    registry = MetricsRegistry()
    histogram_names = {
        metric for metric, kind in types.items()
        if kind == "histogram"
    }
    derived = {
        f"{metric}_{suffix}"
        for metric in histogram_names
        for suffix in ("min", "max", "mean")
    }

    def _registry_name(metric: str) -> str:
        if prefix and metric.startswith(prefix):
            return metric[len(prefix):]
        return metric

    for metric, kind in types.items():
        if kind == "counter":
            total = samples.get(f"{metric}_total")
            if total is not None:
                registry.counter(_registry_name(metric)).value = total
        elif kind == "gauge":
            if metric in derived:
                continue
            value = samples.get(metric)
            if value is not None:
                gauge = registry.gauge(_registry_name(metric))
                gauge.value = float(value)
        elif kind == "histogram":
            histogram = registry.histogram(_registry_name(metric))
            histogram.buckets = histogram_buckets(samples, metric)
            histogram.count = int(samples.get(f"{metric}_count", 0))
            histogram.total = float(samples.get(f"{metric}_sum", 0.0))
            if f"{metric}_min" in samples:
                histogram.min = samples[f"{metric}_min"]
            if f"{metric}_max" in samples:
                histogram.max = samples[f"{metric}_max"]
            bounds = bucket_upper_bounds()
            index_of = {bound: i for i, bound in enumerate(bounds)}
            bucket_prefix = f"{metric}_bucket{{"
            for sample_name, exemplar in exemplars.items():
                if not sample_name.startswith(bucket_prefix):
                    continue
                match = _LE_VALUE.search(sample_name)
                if match is None:
                    continue
                token = match.group(1)
                upper = math.inf if token == "+Inf" else float(token)
                index = index_of.get(upper)
                if index is None:
                    raise ConfigurationError(
                        f"exemplar bound {token!r} is not on the grid"
                    )
                trace_id, value, ts = exemplar
                if histogram.exemplars is None:
                    histogram.exemplars = {}
                histogram.exemplars[index] = (
                    trace_id,
                    value,
                    ts if ts is not None else 0.0,
                )
    return registry
