"""Propagatable trace context: W3C-style trace/span identifiers.

A :class:`TraceContext` names one position in a distributed trace: the
128-bit ``trace_id`` shared by every span of one logical request, the
64-bit ``span_id`` of the current region, and the ``parent_id`` linking
it upward.  Contexts are immutable; :meth:`TraceContext.child` derives
the next hop.  The *current* context lives in a :mod:`contextvars`
variable, so it follows asyncio tasks automatically and crosses process
boundaries explicitly via :meth:`to_dict` / :meth:`from_dict` (the sweep
pool and the serve tier both serialize it that way).

Identifiers come from :func:`os.urandom`, **never** from
``random`` / numpy: instrumentation must not perturb the seeded RNG
streams that the bit-identity contracts (batched engines, serve fusion)
are built on.

Usage::

    ctx = start_trace()                # new root context, now current
    with use_trace_context(ctx.child()):
        ...                            # spans opened here are children

:class:`~repro.obs.span.Span` reads :func:`current_trace` on entry and
stamps its :class:`~repro.obs.span.SpanRecord` with the ids, so any code
already running under ``registry.span(...)`` participates in tracing
without modification.  When no context is active, spans record ``None``
ids and pay a single contextvar read.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Mapping


class _EntropyPool:
    """Buffered ``os.urandom``: one syscall per ~256 identifiers.

    Ids are minted on the serve tier's per-request hot path (several
    per request), where a syscall each is measurable.  The pool is
    reset in forked children (``os.register_at_fork``) so worker
    processes never replay the parent's identifier stream.
    """

    _REFILL_BYTES = 4096

    __slots__ = ("_buffer", "_offset", "_lock")

    def __init__(self) -> None:
        self._buffer = b""
        self._offset = 0
        self._lock = threading.Lock()

    def take(self, nbytes: int) -> bytes:
        with self._lock:
            offset = self._offset
            if offset + nbytes > len(self._buffer):
                self._buffer = os.urandom(self._REFILL_BYTES)
                offset = 0
            self._offset = offset + nbytes
            return self._buffer[offset : self._offset]


_pool = _EntropyPool()


def _reset_pool() -> None:
    global _pool
    _pool = _EntropyPool()


if hasattr(os, "register_at_fork"):  # POSIX only
    os.register_at_fork(after_in_child=_reset_pool)


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars."""
    return _pool.take(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex chars."""
    return _pool.take(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """One hop of a distributed trace (immutable).

    Attributes
    ----------
    trace_id:
        128-bit id (32 hex chars) shared by every span in the trace.
    span_id:
        64-bit id (16 hex chars) of the current span/region.
    parent_id:
        The ``span_id`` of the enclosing region, or ``None`` at the
        root.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def root(cls) -> "TraceContext":
        """A fresh root context (new trace id, no parent)."""
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self) -> "TraceContext":
        """The context for a region nested under this one."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_id=self.span_id,
        )

    def to_dict(self) -> dict[str, str | None]:
        """Plain-dict form for pickling / JSON across processes."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, object] | None
    ) -> "TraceContext | None":
        """Inverse of :meth:`to_dict`; ``None``/empty maps to ``None``."""
        if not data:
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not trace_id or not span_id:
            return None
        parent = data.get("parent_id")
        return cls(
            trace_id=str(trace_id),
            span_id=str(span_id),
            parent_id=str(parent) if parent else None,
        )


#: The task-local current context (``None`` = tracing inactive).
_current: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)


def current_trace() -> TraceContext | None:
    """The active :class:`TraceContext`, or ``None`` when untraced."""
    return _current.get()


def set_trace_context(ctx: TraceContext | None) -> object:
    """Install ``ctx`` as current; returns a token for ``reset``."""
    return _current.set(ctx)


def reset_trace_context(token: object) -> None:
    """Undo a :func:`set_trace_context` (token from that call)."""
    _current.reset(token)  # type: ignore[arg-type]


@contextmanager
def use_trace_context(
    ctx: TraceContext | None,
) -> Iterator[TraceContext | None]:
    """Scoped :func:`set_trace_context`: restores the previous on exit."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


def start_trace() -> TraceContext:
    """Begin a new root trace and make it current.

    Unlike :func:`use_trace_context` this is not scoped — it simply
    replaces the current context.  Prefer the context manager unless
    the trace genuinely spans the rest of the task's lifetime.
    """
    ctx = TraceContext.root()
    _current.set(ctx)
    return ctx
