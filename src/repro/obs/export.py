"""Exporters: turn a registry's contents into something consumable.

Three built-ins, each a single ``export(registry)`` call:

* :class:`InMemoryExporter` — keeps structured records on the object;
  the natural choice for tests and programmatic post-processing.
* :class:`JsonLinesExporter` — one JSON object per line, ``kind``-tagged
  (``counter`` / ``gauge`` / ``histogram`` / ``span`` / ``event``),
  appended to a file or file-like object.  This is what the CLI's
  ``--metrics-out PATH`` writes.
* :class:`ConsoleSummaryExporter` — a compact human table of counters,
  gauges, and histogram summaries on stdout (or any stream).

A custom exporter is anything with ``export(registry)``; build it on
:meth:`repro.obs.registry.MetricsRegistry.snapshot`, ``registry.trace``
and ``registry.events`` (see docs/OBSERVABILITY.md for a worked
example).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict
from typing import IO, Iterable, Iterator, Protocol

from .registry import MetricsRegistry


class Exporter(Protocol):
    """The exporter interface: consume one registry, produce output."""

    def export(self, registry: MetricsRegistry) -> None:
        """Emit everything currently recorded in ``registry``."""
        ...


def iter_records(
    registry: MetricsRegistry,
) -> Iterator[dict[str, object]]:
    """Flatten a registry into ``kind``-tagged plain-dict records.

    The shared record stream behind the in-memory and JSON-lines
    exporters; order is counters, gauges, histograms (each
    name-sorted), then spans and events in completion order.
    """
    snapshot = registry.snapshot()
    for name, value in snapshot["counters"].items():  # type: ignore[union-attr]
        yield {"kind": "counter", "name": name, "value": value}
    for name, value in snapshot["gauges"].items():  # type: ignore[union-attr]
        yield {"kind": "gauge", "name": name, "value": value}
    for name, stats in snapshot["histograms"].items():  # type: ignore[union-attr]
        yield {"kind": "histogram", "name": name, **stats}
    for record in registry.trace:
        yield {"kind": "span", **asdict(record)}
    for event in registry.events:
        yield {"kind": "event", **event}


class InMemoryExporter:
    """Collects the record stream on ``self.records``."""

    def __init__(self) -> None:
        self.records: list[dict[str, object]] = []

    def export(self, registry: MetricsRegistry) -> None:
        self.records.extend(iter_records(registry))

    def of_kind(self, kind: str) -> list[dict[str, object]]:
        """The collected records of one ``kind``, in export order."""
        return [r for r in self.records if r["kind"] == kind]


class JsonLinesExporter:
    """Writes the record stream as JSON lines to a path or stream."""

    def __init__(self, destination: str | IO[str]):
        self._destination = destination

    def export(self, registry: MetricsRegistry) -> None:
        records = iter_records(registry)
        if isinstance(self._destination, str):
            with open(self._destination, "a", encoding="utf-8") as sink:
                _write_lines(sink, records)
        else:
            _write_lines(self._destination, records)


def _json_safe(value: object) -> object:
    """NaN/inf have no JSON spelling; export them as null."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _write_lines(
    sink: IO[str], records: Iterable[dict[str, object]]
) -> None:
    for record in records:
        safe = {key: _json_safe(value) for key, value in record.items()}
        sink.write(json.dumps(safe, default=str) + "\n")


class ConsoleSummaryExporter:
    """Prints a human-readable end-of-run summary."""

    def __init__(self, stream: IO[str] | None = None):
        self._stream = stream

    def export(self, registry: MetricsRegistry) -> None:
        print(self.render(registry), file=self._stream)

    def render(self, registry: MetricsRegistry) -> str:
        """The summary as a string (exposed for tests)."""
        snapshot = registry.snapshot()
        lines = ["metrics summary", "==============="]
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        histograms = snapshot["histograms"]
        if counters:
            lines.append("counters:")
            width = max(len(name) for name in counters)  # type: ignore[arg-type]
            for name, value in counters.items():  # type: ignore[union-attr]
                lines.append(f"  {name:<{width}}  {value:,}")
        if gauges:
            lines.append("gauges:")
            width = max(len(name) for name in gauges)  # type: ignore[arg-type]
            for name, value in gauges.items():  # type: ignore[union-attr]
                lines.append(f"  {name:<{width}}  {value:,.3f}")
        if histograms:
            lines.append(
                "histograms (count / mean / std / min / max):"
            )
            width = max(len(name) for name in histograms)  # type: ignore[arg-type]
            for name, stats in histograms.items():  # type: ignore[union-attr]
                lines.append(
                    f"  {name:<{width}}  {stats['count']:,} / "
                    f"{stats['mean']:.4g} / {stats['std']:.4g} / "
                    f"{stats['min']:.4g} / {stats['max']:.4g}"
                )
        if not (counters or gauges or histograms):
            lines.append("(no metrics recorded)")
        return "\n".join(lines)
