"""Exporters: turn a registry's contents into something consumable.

Three built-ins, each a single ``export(registry)`` call:

* :class:`InMemoryExporter` — keeps structured records on the object;
  the natural choice for tests and programmatic post-processing.
* :class:`JsonLinesExporter` — one JSON object per line, ``kind``-tagged
  (``counter`` / ``gauge`` / ``histogram`` / ``span`` / ``event``, plus
  ``snapshot`` / ``heartbeat`` for the cross-process records), appended
  to a file or file-like object.  This is what the CLI's
  ``--metrics-out PATH`` writes.
* :class:`ConsoleSummaryExporter` — a compact human table of counters,
  gauges, and histogram summaries on stdout (or any stream).

Every record in the stream carries the schema triplet ``type`` (alias
of ``kind``), ``name``, and ``ts`` (UNIX seconds stamped at export
time), so downstream log pipelines can route records without knowing
the per-kind payloads.

A custom exporter is anything with ``export(registry)``; build it on
:meth:`repro.obs.registry.MetricsRegistry.snapshot`, ``registry.trace``
and ``registry.events`` (see docs/OBSERVABILITY.md for a worked
example).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import asdict
from typing import IO, Iterable, Iterator, Protocol

from .registry import MetricsRegistry, RegistrySnapshot


class Exporter(Protocol):
    """The exporter interface: consume one registry, produce output."""

    def export(self, registry: MetricsRegistry) -> None:
        """Emit everything currently recorded in ``registry``."""
        ...


def iter_records(
    registry: MetricsRegistry,
) -> Iterator[dict[str, object]]:
    """Flatten a registry into ``kind``-tagged plain-dict records.

    The shared record stream behind the in-memory and JSON-lines
    exporters; order is counters, gauges, histograms (each
    name-sorted), then spans and events in completion order.  All
    records of one export share a single ``ts`` stamp (the export is a
    snapshot, not a replay of when each value was written).
    """
    ts = time.time()

    def _stamp(
        kind: str, name: object, payload: dict[str, object]
    ) -> dict[str, object]:
        return {
            "kind": kind,
            "type": kind,
            "name": name,
            "ts": ts,
            **payload,
        }

    snapshot = registry.snapshot()
    for name, value in snapshot["counters"].items():  # type: ignore[union-attr]
        yield _stamp("counter", name, {"value": value})
    for name, value in snapshot["gauges"].items():  # type: ignore[union-attr]
        yield _stamp("gauge", name, {"value": value})
    for name, stats in snapshot["histograms"].items():  # type: ignore[union-attr]
        yield _stamp("histogram", name, dict(stats))
    for record in registry.trace:
        span = asdict(record)
        yield _stamp("span", span["path"], span)
    for event in registry.events:
        yield _stamp("event", event.get("name", ""), dict(event))


def snapshot_record(
    snapshot: RegistrySnapshot, ts: float | None = None
) -> dict[str, object]:
    """One ``kind="snapshot"`` record for a worker registry snapshot.

    Carries the full :meth:`~RegistrySnapshot.to_dict` payload under the
    same ``type`` / ``name`` / ``ts`` routing triplet as every other
    record (``name`` is the snapshot's worker id, empty for the parent).
    """
    return {
        "kind": "snapshot",
        "type": "snapshot",
        "name": snapshot.worker_id or "",
        "ts": time.time() if ts is None else ts,
        **snapshot.to_dict(),
    }


def heartbeat_record(
    heartbeat: object, ts: float | None = None
) -> dict[str, object]:
    """One ``kind="heartbeat"`` record for a worker progress beat.

    Accepts a :class:`repro.obs.progress.Heartbeat` (any dataclass with
    its fields works); the record's ``ts`` is the beat's own emission
    time when it carries one.
    """
    payload = asdict(heartbeat)  # type: ignore[call-overload]
    beat_ts = payload.get("ts") or None
    if ts is None:
        ts = beat_ts if beat_ts else time.time()
    return {
        "kind": "heartbeat",
        "type": "heartbeat",
        "name": payload.get("worker_id", ""),
        "ts": ts,
        **payload,
    }


def write_span_trace(
    destination: str | IO[str], registry: MetricsRegistry
) -> int:
    """Append the registry's span trace as JSON lines; returns count.

    A span-only export (``kind="span"`` records, same schema as the
    full :class:`JsonLinesExporter` stream) sized for trace artifacts:
    ``python -m repro traceview --trace-file`` reads exactly this
    shape, as does the CI trace upload.
    """
    ts = time.time()
    records = []
    for record in registry.trace:
        span = asdict(record)
        records.append(
            {
                "kind": "span",
                "type": "span",
                "name": span["path"],
                "ts": ts,
                **span,
            }
        )
    if hasattr(destination, "write"):
        _write_lines(destination, records)  # type: ignore[arg-type]
    else:
        with open(destination, "a", encoding="utf-8") as handle:  # type: ignore[arg-type]
            _write_lines(handle, records)
    return len(records)


class InMemoryExporter:
    """Collects the record stream on ``self.records``."""

    def __init__(self) -> None:
        self.records: list[dict[str, object]] = []

    def export(self, registry: MetricsRegistry) -> None:
        self.records.extend(iter_records(registry))

    def export_snapshot(self, snapshot: RegistrySnapshot) -> None:
        """Collect one worker snapshot as a ``snapshot`` record."""
        self.records.append(snapshot_record(snapshot))

    def export_heartbeats(self, heartbeats: Iterable[object]) -> None:
        """Collect progress beats as ``heartbeat`` records."""
        self.records.extend(
            heartbeat_record(beat) for beat in heartbeats
        )

    def of_kind(self, kind: str) -> list[dict[str, object]]:
        """The collected records of one ``kind``, in export order."""
        return [r for r in self.records if r["kind"] == kind]


class JsonLinesExporter:
    """Writes the record stream as JSON lines to a path or stream.

    Given a path, the file is opened lazily in append mode on first
    :meth:`export` and kept open until :meth:`close`; the class is also
    a context manager, so the natural shape is::

        with JsonLinesExporter("metrics.jsonl") as exporter:
            ...
            exporter.export(registry)

    Given a file-like object, the exporter writes to it but never
    closes it (the caller owns its lifecycle).
    """

    def __init__(self, destination: str | IO[str]):
        self._destination = destination
        self._handle: IO[str] | None = None
        self._owns_handle = isinstance(destination, str)

    def _sink(self) -> IO[str]:
        if self._handle is None:
            if isinstance(self._destination, str):
                self._handle = open(
                    self._destination, "a", encoding="utf-8"
                )
            else:
                self._handle = self._destination
        return self._handle

    def export(self, registry: MetricsRegistry) -> None:
        sink = self._sink()
        _write_lines(sink, iter_records(registry))
        self.flush()

    def export_snapshot(self, snapshot: RegistrySnapshot) -> None:
        """Append one worker snapshot as a ``snapshot`` record."""
        _write_lines(self._sink(), [snapshot_record(snapshot)])
        self.flush()

    def export_heartbeats(self, heartbeats: Iterable[object]) -> None:
        """Append progress beats as ``heartbeat`` records."""
        _write_lines(
            self._sink(),
            (heartbeat_record(beat) for beat in heartbeats),
        )
        self.flush()

    def flush(self) -> None:
        """Flush the underlying stream (no-op before the first write)."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Flush and, if this exporter opened the file, close it."""
        if self._handle is None:
            return
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "JsonLinesExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: JSON spellings of the non-finite floats (JSON itself has none).
_NONFINITE = {
    math.inf: "Infinity",
    -math.inf: "-Infinity",
}


def _json_safe(value: object) -> object:
    """Map non-finite floats onto round-trippable string sentinels.

    ``json.dumps`` would emit bare ``NaN`` / ``Infinity`` — *invalid*
    JSON that strict parsers reject — so non-finite floats are encoded
    as the strings ``"NaN"`` / ``"Infinity"`` / ``"-Infinity"``
    instead (:func:`decode_value` restores them).  Containers are
    converted recursively.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return _NONFINITE.get(value, "NaN")
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def decode_value(value: object) -> object:
    """Inverse of :func:`_json_safe` for scalar fields."""
    if value == "NaN":
        return math.nan
    if value == "Infinity":
        return math.inf
    if value == "-Infinity":
        return -math.inf
    return value


def _write_lines(
    sink: IO[str], records: Iterable[dict[str, object]]
) -> None:
    for record in records:
        safe = {key: _json_safe(value) for key, value in record.items()}
        sink.write(json.dumps(safe, default=str) + "\n")


class ConsoleSummaryExporter:
    """Prints a human-readable end-of-run summary."""

    def __init__(self, stream: IO[str] | None = None):
        self._stream = stream

    def export(self, registry: MetricsRegistry) -> None:
        print(self.render(registry), file=self._stream)

    def render(self, registry: MetricsRegistry) -> str:
        """The summary as a string (exposed for tests)."""
        snapshot = registry.snapshot()
        lines = ["metrics summary", "==============="]
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        histograms = snapshot["histograms"]
        if counters:
            lines.append("counters:")
            width = max(len(name) for name in counters)  # type: ignore[arg-type]
            for name, value in counters.items():  # type: ignore[union-attr]
                lines.append(f"  {name:<{width}}  {value:,}")
        if gauges:
            lines.append("gauges:")
            width = max(len(name) for name in gauges)  # type: ignore[arg-type]
            for name, value in gauges.items():  # type: ignore[union-attr]
                lines.append(f"  {name:<{width}}  {value:,.3f}")
        if histograms:
            lines.append(
                "histograms (count / mean / std / min / max):"
            )
            width = max(len(name) for name in histograms)  # type: ignore[arg-type]
            for name, stats in histograms.items():  # type: ignore[union-attr]
                lines.append(
                    f"  {name:<{width}}  {stats['count']:,} / "
                    f"{stats['mean']:.4g} / {stats['std']:.4g} / "
                    f"{stats['min']:.4g} / {stats['max']:.4g}"
                )
        if not (counters or gauges or histograms):
            lines.append("(no metrics recorded)")
        return "\n".join(lines)
