"""Terminal waterfall renderer for one distributed trace.

``python -m repro traceview`` turns the spans of a single trace id into
an indented waterfall: each line is one span, indented by its
parent/child depth, with a bar positioned on the trace's time axis and
the span's duration and key attributes alongside::

    trace 9f0c...e1 · 5 spans · 13.42ms
    serve.request            |=======================| 13.42ms status=ok
      admission              |=|                        0.03ms
      queue.wait              |====|                    2.11ms
      kernel                       |==============|     8.90ms backend=numpy
      respond                                    |==|   0.41ms

Spans come from either

* a JSON-lines trace file (``--trace-file``): ``kind == "span"``
  records as written by :class:`repro.obs.export.JsonLinesExporter` or
  :func:`repro.obs.export.write_span_trace`; or
* a live scrape endpoint (``--url``): the ``/traces/<id>`` route of
  :class:`repro.obs.http.MetricsServer`.

Without an explicit trace id the renderer picks the trace with the
most spans in the file (handy straight after a loadgen run); ``--list``
enumerates what is available instead of rendering.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request
from collections import Counter
from typing import IO, Iterable

#: Attribute keys surfaced inline on the waterfall (order = priority).
_SHOWN_ATTRIBUTES = (
    "status",
    "rung",
    "reason",
    "backend",
    "group_size",
    "group_kind",
    "chunk_elements",
    "protocol",
    "tenant",
    "n",
    "rounds",
    "worker.id",
)


def load_trace_file(path: str) -> list[dict]:
    """Every ``kind == "span"`` record in a JSON-lines trace file."""
    spans: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("kind") == "span":
                spans.append(record)
    return spans


def fetch_trace(url: str, trace_id: str) -> list[dict]:
    """Spans of one trace from a live ``/traces/<id>`` endpoint."""
    endpoint = f"{url.rstrip('/')}/traces/{trace_id}"
    with urllib.request.urlopen(endpoint, timeout=10) as response:
        payload = json.loads(response.read().decode("utf-8"))
    return list(payload.get("spans", ()))


def available_traces(spans: Iterable[dict]) -> list[tuple[str, int]]:
    """``(trace_id, span_count)`` pairs, most spans first."""
    counts: Counter[str] = Counter()
    for span in spans:
        trace_id = span.get("trace_id")
        if trace_id:
            counts[str(trace_id)] += 1
    return counts.most_common()


def _attribute_suffix(span: dict) -> str:
    attributes = span.get("attributes") or {}
    shown = [
        f"{key}={attributes[key]}"
        for key in _SHOWN_ATTRIBUTES
        if key in attributes
    ]
    return (" " + " ".join(shown)) if shown else ""


def _order_tree(spans: list[dict]) -> list[tuple[dict, int]]:
    """Spans in waterfall order: depth-first by parent, then start."""
    spans = sorted(spans, key=lambda span: float(span.get("start", 0.0)))
    by_id = {
        span.get("span_id"): span
        for span in spans
        if span.get("span_id")
    }
    children: dict[object, list[dict]] = {}
    roots: list[dict] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    ordered: list[tuple[dict, int]] = []

    def _walk(span: dict, depth: int) -> None:
        ordered.append((span, depth))
        for child in children.get(span.get("span_id"), ()):  # type: ignore[arg-type]
            _walk(child, depth + 1)

    for root in roots:
        _walk(root, 0)
    return ordered


def render_waterfall(
    spans: list[dict], width: int = 100
) -> str:
    """The waterfall for one trace's spans as a printable string."""
    if not spans:
        return "(no spans)"
    ordered = _order_tree(spans)
    base = min(float(span.get("start", 0.0)) for span, _ in ordered)
    end = max(
        float(span.get("start", 0.0)) + float(span.get("seconds", 0.0))
        for span, _ in ordered
    )
    total = max(end - base, 1e-9)
    trace_id = next(
        (
            str(span["trace_id"])
            for span, _ in ordered
            if span.get("trace_id")
        ),
        "untraced",
    )
    label_width = min(
        max(
            len("  " * depth + str(span.get("name", span.get("path", "?"))))
            for span, depth in ordered
        )
        + 2,
        48,
    )
    bar_width = max(width - label_width - 30, 20)
    lines = [
        f"trace {trace_id} · {len(ordered)} spans"
        f" · {total * 1e3:.2f}ms"
    ]
    for span, depth in ordered:
        name = str(span.get("name", span.get("path", "?")))
        label = ("  " * depth + name)[: label_width - 1]
        start = float(span.get("start", 0.0)) - base
        seconds = float(span.get("seconds", 0.0))
        left = int(round(start / total * bar_width))
        length = max(int(round(seconds / total * bar_width)), 1)
        left = min(left, bar_width - 1)
        length = min(length, bar_width - left)
        bar = " " * left + "|" + "=" * max(length - 2, 0) + "|"
        lines.append(
            f"{label:<{label_width}}{bar:<{bar_width + 2}}"
            f"{seconds * 1e3:9.2f}ms{_attribute_suffix(span)}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro traceview``."""
    parser = argparse.ArgumentParser(
        prog="repro traceview",
        description=(
            "Render a terminal waterfall for one trace id from a"
            " JSON-lines trace file or a live metrics endpoint."
        ),
    )
    parser.add_argument(
        "trace_id",
        nargs="?",
        help=(
            "trace id to render (default: the file's largest trace;"
            " required with --url)"
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--trace-file",
        help="JSON-lines file holding span records",
    )
    source.add_argument(
        "--url",
        help="base URL of a live metrics endpoint (e.g."
        " http://127.0.0.1:9464)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list trace ids in the file instead of rendering",
    )
    parser.add_argument(
        "--width",
        type=int,
        default=100,
        help="render width in columns (default 100)",
    )
    args = parser.parse_args(argv)
    out: IO[str] = sys.stdout

    if args.url:
        if args.list:
            parser.error("--list requires --trace-file")
        if not args.trace_id:
            parser.error("a trace id is required with --url")
        try:
            spans = fetch_trace(args.url, args.trace_id)
        except Exception as exc:
            print(f"error: failed to fetch trace: {exc}", file=sys.stderr)
            return 1
        if not spans:
            print(
                f"error: trace {args.trace_id!r} not found",
                file=sys.stderr,
            )
            return 1
        print(render_waterfall(spans, width=args.width), file=out)
        return 0

    spans = load_trace_file(args.trace_file)
    traces = available_traces(spans)
    if args.list:
        if not traces:
            print("(no traced spans in file)", file=out)
            return 1
        for trace_id, count in traces:
            print(f"{trace_id}  {count} spans", file=out)
        return 0
    trace_id = args.trace_id
    if trace_id is None:
        if not traces:
            print(
                "error: no traced spans in file", file=sys.stderr
            )
            return 1
        trace_id = traces[0][0]
    selected = [
        span for span in spans if span.get("trace_id") == trace_id
    ]
    if not selected:
        print(
            f"error: trace {trace_id!r} not found in"
            f" {args.trace_file}",
            file=sys.stderr,
        )
        return 1
    print(render_waterfall(selected, width=args.width), file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
