"""Online estimator-health diagnostics.

:class:`EstimatorHealth` answers, live, the questions an operator of a
production PET deployment asks about a running estimation:

* **What is the estimate right now?** — a streaming ``n_hat`` over
  every observed gray depth (Eq. 14 on the running mean).
* **How tight is it?** — the theory-derived confidence-interval
  half-width from the paper's accuracy analysis: with ``m`` rounds the
  averaged depth has standard error ``SIGMA_H / sqrt(m)`` (Eq. 15-16),
  so to first order ``n_hat`` sits within
  ``n_hat * ln2 * SIGMA_H * c(delta) / sqrt(m)`` of the truth with
  probability ``1 - delta`` (``c`` from
  :func:`repro.core.accuracy.confidence_scale`, Eq. 17).
* **When will it converge?** — a rounds-remaining countdown against
  the Eq. 20 round budget ``m(epsilon, delta)``
  (:func:`repro.core.accuracy.rounds_required`).
* **Is this round anomalous?** — per-round outlier flags via the
  two-sided tail probability of the exact gray-depth law
  (:mod:`repro.analysis.mellin`), evaluated at the current running
  estimate (tables are cached and rebuilt only when ``n_hat`` moves).
* **Did the population drift?** — per-epoch estimates are fed to the
  :class:`repro.obs.monitor.CardinalityMonitor` EWMA detector, whose
  alerts land in the obs event stream as ``monitor.drift`` events.

Everything is recorded against a registry (gauges ``diag.n_hat``,
``diag.ci_halfwidth``, ``diag.rounds_remaining``; counters
``diag.rounds``, ``diag.outlier_rounds``; ``diag.outlier`` events), so
the monitor's state is visible through every exporter — including the
Prometheus one — without extra plumbing.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

import numpy as np

from ..config import AccuracyRequirement, DEFAULT_TREE_HEIGHT
from ..core.accuracy import PHI, SIGMA_H, confidence_scale, rounds_required
from ..errors import ConfigurationError
from .monitor import CardinalityMonitor
from .registry import MetricsRegistry, get_registry
from .trace import DEFAULT_TAIL_THRESHOLD, depth_tail_tables

#: Rounds observed before outlier flagging arms (the running ``n_hat``
#: is too noisy to define a meaningful depth law earlier).
DEFAULT_WARMUP_ROUNDS = 16

#: Relative movement of ``n_hat`` that triggers an outlier-table rebuild.
_TABLE_REBUILD_RATIO = 1.25

#: ``diag.outlier`` events emitted per ingested batch.  The counter
#: still counts every flagged round; the cap only bounds the Python
#: event loop when a whole batch is anomalous (e.g. the population
#: jumped between epochs).
_MAX_OUTLIER_EVENTS_PER_BATCH = 16


@dataclass(frozen=True)
class HealthReport:
    """Point-in-time snapshot of an :class:`EstimatorHealth` monitor."""

    rounds_observed: int
    n_hat: float
    mean_depth: float
    epsilon: float
    delta: float
    required_rounds: int
    rounds_remaining: int
    converged: bool
    ci_halfwidth: float
    ci_lower: float
    ci_upper: float
    outlier_rounds: int
    drift_alerts: int
    epochs_observed: int

    def to_dict(self) -> dict[str, object]:
        """Plain-dict view for JSON sinks and reports."""
        return asdict(self)


class EstimatorHealth:
    """Streaming convergence/outlier/drift monitor for PET estimations.

    Parameters
    ----------
    tree_height:
        ``H`` of the monitored estimation (sets the depth-law support).
    epsilon, delta:
        The accuracy contract the countdown and CI are computed
        against (paper defaults 5 % / 1 %).
    registry:
        Registry gauges/counters/events are recorded against; defaults
        to the process-wide active registry at construction time.
    outlier_tail:
        Two-sided tail-probability cutoff for flagging a round's depth
        as anomalous.
    warmup_rounds:
        Observed rounds before outlier flagging arms.
    """

    def __init__(
        self,
        tree_height: int = DEFAULT_TREE_HEIGHT,
        epsilon: float = 0.05,
        delta: float = 0.01,
        registry: MetricsRegistry | None = None,
        outlier_tail: float = DEFAULT_TAIL_THRESHOLD,
        warmup_rounds: int = DEFAULT_WARMUP_ROUNDS,
    ):
        if not 1 <= tree_height <= 64:
            raise ConfigurationError(
                f"tree_height must lie in [1, 64], got {tree_height}"
            )
        # Validates epsilon/delta ranges as a side effect.
        self.requirement = AccuracyRequirement(
            epsilon=epsilon, delta=delta
        )
        if warmup_rounds < 1:
            raise ConfigurationError(
                f"warmup_rounds must be >= 1, got {warmup_rounds}"
            )
        self.tree_height = tree_height
        self.required_rounds = rounds_required(epsilon, delta)
        self.outlier_tail = outlier_tail
        self.warmup_rounds = warmup_rounds
        self._scale = confidence_scale(delta)
        self._registry = (
            registry if registry is not None else get_registry()
        )
        self._count = 0
        self._depth_total = 0.0
        self._outlier_rounds = 0
        self._drift_alerts = 0
        self._epochs = 0
        self._monitor: CardinalityMonitor | None = None
        self._monitor_rounds: int | None = None
        self._table_n: int | None = None
        self._outlier_table: np.ndarray | None = None
        self._tail_table: np.ndarray | None = None

    # -- streaming state ---------------------------------------------------

    @property
    def rounds_observed(self) -> int:
        """Gray-depth observations ingested so far, ``m``."""
        return self._count

    @property
    def mean_depth(self) -> float:
        """Running mean gray depth (NaN before the first round)."""
        if self._count == 0:
            return math.nan
        return self._depth_total / self._count

    @property
    def n_hat(self) -> float:
        """The streaming Eq. 14 estimate (NaN before the first round)."""
        if self._count == 0:
            return math.nan
        return 2.0 ** self.mean_depth / PHI

    @property
    def ci_halfwidth(self) -> float:
        """First-order ``1 - delta`` CI half-width around ``n_hat``.

        ``n_hat * ln2 * SIGMA_H * c(delta) / sqrt(m)`` — the Eq. 15-17
        propagation of the averaged-depth standard error through the
        exponential estimator.
        """
        if self._count == 0:
            return math.inf
        return (
            self.n_hat
            * math.log(2.0)
            * SIGMA_H
            * self._scale
            / math.sqrt(self._count)
        )

    @property
    def rounds_remaining(self) -> int:
        """Rounds still needed to meet the ``(epsilon, delta)`` budget."""
        return max(0, self.required_rounds - self._count)

    @property
    def converged(self) -> bool:
        """Whether the Eq. 20 round budget has been met."""
        return self._count >= self.required_rounds

    @property
    def outlier_rounds(self) -> int:
        """Rounds flagged as depth-law outliers so far."""
        return self._outlier_rounds

    @property
    def drift_alerts(self) -> int:
        """Epochs the EWMA detector flagged as population changes."""
        return self._drift_alerts

    # -- ingestion ---------------------------------------------------------

    def _refresh_tables(self) -> None:
        """(Re)build the outlier tables when ``n_hat`` moved enough."""
        n_ref = max(1, int(round(self.n_hat)))
        if self._table_n is not None:
            ratio = n_ref / self._table_n
            if 1.0 / _TABLE_REBUILD_RATIO < ratio < _TABLE_REBUILD_RATIO:
                return
        self._outlier_table, self._tail_table = depth_tail_tables(
            n_ref, self.tree_height, self.outlier_tail
        )
        self._table_n = n_ref

    def observe_depths(self, depths: np.ndarray) -> None:
        """Ingest a batch of observed gray depths (one per round)."""
        depths = np.asarray(depths)
        if depths.size == 0:
            return
        flat = depths.reshape(-1).astype(np.int64, copy=False)
        self._count += int(flat.size)
        self._depth_total += float(flat.sum())
        registry = self._registry
        registry.counter("diag.rounds").inc(int(flat.size))
        if self._count >= self.warmup_rounds:
            self._refresh_tables()
            assert self._outlier_table is not None
            outliers = self._outlier_table[flat]
            flagged = int(outliers.sum())
            if flagged:
                self._outlier_rounds += flagged
                registry.counter("diag.outlier_rounds").inc(flagged)
                assert self._tail_table is not None
                positions = np.flatnonzero(outliers)
                for position in positions[
                    :_MAX_OUTLIER_EVENTS_PER_BATCH
                ].tolist():
                    depth = int(flat[position])
                    registry.event(
                        "diag.outlier",
                        depth=depth,
                        tail_probability=float(
                            self._tail_table[depth]
                        ),
                        n_ref=self._table_n,
                        round=self._count - flat.size + position,
                    )
        registry.gauge("diag.n_hat").set(self.n_hat)
        registry.gauge("diag.ci_halfwidth").set(self.ci_halfwidth)
        registry.gauge("diag.rounds_remaining").set(
            self.rounds_remaining
        )

    def observe_round(self, depth: int) -> None:
        """Scalar convenience for :meth:`observe_depths`."""
        self.observe_depths(np.array([depth], dtype=np.int64))

    def observe_estimate(
        self, estimate: float, rounds: int
    ) -> None:
        """Ingest one epoch-level estimate for drift detection.

        ``rounds`` is the number of PET rounds backing the estimate —
        it sets the epoch's expected standard error.  The EWMA monitor
        is built on first use and rebuilt when ``rounds`` changes
        (alert counts accumulate across rebuilds).  Non-positive
        estimates are ignored (the detector has nothing to say about
        them).
        """
        if not estimate > 0 or not math.isfinite(estimate):
            return
        if rounds < 1:
            return
        if self._monitor is None or self._monitor_rounds != rounds:
            self._monitor = CardinalityMonitor(
                rounds_per_epoch=rounds, registry=self._registry
            )
            self._monitor_rounds = rounds
        report = self._monitor.observe(float(estimate))
        self._epochs += 1
        if report.changed:
            self._drift_alerts += 1

    def observe_estimates(
        self, estimates: np.ndarray, rounds: int
    ) -> None:
        """Feed a batch of epoch estimates to the drift detector."""
        for value in np.asarray(estimates, dtype=np.float64).reshape(-1):
            self.observe_estimate(float(value), rounds)

    def observe_protocol_result(
        self, result: object, statistic_kind: str = "generic"
    ) -> None:
        """Ingest a :class:`~repro.protocols.base.ProtocolResult`.

        Called by
        :meth:`repro.protocols.base.CardinalityEstimatorProtocol._observe_result`
        when a health monitor is attached to the active registry.  The
        per-round statistics are ingested as gray depths only when the
        protocol declares them as such (``statistic_kind ==
        "gray_depth"`` — PET's); every protocol's final estimate feeds
        the drift detector.
        """
        statistics = getattr(result, "per_round_statistics", None)
        if statistic_kind == "gray_depth" and statistics is not None:
            self.observe_depths(
                np.asarray(statistics).astype(np.int64)
            )
        n_hat = getattr(result, "n_hat", None)
        rounds = getattr(result, "rounds", 0)
        if n_hat is not None:
            self.observe_estimate(float(n_hat), int(rounds))

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> HealthReport:
        """Immutable point-in-time view of the monitor."""
        n_hat = self.n_hat
        halfwidth = self.ci_halfwidth
        return HealthReport(
            rounds_observed=self._count,
            n_hat=n_hat,
            mean_depth=self.mean_depth,
            epsilon=self.requirement.epsilon,
            delta=self.requirement.delta,
            required_rounds=self.required_rounds,
            rounds_remaining=self.rounds_remaining,
            converged=self.converged,
            ci_halfwidth=halfwidth,
            ci_lower=(
                n_hat - halfwidth if self._count else math.nan
            ),
            ci_upper=(
                n_hat + halfwidth if self._count else math.nan
            ),
            outlier_rounds=self._outlier_rounds,
            drift_alerts=self._drift_alerts,
            epochs_observed=self._epochs,
        )
