"""Phase profiler: where do batched-kernel cells spend their time?

The batched engines (:mod:`repro.sim.batched`,
:mod:`repro.sim.protocol_batched`) execute each cell as a short
pipeline of array passes.  :class:`PhaseProfiler` wraps those passes in
named wall-time (and optionally allocation) sampling contexts:

* ``seed_matrix`` — seed-tree spawn and the per-repetition word draws;
* ``hash_passes`` — population build, code hashing, and the gray-depth
  / sufficient-statistic matrix passes;
* ``reduction`` — slot-table lookups, bincounts, and the metric
  reductions;
* ``finalize`` — the estimator inversions that turn statistics into
  ``n_hat``.

Instrumented kernels resolve their profiler as::

    profiler = (registry.profiler if registry else None) or NULL_PROFILER
    with profiler.phase("seed_matrix"):
        ...

so the unattached path costs one shared no-op context manager per
phase — the ``bench_guard --profile`` bound asserts this stays under
5 % of the cell's runtime.  Each phase exit also feeds a
``profile.<phase>.seconds`` histogram on the attached registry, which
rides the ordinary export surface: OpenMetrics via ``--prom-out``,
JSON lines via ``--metrics-out``, and cross-process aggregation via
:meth:`~repro.obs.registry.MetricsRegistry.merge`.  The standalone
JSON artifact (CLI ``--profile-out``, the committed
``BENCH_obs_parallel.json``) comes from :meth:`PhaseProfiler.write_json`.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Iterator

from .registry import MetricsRegistry

#: The canonical batched-kernel phases, in pipeline order.  Profilers
#: accept any name, but these are the ones the engines emit and the
#: guard asserts on.
KERNEL_PHASES = (
    "seed_matrix",
    "hash_passes",
    "reduction",
    "finalize",
)


class PhaseStats:
    """Accumulated wall time / calls / allocations for one phase."""

    __slots__ = ("name", "seconds", "calls", "alloc_bytes")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.calls = 0
        self.alloc_bytes = 0


class PhaseProfiler:
    """Low-overhead accumulating profiler for named code phases.

    Parameters
    ----------
    registry:
        When given, every phase exit observes its duration into the
        registry's ``profile.<phase>.seconds`` histogram (so profiles
        survive snapshot/merge and appear in every exporter).
    track_alloc:
        Sample net allocations per phase with :mod:`tracemalloc`.
        Allocation tracking is *much* more expensive than the wall-time
        sampling (tracemalloc hooks every allocation), so it is off by
        default and not subject to the <5 % overhead bound.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        track_alloc: bool = False,
    ):
        self.phases: dict[str, PhaseStats] = {}
        self.track_alloc = track_alloc
        self._registry = registry
        self._started_tracemalloc = False
        if track_alloc:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True

    def __bool__(self) -> bool:
        return True

    def stats(self, name: str) -> PhaseStats:
        """The named phase's accumulator, created on first use."""
        stats = self.phases.get(name)
        if stats is None:
            stats = self.phases[name] = PhaseStats(name)
        return stats

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time (and optionally allocation-sample) the body."""
        if self.track_alloc:
            import tracemalloc

            alloc_before = tracemalloc.get_traced_memory()[0]
        start = time.perf_counter()
        try:
            yield
        finally:
            seconds = time.perf_counter() - start
            stats = self.stats(name)
            stats.seconds += seconds
            stats.calls += 1
            if self.track_alloc:
                alloc_after = tracemalloc.get_traced_memory()[0]
                stats.alloc_bytes += max(alloc_after - alloc_before, 0)
            registry = self._registry
            if registry is not None:
                registry.histogram(f"profile.{name}.seconds").observe(
                    seconds
                )

    @property
    def total_seconds(self) -> float:
        """Wall time accumulated across every phase."""
        return sum(stats.seconds for stats in self.phases.values())

    def report(self) -> dict[str, dict[str, float]]:
        """Per-phase totals plus each phase's fraction of the whole."""
        total = self.total_seconds
        return {
            name: {
                "seconds": stats.seconds,
                "calls": stats.calls,
                "fraction": (
                    stats.seconds / total if total > 0 else 0.0
                ),
                "alloc_bytes": stats.alloc_bytes,
            }
            for name, stats in sorted(self.phases.items())
        }

    def write_json(
        self, path: str, extra: dict[str, object] | None = None
    ) -> None:
        """Write the report (plus caller context) as a JSON artifact."""
        payload: dict[str, object] = {
            "total_seconds": round(self.total_seconds, 6),
            "track_alloc": self.track_alloc,
            "phases": {
                name: {
                    "seconds": round(row["seconds"], 6),
                    "calls": int(row["calls"]),
                    "fraction": round(row["fraction"], 4),
                    "alloc_bytes": int(row["alloc_bytes"]),
                }
                for name, row in self.report().items()
            },
        }
        if extra:
            payload.update(extra)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    def close(self) -> None:
        """Stop tracemalloc if this profiler was the one to start it."""
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False


class _NullPhaseContext:
    """Shared reusable no-op context manager (one per process)."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhaseContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


class NullPhaseProfiler:
    """Do-nothing profiler; what unattached kernels run against.

    Falsy (like the null registry) so code can gate optional extra work
    with ``if profiler:`` while the hot path stays a single shared
    no-op context manager.
    """

    _NULL_CONTEXT = _NullPhaseContext()

    def __bool__(self) -> bool:
        return False

    def phase(self, name: str) -> _NullPhaseContext:  # noqa: ARG002
        return self._NULL_CONTEXT


#: The process-wide shared no-op profiler.
NULL_PROFILER = NullPhaseProfiler()


def active_profiler(
    registry: MetricsRegistry | None,
) -> "PhaseProfiler | NullPhaseProfiler":
    """The profiler attached to ``registry``, or the shared no-op one."""
    profiler = registry.profiler if registry else None
    return profiler if profiler is not None else NULL_PROFILER  # type: ignore[return-value]


#: Registry histogram names carrying phase timings look like this.
_PHASE_HISTOGRAM_PREFIX = "profile."
_PHASE_HISTOGRAM_SUFFIX = ".seconds"


def registry_phase_report(
    registry: MetricsRegistry,
) -> dict[str, dict[str, float]]:
    """Per-phase totals reconstructed from ``profile.*.seconds``.

    The profiler mirrors every phase exit into the registry, and those
    histograms survive :meth:`~MetricsRegistry.snapshot` /
    :meth:`~MetricsRegistry.merge` — so after a parallel sweep the
    *registry* is the authoritative cross-process source of phase
    timings, while each profiler object only saw its own process.
    Allocation totals are process-local and reported as 0 here.
    """
    report: dict[str, dict[str, float]] = {}
    snapshot = registry.snapshot()
    histograms = snapshot["histograms"]
    total = 0.0
    for name, stats in histograms.items():  # type: ignore[union-attr]
        if not (
            name.startswith(_PHASE_HISTOGRAM_PREFIX)
            and name.endswith(_PHASE_HISTOGRAM_SUFFIX)
        ):
            continue
        phase = name[
            len(_PHASE_HISTOGRAM_PREFIX) : -len(_PHASE_HISTOGRAM_SUFFIX)
        ]
        report[phase] = {
            "seconds": float(stats["total"]),
            "calls": int(stats["count"]),
            "alloc_bytes": 0,
        }
        total += float(stats["total"])
    for row in report.values():
        row["fraction"] = row["seconds"] / total if total > 0 else 0.0
    return dict(sorted(report.items()))


def write_phase_json(
    path: str,
    registry: MetricsRegistry,
    profiler: "PhaseProfiler | None" = None,
    extra: dict[str, object] | None = None,
) -> None:
    """Write the registry-derived phase report as a JSON artifact.

    When the (parent-process) ``profiler`` is given, its allocation
    totals are grafted onto the matching phases — wall times still come
    from the registry, which has the merged cross-process view.
    """
    report = registry_phase_report(registry)
    if profiler is not None:
        for name, stats in profiler.phases.items():
            if name in report:
                report[name]["alloc_bytes"] = stats.alloc_bytes
    total = sum(row["seconds"] for row in report.values())
    payload: dict[str, object] = {
        "total_seconds": round(total, 6),
        "track_alloc": bool(profiler and profiler.track_alloc),
        "phases": {
            name: {
                "seconds": round(row["seconds"], 6),
                "calls": int(row["calls"]),
                "fraction": round(row["fraction"], 4),
                "alloc_bytes": int(row["alloc_bytes"]),
            }
            for name, row in report.items()
        },
    }
    if extra:
        payload.update(extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
