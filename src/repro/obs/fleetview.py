"""Terminal fleet dashboard for a sharded serve run.

``python -m repro fleetview`` renders one row per worker shard — qps,
p99 latency, SLO burn rate, cache hit rate, heartbeat age, queue
depth, watchdog status — plus a fleet summary line, from the same two
endpoints every other consumer reads::

    fleet: degraded · 2 shards · 512 requests · burn 0.00
    shard  status    qps      p99      burn  cache%  beat   queue
    0      ok        81.3   12.4ms    0.00    62.5   0.2s       0
    1      stalled    0.0       --    0.00     0.0   4.1s       3

State comes from either

* a live metrics endpoint (``--url``): ``GET /metrics`` (OpenMetrics
  text, parsed with :func:`repro.obs.prom.parse_openmetrics`) and
  ``GET /healthz`` (the stable ``status``/``shards``/
  ``uptime_seconds`` schema); or
* a saved snapshot file (``--snapshot``): the JSON object
  ``--snapshot-out`` writes — ``{"metrics_text": ..., "healthz":
  ...}`` — so a CI artifact or a colleague's capture renders exactly
  like the live fleet did.

The dashboard is read-only and stdlib-only: point it at the port a
``loadgen --shards N --metrics-port`` run opened and watch the merged
mid-run state the router maintains from worker snapshot deltas.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import urllib.request

from .prom import parse_openmetrics

#: Sample-name prefix of per-shard gauges after sanitization.
_SHARD_SAMPLE = re.compile(r"^repro_serve_shard_(\d+)_")


def fetch_state(url: str, timeout: float = 10.0) -> dict:
    """Capture ``/metrics`` + ``/healthz`` from a live endpoint."""
    base = url.rstrip("/")
    with urllib.request.urlopen(
        f"{base}/metrics", timeout=timeout
    ) as response:
        metrics_text = response.read().decode("utf-8")
    with urllib.request.urlopen(
        f"{base}/healthz", timeout=timeout
    ) as response:
        healthz = json.loads(response.read().decode("utf-8"))
    return {"url": base, "metrics_text": metrics_text, "healthz": healthz}


def load_snapshot(path: str) -> dict:
    """Read a state capture previously written by ``--snapshot-out``."""
    with open(path, "r", encoding="utf-8") as handle:
        state = json.load(handle)
    if "metrics_text" not in state:
        raise ValueError(
            f"{path} is not a fleetview snapshot (no 'metrics_text')"
        )
    state.setdefault("healthz", {})
    return state


def shard_indices(samples: dict, healthz: dict) -> list[int]:
    """Every shard index visible in either source, sorted."""
    indices: set[int] = set()
    for key in (healthz.get("shards") or {}):
        try:
            indices.add(int(key))
        except (TypeError, ValueError):
            continue
    for name in samples:
        match = _SHARD_SAMPLE.match(name)
        if match:
            indices.add(int(match.group(1)))
    return sorted(indices)


def shard_rows(state: dict) -> list[dict]:
    """Per-shard dashboard values folded from one state capture."""
    samples, _types = parse_openmetrics(state["metrics_text"])
    healthz = state.get("healthz") or {}
    shard_health = healthz.get("shards") or {}
    uptime = float(healthz.get("uptime_seconds") or 0.0)
    rows = []
    for index in shard_indices(samples, healthz):
        prefix = f"repro_serve_shard_{index}_"
        health = shard_health.get(str(index)) or {}

        def _sample(suffix: str, default: float | None = None):
            return samples.get(prefix + suffix, default)

        requests = _sample("requests", 0.0)
        hits = _sample("cache_hits", 0.0)
        misses = _sample("cache_misses", 0.0)
        lookups = hits + misses
        age = health.get("heartbeat_age_seconds")
        if age is None:
            age = _sample("heartbeat_age_seconds")
        queue_depth = health.get("queue_depth")
        if queue_depth is None:
            queue_depth = _sample("queue_depth", 0.0)
        rows.append(
            {
                "shard": index,
                "status": health.get("status", "?"),
                "requests": requests,
                "qps": requests / uptime if uptime > 0 else None,
                "p99_seconds": _sample("p99_seconds"),
                "burn_rate_fast": _sample("burn_rate_fast", 0.0),
                "cache_hit_rate": hits / lookups if lookups else None,
                "heartbeat_age_seconds": age,
                "queue_depth": queue_depth,
                "inflight": health.get(
                    "inflight", _sample("inflight", 0.0)
                ),
            }
        )
    return rows


def fleet_summary(state: dict, rows: list[dict]) -> dict:
    """The fleet-wide header values for one state capture."""
    samples, _types = parse_openmetrics(state["metrics_text"])
    healthz = state.get("healthz") or {}
    return {
        "status": healthz.get("status", "?"),
        "shards": len(rows),
        "requests": sum(row["requests"] or 0.0 for row in rows),
        "burn_rate_fast": samples.get(
            "repro_serve_slo_burn_rate_fast", 0.0
        ),
        "uptime_seconds": healthz.get("uptime_seconds"),
    }


def _fmt(value, pattern: str, missing: str = "--") -> str:
    if value is None:
        return missing
    return pattern.format(value)


def render_fleet(state: dict) -> str:
    """The dashboard for one state capture as a printable string."""
    rows = shard_rows(state)
    summary = fleet_summary(state, rows)
    lines = [
        "fleet: {status} · {shards} shards · {requests:.0f} requests"
        " · burn {burn_rate_fast:.2f}".format(**summary)
    ]
    if not rows:
        lines.append("(no per-shard series — not a sharded run?)")
        return "\n".join(lines)
    header = (
        f"{'shard':<6}{'status':<9}{'qps':>8}{'p99':>10}"
        f"{'burn':>7}{'cache%':>8}{'beat':>7}{'queue':>7}{'infl':>6}"
    )
    lines.append(header)
    for row in rows:
        lines.append(
            f"{row['shard']:<6}"
            f"{row['status']:<9}"
            f"{_fmt(row['qps'], '{:.1f}'):>8}"
            f"{_fmt(row['p99_seconds'], '{:.4f}s'):>10}"
            f"{_fmt(row['burn_rate_fast'], '{:.2f}'):>7}"
            f"{_fmt(row['cache_hit_rate'], '{:.1%}'):>8}"
            f"{_fmt(row['heartbeat_age_seconds'], '{:.1f}s'):>7}"
            f"{_fmt(row['queue_depth'], '{:.0f}'):>7}"
            f"{_fmt(row['inflight'], '{:.0f}'):>6}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro fleetview``."""
    parser = argparse.ArgumentParser(
        prog="repro fleetview",
        description=(
            "Render a terminal dashboard (one row per shard) for a"
            " sharded serve fleet from a live metrics endpoint or a"
            " saved snapshot file."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--url",
        help="base URL of a live metrics endpoint (e.g."
        " http://127.0.0.1:9464)",
    )
    source.add_argument(
        "--snapshot",
        help="saved fleet snapshot file (see --snapshot-out)",
    )
    parser.add_argument(
        "--snapshot-out",
        metavar="PATH",
        default=None,
        help=(
            "also write the fetched state as JSON to PATH (renderable"
            " later with --snapshot; requires --url)"
        ),
    )
    args = parser.parse_args(argv)
    if args.snapshot_out and not args.url:
        parser.error("--snapshot-out requires --url")
    if args.url:
        try:
            state = fetch_state(args.url)
        except Exception as exc:
            print(
                f"error: failed to fetch fleet state: {exc}",
                file=sys.stderr,
            )
            return 1
        if args.snapshot_out:
            with open(
                args.snapshot_out, "w", encoding="utf-8"
            ) as handle:
                json.dump(state, handle, indent=2, default=str)
            print(
                f"fleet snapshot written to {args.snapshot_out}",
                file=sys.stderr,
            )
    else:
        try:
            state = load_snapshot(args.snapshot)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(
                f"error: failed to load snapshot: {exc}",
                file=sys.stderr,
            )
            return 1
    print(render_fleet(state))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
