"""Round-level tracing with deterministic replay.

A :class:`RoundTraceRecord` captures one estimation round — which tier
ran it, where in the experiment it sits, the observed gray depth and
slot outcomes, and (crucially) the *seed material* the round was
computed from.  That last part is what makes a trace more than a log:
:func:`replay_round` re-executes the recorded round through the scalar
simulation helpers and must reproduce the recorded depth bit-for-bit,
so any anomalous round an operator spots in production can be pulled
out of the ring buffer and re-run in isolation.

Two tiers record today:

* ``tier="batched"`` / ``tier="loop"`` — rounds over an explicit tag
  population.  Seed material: the population's :class:`WorkloadSpec`
  fields (size, id-space, per-repetition seed), the reader's path bits,
  and (active variant) the per-round hash seed.  Replay rebuilds the
  population with :func:`repro.sim.workload.build_population` (default
  hash family) and recomputes the depth with the scalar vectorized-tier
  helpers.
* ``tier="sampled"`` — distribution-sampled rounds.  Seed material: the
  true ``n``, the tree height, and the round's inverse-CDF uniform.
  Replay re-applies ``searchsorted`` on the exact gray-depth CDF.

Recording is governed by a :class:`SamplingPolicy` so the batched numpy
tier stays fast: ``all`` keeps every round (ring-buffer bounded),
``every_k`` keeps one round in ``k``, and ``outliers_only`` keeps only
rounds whose depth is in the far tails of the exact depth law for the
cell's population — the rounds an operator actually wants to replay.
Outlier classification is two table gathers per batch, so even the
fig-4-sized cells pay a few percent, not a slowdown.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass
from typing import IO, Iterable, Iterator

import numpy as np

from ..errors import ConfigurationError
from .registry import MetricsRegistry, get_registry

#: Default ring-buffer capacity of a recorder.
DEFAULT_TRACE_CAPACITY = 10_000

#: Two-sided tail probability below which a round counts as an outlier.
DEFAULT_TAIL_THRESHOLD = 1e-3

_POLICY_MODES = ("all", "every_k", "outliers_only")


@dataclass(frozen=True)
class SamplingPolicy:
    """Which rounds a :class:`RoundTraceRecorder` keeps.

    Attributes
    ----------
    mode:
        ``"all"`` — every round (ring-buffer bounded);
        ``"every_k"`` — rounds whose index is a multiple of ``every_k``;
        ``"outliers_only"`` — only rounds whose depth sits in a tail of
        probability ``<= tail_threshold`` under the exact depth law.
    every_k:
        Stride for ``every_k`` mode.
    tail_threshold:
        Two-sided tail-probability cutoff for ``outliers_only`` mode
        (also the cutoff used to *flag* outliers in every mode).
    """

    mode: str = "all"
    every_k: int = 1
    tail_threshold: float = DEFAULT_TAIL_THRESHOLD

    def __post_init__(self) -> None:
        if self.mode not in _POLICY_MODES:
            raise ConfigurationError(
                f"sampling mode must be one of {_POLICY_MODES}, "
                f"got {self.mode!r}"
            )
        if self.every_k < 1:
            raise ConfigurationError(
                f"every_k must be >= 1, got {self.every_k}"
            )
        if not 0.0 < self.tail_threshold < 0.5:
            raise ConfigurationError(
                f"tail_threshold must lie in (0, 0.5), "
                f"got {self.tail_threshold!r}"
            )

    @classmethod
    def parse(cls, spec: str) -> "SamplingPolicy":
        """Parse a CLI-style policy spec.

        Accepted forms: ``"all"``, ``"every_k:32"``,
        ``"outliers_only"``, ``"outliers_only:1e-4"``.
        """
        head, _, argument = spec.partition(":")
        head = head.strip()
        if head == "all":
            return cls(mode="all")
        if head == "every_k":
            if not argument:
                raise ConfigurationError(
                    "every_k needs a stride, e.g. 'every_k:32'"
                )
            return cls(mode="every_k", every_k=int(argument))
        if head == "outliers_only":
            if argument:
                return cls(
                    mode="outliers_only",
                    tail_threshold=float(argument),
                )
            return cls(mode="outliers_only")
        raise ConfigurationError(
            f"unknown sampling policy {spec!r}; expected 'all', "
            f"'every_k:K', or 'outliers_only[:THRESHOLD]'"
        )


@dataclass(frozen=True)
class RoundTraceRecord:
    """One recorded estimation round with its replay seed material.

    ``tier`` selects which seed fields are meaningful: population-backed
    tiers (``batched`` / ``loop``) carry ``path_bits`` +
    ``population_*`` (+ ``round_seed`` for the active variant);
    the ``sampled`` tier carries ``true_n`` + ``uniform``.
    """

    tier: str
    protocol: str
    run_index: int
    round_index: int
    tree_height: int
    binary_search: bool
    passive_tags: bool
    gray_depth: int
    slots: int
    busy_slots: int
    idle_slots: int
    # -- replay seed material (tier-dependent) ------------------------
    path_bits: int | None = None
    round_seed: int | None = None
    population_size: int | None = None
    population_id_space: str | None = None
    population_seed: int | None = None
    true_n: int | None = None
    uniform: float | None = None
    # -- diagnostics --------------------------------------------------
    outlier: bool = False
    tail_probability: float | None = None

    def to_dict(self) -> dict[str, object]:
        """Plain-dict view (JSONL trace files round-trip through this)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, record: dict[str, object]) -> "RoundTraceRecord":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        fields = {
            name: record[name]
            for name in cls.__dataclass_fields__
            if name in record
        }
        return cls(**fields)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ReplayedRound:
    """Outcome of re-executing a recorded round."""

    gray_depth: int
    slots: int

    def matches(self, record: RoundTraceRecord) -> bool:
        """Whether the replay reproduced the record bit-for-bit."""
        return (
            self.gray_depth == record.gray_depth
            and self.slots == record.slots
        )


def depth_tail_tables(
    n: int, height: int, threshold: float = DEFAULT_TAIL_THRESHOLD
) -> tuple[np.ndarray, np.ndarray]:
    """Per-depth outlier flag + two-sided tail probability tables.

    For the exact gray-depth law of a population of ``n`` tags on an
    ``height`` tree, returns ``(is_outlier, tail_probability)`` arrays
    indexed by depth: ``tail_probability[d] = min(P(depth <= d),
    P(depth >= d))`` and ``is_outlier[d] = tail_probability[d] <=
    threshold``.  Both arrays are read-only; whole batches classify via
    two gathers (``is_outlier[depths]``).
    """
    from ..analysis.mellin import gray_depth_cdf

    cdf = gray_depth_cdf(n, height)
    lower = cdf  # P(depth <= d)
    upper = np.empty_like(cdf)  # P(depth >= d)
    upper[0] = 1.0
    upper[1:] = 1.0 - cdf[:-1]
    tail = np.minimum(lower, upper)
    is_outlier = tail <= threshold
    tail.flags.writeable = False
    is_outlier.flags.writeable = False
    return is_outlier, tail


class RoundTraceRecorder:
    """Bounded, policy-sampled store of :class:`RoundTraceRecord` rows.

    Parameters
    ----------
    policy:
        Which rounds to keep (default: every round).
    capacity:
        Ring-buffer bound; once full, the oldest record is evicted per
        append (evictions are counted in ``trace.records.evicted``).
    registry:
        Registry the recorder's own accounting counters
        (``trace.rounds.seen`` / ``trace.rounds.recorded`` /
        ``trace.records.evicted``) are recorded against; defaults to
        the process-wide active registry.
    """

    def __init__(
        self,
        policy: SamplingPolicy | None = None,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        registry: MetricsRegistry | None = None,
    ):
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}"
            )
        self.policy = policy or SamplingPolicy()
        self.capacity = capacity
        #: Local accounting (mirrors the ``trace.*`` registry counters,
        #: but survives a null registry so reports can always show it).
        self.rounds_seen = 0
        self.rounds_recorded = 0
        self.records_evicted = 0
        self._buffer: deque[RoundTraceRecord] = deque(maxlen=capacity)
        self._registry = (
            registry if registry is not None else get_registry()
        )
        self._tail_cache: dict[
            tuple[int, int, float], tuple[np.ndarray, np.ndarray]
        ] = {}

    # -- introspection ----------------------------------------------------

    @property
    def records(self) -> list[RoundTraceRecord]:
        """The retained records, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def outlier_records(self) -> list[RoundTraceRecord]:
        """The retained records flagged as depth-law outliers."""
        return [record for record in self._buffer if record.outlier]

    def clear(self) -> None:
        """Drop every retained record (counters are left untouched)."""
        self._buffer.clear()

    # -- selection --------------------------------------------------------

    def _tail_tables(
        self, n: int, height: int
    ) -> tuple[np.ndarray, np.ndarray]:
        key = (n, height, self.policy.tail_threshold)
        tables = self._tail_cache.get(key)
        if tables is None:
            tables = depth_tail_tables(
                n, height, self.policy.tail_threshold
            )
            self._tail_cache[key] = tables
        return tables

    def _selection(
        self,
        depths: np.ndarray,
        round_indices: np.ndarray,
        n_for_law: int,
        height: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Indices to keep + per-round (outlier, tail-prob) columns."""
        is_outlier_table, tail_table = self._tail_tables(
            n_for_law, height
        )
        outliers = is_outlier_table[depths]
        tails = tail_table[depths]
        if self.policy.mode == "all":
            keep = np.arange(depths.size)
        elif self.policy.mode == "every_k":
            keep = np.flatnonzero(
                round_indices % self.policy.every_k == 0
            )
        else:  # outliers_only
            keep = np.flatnonzero(outliers)
        return keep, outliers, tails

    def _append(self, record: RoundTraceRecord) -> None:
        if len(self._buffer) == self.capacity:
            self.records_evicted += 1
            self._registry.counter("trace.records.evicted").inc()
        self._buffer.append(record)

    def _account(self, seen: int, recorded: int) -> None:
        self.rounds_seen += seen
        self.rounds_recorded += recorded
        registry = self._registry
        registry.counter("trace.rounds.seen").inc(seen)
        if recorded:
            registry.counter("trace.rounds.recorded").inc(recorded)

    # -- recording: population-backed tiers -------------------------------

    def record_population_run(
        self,
        tier: str,
        run_index: int,
        depths: np.ndarray,
        path_bits: np.ndarray,
        round_seeds: np.ndarray | None,
        population_size: int,
        population_id_space: str,
        population_seed: int,
        tree_height: int,
        binary_search: bool,
        slots_table: np.ndarray,
        busy_table: np.ndarray,
        idle_table: np.ndarray,
        protocol: str = "PET",
    ) -> int:
        """Record one repetition of a population-backed tier.

        ``depths``/``path_bits`` (and ``round_seeds`` for the active
        variant) are the whole repetition's per-round arrays; the policy
        selects which rounds materialise as records.  Returns the number
        of records appended.
        """
        rounds = int(depths.size)
        keep, outliers, tails = self._selection(
            depths,
            np.arange(rounds),
            population_size,
            tree_height,
        )
        for index in keep.tolist():
            depth = int(depths[index])
            self._append(
                RoundTraceRecord(
                    tier=tier,
                    protocol=protocol,
                    run_index=run_index,
                    round_index=index,
                    tree_height=tree_height,
                    binary_search=binary_search,
                    passive_tags=round_seeds is None,
                    gray_depth=depth,
                    slots=int(slots_table[depth]),
                    busy_slots=int(busy_table[depth]),
                    idle_slots=int(idle_table[depth]),
                    path_bits=int(path_bits[index]),
                    round_seed=(
                        None
                        if round_seeds is None
                        else int(round_seeds[index])
                    ),
                    population_size=population_size,
                    population_id_space=population_id_space,
                    population_seed=population_seed,
                    outlier=bool(outliers[index]),
                    tail_probability=float(tails[index]),
                )
            )
        self._account(rounds, len(keep))
        return len(keep)

    # -- recording: sampled tier ------------------------------------------

    def record_sampled_run(
        self,
        run_index: int,
        depths: np.ndarray,
        uniforms: np.ndarray,
        true_n: int,
        tree_height: int,
        binary_search: bool,
        slots_table: np.ndarray,
        busy_table: np.ndarray,
        idle_table: np.ndarray,
        protocol: str = "PET",
    ) -> int:
        """Record one repetition of the distribution-sampled tier."""
        rounds = int(depths.size)
        keep, outliers, tails = self._selection(
            depths, np.arange(rounds), true_n, tree_height
        )
        for index in keep.tolist():
            depth = int(depths[index])
            self._append(
                RoundTraceRecord(
                    tier="sampled",
                    protocol=protocol,
                    run_index=run_index,
                    round_index=index,
                    tree_height=tree_height,
                    binary_search=binary_search,
                    passive_tags=False,
                    gray_depth=depth,
                    slots=int(slots_table[depth]),
                    busy_slots=int(busy_table[depth]),
                    idle_slots=int(idle_table[depth]),
                    true_n=true_n,
                    uniform=float(uniforms[index]),
                    outlier=bool(outliers[index]),
                    tail_probability=float(tails[index]),
                )
            )
        self._account(rounds, len(keep))
        return len(keep)

    def record_sampled_round(
        self,
        round_index: int,
        depth: int,
        uniform: float,
        true_n: int,
        tree_height: int,
        binary_search: bool,
        slots: int,
        busy_slots: int,
        idle_slots: int,
        run_index: int = -1,
        protocol: str = "PET",
    ) -> bool:
        """Scalar companion of :meth:`record_sampled_run` (one round)."""
        depths = np.array([depth], dtype=np.int64)
        keep, outliers, tails = self._selection(
            depths,
            np.array([round_index]),
            true_n,
            tree_height,
        )
        recorded = bool(keep.size)
        if recorded:
            self._append(
                RoundTraceRecord(
                    tier="sampled",
                    protocol=protocol,
                    run_index=run_index,
                    round_index=round_index,
                    tree_height=tree_height,
                    binary_search=binary_search,
                    passive_tags=False,
                    gray_depth=int(depth),
                    slots=int(slots),
                    busy_slots=int(busy_slots),
                    idle_slots=int(idle_slots),
                    true_n=true_n,
                    uniform=float(uniform),
                    outlier=bool(outliers[0]),
                    tail_probability=float(tails[0]),
                )
            )
        self._account(1, int(recorded))
        return recorded


# -- replay ---------------------------------------------------------------


def replay_round(record: RoundTraceRecord) -> ReplayedRound:
    """Re-execute a recorded round from its seed material.

    Runs the recorded round back through the *scalar* simulation path:
    sampled-tier records re-apply the inverse-CDF draw on the exact
    depth law; population-backed records rebuild the population (same
    workload spec, default hash family) and recompute the gray depth
    with the scalar vectorized-tier helpers.  The result must match the
    record bit-for-bit — :func:`verify_replay` asserts exactly that.
    """
    from ..core.search import slots_lookup_table, strategy_for

    height = record.tree_height
    if record.tier == "sampled":
        if record.true_n is None or record.uniform is None:
            raise ConfigurationError(
                "sampled trace record is missing true_n/uniform seed "
                "material; cannot replay"
            )
        from ..analysis.mellin import gray_depth_cdf

        cdf = gray_depth_cdf(record.true_n, height)
        depth = int(
            np.searchsorted(cdf, record.uniform, side="left")
        )
    else:
        if (
            record.path_bits is None
            or record.population_size is None
            or record.population_id_space is None
            or record.population_seed is None
        ):
            raise ConfigurationError(
                f"{record.tier!r} trace record is missing population/"
                f"path seed material; cannot replay"
            )
        from ..sim.vectorized import (
            gray_depth_of_codes,
            gray_depth_sorted,
        )
        from ..sim.workload import WorkloadSpec, build_population

        population = build_population(
            WorkloadSpec(
                size=record.population_size,
                id_space=record.population_id_space,
                seed=record.population_seed,
            )
        )
        if record.passive_tags:
            codes = np.sort(population.preloaded_codes(height))
            depth = gray_depth_sorted(
                codes, record.path_bits, height
            )
        else:
            if record.round_seed is None:
                raise ConfigurationError(
                    "active-tag trace record is missing its per-round "
                    "hash seed; cannot replay"
                )
            codes = population.codes(record.round_seed, height)
            depth = gray_depth_of_codes(
                codes, record.path_bits, height
            )
    strategy = strategy_for(record.binary_search)
    slots = int(slots_lookup_table(strategy, height)[depth])
    return ReplayedRound(gray_depth=depth, slots=slots)


def verify_replay(record: RoundTraceRecord) -> bool:
    """Replay ``record`` and check it reproduces depth and slots."""
    return replay_round(record).matches(record)


# -- trace persistence ----------------------------------------------------


def write_trace(
    destination: str | IO[str],
    records: Iterable[RoundTraceRecord],
) -> int:
    """Write records as JSON lines; returns the number written."""
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as sink:
            return write_trace(sink, records)
    written = 0
    for record in records:
        destination.write(json.dumps(record.to_dict()) + "\n")
        written += 1
    return written


def read_trace(source: str | IO[str]) -> Iterator[RoundTraceRecord]:
    """Read a JSONL trace back as :class:`RoundTraceRecord` rows."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as stream:
            yield from read_trace(stream)
        return
    for line in source:
        line = line.strip()
        if line:
            yield RoundTraceRecord.from_dict(json.loads(line))
