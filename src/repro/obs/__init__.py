"""repro.obs — the zero-dependency observability subsystem.

Counters, gauges, and histogram timers in a :class:`MetricsRegistry`;
nested :class:`Span` timing (experiment -> cell -> round -> slot-batch);
pluggable exporters (in-memory, JSON lines, console summary).  Every
instrumented component defaults to the no-op :data:`NULL_REGISTRY`, so
recording only happens when a real registry is passed in or installed
with :func:`set_registry` / :func:`use_registry`.

See docs/OBSERVABILITY.md for metric names, exporter formats, and how
to wire a custom exporter.
"""

from .export import (
    ConsoleSummaryExporter,
    Exporter,
    InMemoryExporter,
    JsonLinesExporter,
    iter_records,
)
from .metrics import Counter, Gauge, Histogram
from .registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .span import NullSpan, Span, SpanRecord

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "Span",
    "NullSpan",
    "SpanRecord",
    "Exporter",
    "InMemoryExporter",
    "JsonLinesExporter",
    "ConsoleSummaryExporter",
    "iter_records",
]
