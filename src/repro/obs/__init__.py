"""repro.obs — the zero-dependency observability subsystem.

Counters, gauges, and histogram timers in a :class:`MetricsRegistry`;
nested :class:`Span` timing (experiment -> cell -> round -> slot-batch);
pluggable exporters (in-memory, JSON lines, console summary, and
OpenMetrics/Prometheus text).  Every instrumented component defaults to
the no-op :data:`NULL_REGISTRY`, so recording only happens when a real
registry is passed in or installed with :func:`set_registry` /
:func:`use_registry`.

On top of the metrics layer sit the round-level diagnostics:

* :class:`RoundTraceRecorder` / :func:`replay_round`
  (:mod:`repro.obs.trace`) — per-round records carrying their seed
  material, with bit-exact deterministic replay;
* :class:`EstimatorHealth` (:mod:`repro.obs.diag`) — streaming
  ``n_hat``, theory CI, rounds-remaining countdown, outlier flags, and
  drift alerts;
* :class:`CardinalityMonitor` (:mod:`repro.obs.monitor`) — the EWMA
  population-change detector, emitting ``monitor.drift`` events;
* :func:`render_text_report` / :func:`render_html_report`
  (:mod:`repro.obs.report`) — the ``--diagnose`` reports.

Attach diagnostics to a registry with
:meth:`MetricsRegistry.attach_diagnostics`; instrumented simulators
feed whatever is attached.

Cross-process telemetry (parallel sweeps) builds on three pieces:

* :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.merge` —
  picklable :class:`RegistrySnapshot` objects that merge associatively,
  so worker registries fold into the parent losslessly;
* :class:`ProgressTracker` / :class:`ProgressReporter`
  (:mod:`repro.obs.progress`) — worker heartbeats, live status line,
  ETA, and the ``sweep.progress.*`` gauges;
* :class:`PhaseProfiler` (:mod:`repro.obs.profile`) — named wall-time
  sampling around the batched-kernel phases.

See docs/OBSERVABILITY.md for metric names, exporter formats, and how
to wire a custom exporter.
"""

from .diag import DEFAULT_WARMUP_ROUNDS, EstimatorHealth, HealthReport
from .export import (
    ConsoleSummaryExporter,
    Exporter,
    InMemoryExporter,
    JsonLinesExporter,
    decode_value,
    heartbeat_record,
    iter_records,
    snapshot_record,
    write_span_trace,
)
from .fleetview import render_fleet
from .http import OPENMETRICS_CONTENT_TYPE, MetricsServer, trace_timeline
from .metrics import Counter, Gauge, Histogram
from .monitor import (
    CardinalityMonitor,
    EpochReport,
    HeartbeatMonitor,
    monitor_population,
    simulate_monitoring,
)
from .profile import (
    KERNEL_PHASES,
    NULL_PROFILER,
    NullPhaseProfiler,
    PhaseProfiler,
    active_profiler,
)
from .progress import (
    Heartbeat,
    ProgressReporter,
    ProgressTracker,
    default_worker_id,
)
from .prom import (
    PrometheusExporter,
    histogram_buckets,
    parse_openmetrics,
    registry_from_openmetrics,
    render_openmetrics,
    write_openmetrics,
)
from .registry import (
    NULL_REGISTRY,
    DeltaSnapshotter,
    MetricsRegistry,
    NullRegistry,
    RegistrySnapshot,
    get_registry,
    parity_view,
    set_registry,
    use_registry,
)
from .report import (
    render_html_report,
    render_text_report,
    write_html_report,
)
from .slo import SloTracker, merge_slo_gauges, publish_shard_slo
from .span import NullSpan, Span, SpanRecord
from .tracectx import (
    TraceContext,
    current_trace,
    new_span_id,
    new_trace_id,
    start_trace,
    use_trace_context,
)
from .trace import (
    DEFAULT_TAIL_THRESHOLD,
    DEFAULT_TRACE_CAPACITY,
    ReplayedRound,
    RoundTraceRecord,
    RoundTraceRecorder,
    SamplingPolicy,
    depth_tail_tables,
    read_trace,
    replay_round,
    verify_replay,
    write_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "RegistrySnapshot",
    "DeltaSnapshotter",
    "get_registry",
    "parity_view",
    "set_registry",
    "use_registry",
    "Span",
    "NullSpan",
    "SpanRecord",
    # distributed tracing
    "TraceContext",
    "current_trace",
    "new_trace_id",
    "new_span_id",
    "start_trace",
    "use_trace_context",
    # SLO error budgets
    "SloTracker",
    "merge_slo_gauges",
    "publish_shard_slo",
    # scrape endpoint + trace rendering
    "MetricsServer",
    "OPENMETRICS_CONTENT_TYPE",
    "trace_timeline",
    "write_span_trace",
    "Exporter",
    "InMemoryExporter",
    "JsonLinesExporter",
    "ConsoleSummaryExporter",
    "iter_records",
    "decode_value",
    "snapshot_record",
    "heartbeat_record",
    # cross-process progress + profiling
    "Heartbeat",
    "ProgressReporter",
    "ProgressTracker",
    "default_worker_id",
    "KERNEL_PHASES",
    "PhaseProfiler",
    "NullPhaseProfiler",
    "NULL_PROFILER",
    "active_profiler",
    # trace / replay
    "DEFAULT_TAIL_THRESHOLD",
    "DEFAULT_TRACE_CAPACITY",
    "SamplingPolicy",
    "RoundTraceRecord",
    "RoundTraceRecorder",
    "ReplayedRound",
    "depth_tail_tables",
    "replay_round",
    "verify_replay",
    "read_trace",
    "write_trace",
    # health diagnostics
    "DEFAULT_WARMUP_ROUNDS",
    "EstimatorHealth",
    "HealthReport",
    # drift monitor + fleet watchdog
    "CardinalityMonitor",
    "EpochReport",
    "HeartbeatMonitor",
    "monitor_population",
    "simulate_monitoring",
    "render_fleet",
    # prometheus / reports
    "PrometheusExporter",
    "render_openmetrics",
    "write_openmetrics",
    "parse_openmetrics",
    "registry_from_openmetrics",
    "histogram_buckets",
    "render_text_report",
    "render_html_report",
    "write_html_report",
]
